//! The simulated OpenCL platform: online compilation followed by NDRange
//! execution, for a given configuration and optimisation level.
//!
//! The flow mirrors what the paper's harness observes when it hands a kernel
//! to a real driver:
//!
//! 1. the front end may reject the program (build failure) or hang
//!    (timeout);
//! 2. the optimiser runs (when enabled and when the driver optimises at all)
//!    and may *miscompile* the program — realised here by applying the
//!    configuration's triggered miscompilation transforms;
//! 3. the kernel executes on the device, where it may crash, time out or
//!    produce a result.
//!
//! Only the resulting [`TestOutcome`] is visible to the fuzzing harness.
//!
//! ## Deduplicated differential execution
//!
//! A differential harness runs the *same* kernel on dozens of
//! (configuration, optimisation level) targets, and most targets compile it
//! to a bit-identical AST; since the emulator is deterministic, those
//! targets provably share one outcome.  The platform is therefore split
//! into two phases:
//!
//! * the **front end** ([`Session::compile`]) — deterministic bug rules,
//!   background-rate rolls, optimisation passes and triggered
//!   miscompilations, producing a [`CompiledProgram`]: either an outcome
//!   decided without execution, or a compiled AST tagged with its
//!   structural [`Fingerprint`];
//! * the **execution phase** — memoised in an [`ExecMemo`] by
//!   `(fingerprint, exec-relevant options)`: each distinct compiled program
//!   is lowered once (a shared [`clc_interp::CompiledKernel`]) and launched
//!   once per distinct execution-option set, with every further target
//!   served from the outcome cache.
//!
//! A [`Session`] carries the per-kernel state both phases reuse across
//! targets (detected [`Features`], the captured program hasher, the
//! optimised AST); a fan-out over 42 targets typically collapses to a
//! handful of real emulator launches.
//!
//! Beyond the per-job memo sit two more outcome-cache levels with the same
//! `(fingerprint, exec key)` key: a **process-wide shared cache** (sharded,
//! mutex-striped, bounded) that deduplicates across jobs and scheduler
//! workers, and an optional **on-disk store** ([`OutcomeStore`]) that
//! deduplicates across processes and campaigns.  Memoisation never changes
//! results at any level — outcomes are deterministic in the key, and the
//! `cache_equivalence` integration test pins campaign tables bit-identical
//! with the memo forced off and with the store cold or warm.

use crate::bugs::{apply_miscompilation, BugEffect, Miscompilation, OptLevel};
use crate::configs::Configuration;
use crate::passes;
use crate::store::OutcomeStore;
use clc::{Features, Fingerprint, Program, ProgramHasher};
use clc_analyze::AnalysisReport;
use clc_interp::{
    CompiledKernel, ExecutionTier, LaunchOptions, LaunchResult, RuntimeError, Schedule,
};
use clsmith::{coverage_hash, CoverageClass, CoverageMap};
use std::borrow::Cow;
use std::cell::{Cell, OnceCell, RefCell};
use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Execution options for the simulated platform.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Per-work-item step budget (mapped to the paper's 60 s timeout).
    pub step_limit: u64,
    /// Whether to run the data-race detector.
    pub detect_races: bool,
    /// Work-item scheduling order.
    pub schedule: Schedule,
    /// Extra buffer overrides (e.g. the inverted EMI `dead` array, §7.4).
    /// Behind an [`Arc`] so deriving per-launch options never copies the
    /// override data; use [`Arc::make_mut`] to edit.
    pub buffer_overrides: Arc<HashMap<String, Vec<i64>>>,
    /// Which emulator execution tier runs the kernels (defaults to the
    /// bytecode tier, `CLC_INTERP_TIER` overrides process-wide).
    pub tier: ExecutionTier,
    /// On-disk cross-campaign outcome store consulted (and populated) after
    /// the in-memory caches miss (defaults to the `CLFUZZ_STORE` store, or
    /// `None` when unset).  Like memoisation, the store never changes
    /// results: outcomes are deterministic in `(fingerprint, exec key)`.
    pub store: Option<Arc<OutcomeStore>>,
    /// Whether [`Session`]s may serve repeated executions of an identical
    /// compiled program from the outcome cache (on by default).  Turning
    /// this off forces a cold compile + launch per target — outcomes are
    /// identical either way; only wall-clock changes.  This is also the
    /// opt-out for the process-wide shared cache and the on-disk store.
    pub memoize: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            step_limit: 2_000_000,
            detect_races: false,
            schedule: Schedule::Forward,
            buffer_overrides: Arc::new(HashMap::new()),
            tier: ExecutionTier::from_env(),
            store: OutcomeStore::from_env(),
            memoize: true,
        }
    }
}

/// The outcome of compiling and running one kernel on one configuration, as
/// observed by the harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestOutcome {
    /// The kernel built, ran and produced a result.
    Result {
        /// FNV-1a hash of the result string (used for voting).
        hash: u64,
        /// The comma-separated output the host program would print.
        output: String,
    },
    /// The online compiler rejected the program or crashed.
    BuildFailure(String),
    /// The kernel (or the machine) crashed at runtime.
    Crash(String),
    /// Compilation or execution exceeded the time budget.
    Timeout,
}

impl TestOutcome {
    /// Whether the outcome carries a computed result.
    pub fn is_result(&self) -> bool {
        matches!(self, TestOutcome::Result { .. })
    }

    /// The result hash, if any.
    pub fn result_hash(&self) -> Option<u64> {
        match self {
            TestOutcome::Result { hash, .. } => Some(*hash),
            _ => None,
        }
    }

    /// One-letter classification used in the paper's tables: `w`/`X` are
    /// decided by voting at the harness level, so here only `bf`, `c`, `to`
    /// and `ok` exist.
    pub fn kind(&self) -> &'static str {
        match self {
            TestOutcome::Result { .. } => "ok",
            TestOutcome::BuildFailure(_) => "bf",
            TestOutcome::Crash(_) => "c",
            TestOutcome::Timeout => "to",
        }
    }
}

/// What the simulated online compiler's front end produced for one
/// (configuration, optimisation level) target.
///
/// Not to be confused with [`clc_interp::CompiledProgram`], the emulator's
/// lowered bytecode module: this is the *platform-level* compile result —
/// the (possibly transformed) AST the device would run, or an outcome the
/// front end already decided.
#[derive(Debug)]
pub enum CompiledProgram<'s> {
    /// The outcome was decided without running the kernel: a deterministic
    /// bug rule or a background rate produced a build failure, compile
    /// hang, or crash.
    Decided {
        /// The decided outcome.
        outcome: TestOutcome,
        /// Front-end coverage recorded while deciding it (rule hits and any
        /// miscompilations collected before the deciding rule fired).
        coverage: CoverageMap,
    },
    /// The kernel must run.  `program` borrows the session's (possibly
    /// optimised) AST when no target-specific transform applied, and is
    /// owned otherwise; `fingerprint` is its structural hash, the key the
    /// execution phase memoises on.
    Execute {
        /// The compiled AST the device executes.
        program: Cow<'s, Program>,
        /// Structural fingerprint of that AST.
        fingerprint: Fingerprint,
        /// Front-end coverage: bug-rule hits, optimiser passes that changed
        /// the program, miscompilation transforms applied.  Recorded for
        /// free on the deduplicated path — the front end runs per target
        /// regardless of whether the launch is memoised.
        coverage: CoverageMap,
    },
}

/// Execution-phase caches shared by one or more [`Session`]s.
///
/// Holds the compiled-kernel cache (fingerprint → lazily lowered
/// [`CompiledKernel`]) and the outcome cache
/// (`(fingerprint, exec-option key)` → [`TestOutcome`]), plus hit/launch
/// counters.  Cheap to create; share one memo (via [`Rc`]) across the
/// sessions of related programs — e.g. the pruning variants of one EMI base,
/// where structurally identical variants then collapse to one launch — and
/// drop it with the job so cache footprint stays bounded.
#[derive(Debug, Default)]
pub struct ExecMemo {
    kernels: RefCell<HashMap<Fingerprint, Rc<CompiledKernel>>>,
    /// Outcome cache, with the launch's dynamic coverage bits stored next
    /// to each outcome so memoised hits replay the *same* coverage the real
    /// launch produced — coverage stays a deterministic function of
    /// `(fingerprint, exec key)` at any worker count.
    outcomes: RefCell<HashMap<(Fingerprint, u64), (TestOutcome, CoverageMap)>>,
    analyses: RefCell<HashMap<Fingerprint, Rc<AnalysisReport>>>,
    /// Coverage folded per *base* (unoptimised) fingerprint across every
    /// target executed so far — the per-kernel map the feedback loop reads,
    /// living next to the exec memo exactly like the analysis cache.
    coverage: RefCell<HashMap<Fingerprint, CoverageMap>>,
    stats: MemoCounters,
}

#[derive(Debug, Default)]
struct MemoCounters {
    requests: Cell<u64>,
    launches: Cell<u64>,
    compiles: Cell<u64>,
    outcome_hits: Cell<u64>,
    kernel_hits: Cell<u64>,
    shared_hits: Cell<u64>,
    store_hits: Cell<u64>,
}

/// Counter snapshot for a memo (or the whole process, see
/// [`process_cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Target executions requested ([`Session::execute`] /
    /// [`Session::reference_execute`] calls).
    pub requests: u64,
    /// Real emulator launches performed.
    pub launches: u64,
    /// Kernels lowered (compiled-kernel cache misses, plus every launch
    /// when memoisation is off).
    pub compiles: u64,
    /// Executions served from the per-job outcome cache.
    pub outcome_hits: u64,
    /// Launches that reused an already-compiled kernel.
    pub kernel_hits: u64,
    /// Executions served from the process-wide shared outcome cache (after
    /// the per-job cache missed).
    pub shared_hits: u64,
    /// Executions served from the on-disk outcome store (after both
    /// in-memory caches missed).
    pub store_hits: u64,
}

impl CacheStats {
    /// Fraction of executions that reused an already-compiled kernel — via
    /// an outcome cache (which skips the launch entirely) or the
    /// compiled-kernel cache (which skips only the lowering).  `0.0` (never
    /// `NaN`) when no lookups occurred.
    pub fn compile_hit_rate(&self) -> f64 {
        let cached = self.outcome_hits + self.shared_hits + self.store_hits + self.kernel_hits;
        let lookups = cached + self.compiles;
        if lookups == 0 {
            0.0
        } else {
            cached as f64 / lookups as f64
        }
    }

    /// Fraction of executions whose *outcome* was served from any cache
    /// level (per-job, process-wide, or on-disk store), skipping the launch
    /// entirely.  `0.0` (never `NaN`) when no lookups occurred.
    pub fn outcome_hit_rate(&self) -> f64 {
        let cached = self.outcome_hits + self.shared_hits + self.store_hits;
        let lookups = cached + self.launches;
        if lookups == 0 {
            0.0
        } else {
            cached as f64 / lookups as f64
        }
    }
}

/// The cache-counter kinds.  Doubles as the index into the process-wide
/// atomic array, so the per-memo cell and the global counter cannot drift
/// apart.
#[derive(Clone, Copy)]
enum Counter {
    Requests = 0,
    Launches = 1,
    Compiles = 2,
    OutcomeHits = 3,
    KernelHits = 4,
    SharedHits = 5,
    StoreHits = 6,
}

/// Process-wide counters aggregated across every memo (all threads), for
/// benchmark and CI reporting — indexed by [`Counter`].
static PROCESS: [AtomicU64; 7] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

fn process_count(counter: Counter) -> u64 {
    PROCESS[counter as usize].load(Ordering::Relaxed)
}

impl MemoCounters {
    fn bump(&self, counter: Counter) {
        let cell = match counter {
            Counter::Requests => &self.requests,
            Counter::Launches => &self.launches,
            Counter::Compiles => &self.compiles,
            Counter::OutcomeHits => &self.outcome_hits,
            Counter::KernelHits => &self.kernel_hits,
            Counter::SharedHits => &self.shared_hits,
            Counter::StoreHits => &self.store_hits,
        };
        cell.set(cell.get() + 1);
        PROCESS[counter as usize].fetch_add(1, Ordering::Relaxed);
    }
}

impl ExecMemo {
    /// An empty memo.
    pub fn new() -> ExecMemo {
        ExecMemo::default()
    }

    /// Counter snapshot for this memo.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            requests: self.stats.requests.get(),
            launches: self.stats.launches.get(),
            compiles: self.stats.compiles.get(),
            outcome_hits: self.stats.outcome_hits.get(),
            kernel_hits: self.stats.kernel_hits.get(),
            shared_hits: self.stats.shared_hits.get(),
            store_hits: self.stats.store_hits.get(),
        }
    }
}

/// Process-wide cache counters summed over every memo on every thread since
/// start (or the last [`reset_process_cache_stats`]).  Benchmarks use this
/// to report `launches_per_kernel` and `compile_cache_hit_rate` across a
/// whole campaign.
pub fn process_cache_stats() -> CacheStats {
    CacheStats {
        requests: process_count(Counter::Requests),
        launches: process_count(Counter::Launches),
        compiles: process_count(Counter::Compiles),
        outcome_hits: process_count(Counter::OutcomeHits),
        kernel_hits: process_count(Counter::KernelHits),
        shared_hits: process_count(Counter::SharedHits),
        store_hits: process_count(Counter::StoreHits),
    }
}

/// Zeroes the process-wide cache counters (benchmark bracketing; not
/// synchronised with concurrently running campaigns).
pub fn reset_process_cache_stats() {
    for counter in &PROCESS {
        counter.store(0, Ordering::Relaxed);
    }
}

/// Process-wide shadow-memory race-detector counters, summed over every
/// real launch that ran with race detection enabled.  Memoised outcome hits
/// add nothing (no launch happens), so these measure actual detector work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RaceDetectorStats {
    /// Launches that ran with the detector on.
    pub detected_launches: u64,
    /// Shared-memory accesses recorded.
    pub accesses: u64,
    /// Shadow arrays active (objects with at least one recorded access).
    pub shadow_arrays: u64,
    /// O(1) era bumps taken instead of clearing shadow state.
    pub epoch_bumps: u64,
}

/// Process-wide race-detector counters — indexed like [`RaceDetectorStats`]
/// fields: launches, accesses, shadow arrays, epoch bumps.
static RACE_PROCESS: [AtomicU64; 4] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

fn record_race_stats(stats: clc_interp::RaceStats) {
    RACE_PROCESS[0].fetch_add(1, Ordering::Relaxed);
    RACE_PROCESS[1].fetch_add(stats.accesses, Ordering::Relaxed);
    RACE_PROCESS[2].fetch_add(stats.shadow_arrays, Ordering::Relaxed);
    RACE_PROCESS[3].fetch_add(stats.epoch_bumps, Ordering::Relaxed);
}

/// Snapshot of the process-wide race-detector counters since start (or the
/// last [`reset_process_race_stats`]).
pub fn process_race_stats() -> RaceDetectorStats {
    RaceDetectorStats {
        detected_launches: RACE_PROCESS[0].load(Ordering::Relaxed),
        accesses: RACE_PROCESS[1].load(Ordering::Relaxed),
        shadow_arrays: RACE_PROCESS[2].load(Ordering::Relaxed),
        epoch_bumps: RACE_PROCESS[3].load(Ordering::Relaxed),
    }
}

/// Zeroes the process-wide race-detector counters (benchmark bracketing).
pub fn reset_process_race_stats() {
    for counter in &RACE_PROCESS {
        counter.store(0, Ordering::Relaxed);
    }
}

// --- The process-wide shared outcome cache (level 1) -----------------------
//
// A [`Session`]'s memo is `Rc`-confined to its job; campaigns running many
// jobs — and schedulers running many workers — re-execute structurally
// identical kernels once per job.  This sharded, mutex-guarded map shares
// outcomes across every memo in the process: lock-striping by fingerprint
// keeps worker contention negligible, and a per-shard FIFO bound keeps the
// footprint fixed.  Compiled kernels stay per-memo (`Rc`-based, deliberately
// thread-confined); only final [`TestOutcome`]s — plain data — cross threads.

/// Number of lock stripes (must be a power of two).
const SHARED_SHARDS: usize = 16;

/// Maximum outcomes retained per shard before FIFO eviction.
const SHARED_SHARD_CAP: usize = 4096;

#[derive(Default)]
struct SharedShard {
    outcomes: HashMap<(Fingerprint, u64), (TestOutcome, CoverageMap)>,
    order: VecDeque<(Fingerprint, u64)>,
}

static SHARED: OnceLock<Vec<Mutex<SharedShard>>> = OnceLock::new();

fn shared_shard(fingerprint: Fingerprint) -> &'static Mutex<SharedShard> {
    let shards = SHARED.get_or_init(|| {
        (0..SHARED_SHARDS)
            .map(|_| Mutex::new(SharedShard::default()))
            .collect()
    });
    &shards[(fingerprint.0 as usize) & (SHARED_SHARDS - 1)]
}

fn shared_get(key: &(Fingerprint, u64)) -> Option<(TestOutcome, CoverageMap)> {
    let shard = shared_shard(key.0)
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    shard.outcomes.get(key).cloned()
}

fn shared_put(key: (Fingerprint, u64), outcome: TestOutcome, coverage: CoverageMap) {
    let mut shard = shared_shard(key.0)
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if shard.outcomes.insert(key, (outcome, coverage)).is_none() {
        shard.order.push_back(key);
        if shard.order.len() > SHARED_SHARD_CAP {
            if let Some(oldest) = shard.order.pop_front() {
                shard.outcomes.remove(&oldest);
            }
        }
    }
}

/// Empties the process-wide shared outcome cache (benchmark bracketing and
/// test isolation; campaigns never need this — eviction bounds the size).
pub fn reset_shared_outcome_cache() {
    if let Some(shards) = SHARED.get() {
        for shard in shards {
            let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            shard.outcomes.clear();
            shard.order.clear();
        }
    }
}

/// A per-kernel differential execution session.
///
/// Construction performs the per-kernel work exactly once — a single hash
/// pass capturing reusable hasher state ([`ProgramHasher`]); feature
/// detection and the optimised AST are computed lazily, also at most once —
/// and every [`Session::execute`] call reuses it.  The execution phase is
/// memoised through the session's [`ExecMemo`]: targets whose front end
/// produces a bit-identical compiled AST (and identical execution-relevant
/// options) share a single emulator launch.
///
/// Sessions are single-threaded by design (the campaign engine runs one
/// kernel job per worker); the memo is [`Rc`]-based precisely so it cannot
/// leave its thread.  Cross-job and cross-worker sharing happens through
/// the process-wide shared outcome cache (and, when configured, the
/// on-disk [`OutcomeStore`]), which hold only plain-data [`TestOutcome`]s.
pub struct Session<'p> {
    program: &'p Program,
    hasher: ProgramHasher,
    base_fingerprint: Fingerprint,
    features: OnceCell<Features>,
    optimized: OnceCell<(Program, Fingerprint, u8)>,
    memo: Rc<ExecMemo>,
}

impl<'p> Session<'p> {
    /// A session over `program` with a fresh private memo.
    pub fn new(program: &'p Program) -> Session<'p> {
        Session::with_memo(program, Rc::new(ExecMemo::new()))
    }

    /// A session over `program` sharing `memo` with other sessions (e.g.
    /// the pruning variants of one EMI base within one kernel job).
    pub fn with_memo(program: &'p Program, memo: Rc<ExecMemo>) -> Session<'p> {
        let hasher = ProgramHasher::new(program);
        let base_fingerprint = hasher.fingerprint();
        Session {
            program,
            hasher,
            base_fingerprint,
            features: OnceCell::new(),
            optimized: OnceCell::new(),
            memo,
        }
    }

    /// The program under test.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The unoptimised program's structural fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        self.base_fingerprint
    }

    /// The program's detected features (computed on first use).
    pub fn features(&self) -> &Features {
        self.features.get_or_init(|| Features::detect(self.program))
    }

    /// The program's static analysis report, cached in the memo by the
    /// unoptimised fingerprint so the EMI variants and repeat jobs of one
    /// base (and any structurally identical programs sharing this memo)
    /// analyse once.
    pub fn analysis(&self) -> Rc<AnalysisReport> {
        self.memo
            .analyses
            .borrow_mut()
            .entry(self.base_fingerprint)
            .or_insert_with(|| Rc::new(clc_analyze::analyze(self.program)))
            .clone()
    }

    /// The session's memo (shared caches and counters).
    pub fn memo(&self) -> &ExecMemo {
        &self.memo
    }

    /// Coverage folded for this kernel across every target executed so far:
    /// front-end rule/pass/miscompilation bits plus the dynamic bits of the
    /// launches those targets resolved to.  Keyed in the memo by the
    /// *unoptimised* fingerprint, so repeat sessions over a structurally
    /// identical program (sharing the memo) keep accumulating one map.
    pub fn coverage(&self) -> CoverageMap {
        self.memo
            .coverage
            .borrow()
            .get(&self.base_fingerprint)
            .copied()
            .unwrap_or_default()
    }

    /// Folds `coverage` into this kernel's per-fingerprint map.
    fn fold_coverage(&self, coverage: &CoverageMap) {
        self.memo
            .coverage
            .borrow_mut()
            .entry(self.base_fingerprint)
            .or_default()
            .merge(coverage);
    }

    /// Deterministic pseudo-probability in `[0, 1)` for a background
    /// outcome roll: bit-identical to hashing
    /// `(program, config.id, opt, salt)` from scratch, but reusing the
    /// captured program prefix.
    fn chance(&self, config: &Configuration, opt: OptLevel, salt: &str) -> f64 {
        let h = self.hasher.chain(&(config.id, opt, salt));
        (h % 1_000_000) as f64 / 1_000_000.0
    }

    /// The passes-optimised AST, its fingerprint, and the `PASS_BIT_*` mask
    /// of passes that changed the program (computed once and shared by
    /// every optimising target).
    fn optimized(&self) -> (&Program, Fingerprint, u8) {
        let (program, fingerprint, pass_bits) = self.optimized.get_or_init(|| {
            let mut optimized = self.program.clone();
            let pass_bits = passes::optimize_traced(&mut optimized);
            let fingerprint = optimized.fingerprint();
            (optimized, fingerprint, pass_bits)
        });
        (program, *fingerprint, *pass_bits)
    }

    /// The front-end phase: deterministic bug rules, background-rate rolls,
    /// optimisation passes and triggered miscompilations for one target.
    ///
    /// Pure per target — it touches no cache except the session's shared
    /// optimised AST — and returns either a decided outcome or the compiled
    /// AST with its fingerprint.
    pub fn compile(&self, config: &Configuration, opt: OptLevel) -> CompiledProgram<'_> {
        // --- Deterministic bug rules --------------------------------------
        let mut coverage = CoverageMap::new();
        let mut miscompilations = Vec::new();
        for rule in &config.rules {
            if !rule.applies(self.features(), self.program, opt) {
                continue;
            }
            coverage.set_hash(CoverageClass::Rules, coverage_hash(rule.name));
            match &rule.effect {
                BugEffect::BuildFailure(msg) => {
                    return CompiledProgram::Decided {
                        outcome: TestOutcome::BuildFailure(format!("{} [{}]", msg, rule.reference)),
                        coverage,
                    }
                }
                BugEffect::CompileHang(_) => {
                    return CompiledProgram::Decided {
                        outcome: TestOutcome::Timeout,
                        coverage,
                    }
                }
                BugEffect::RuntimeCrash(msg) => {
                    return CompiledProgram::Decided {
                        outcome: TestOutcome::Crash(format!("{} [{}]", msg, rule.reference)),
                        coverage,
                    }
                }
                BugEffect::Miscompile(m) => {
                    coverage.set(CoverageClass::Miscompiles, m.coverage_bit());
                    miscompilations.push(*m);
                }
            }
        }

        // --- Background (rate-based) outcomes -----------------------------
        // All rolls are independent hashes of (program, config, opt, salt),
        // so rolling the crash rate here — before compilation rather than
        // after, where the historical code drew it — decides exactly the
        // same outcomes in the same precedence order.
        let rates = config.rates(opt);
        let uses_barriers = self.features().barrier_count > 0;
        if self.chance(config, opt, "bf") < rates.build_failure {
            return CompiledProgram::Decided {
                outcome: TestOutcome::BuildFailure(
                    "driver rejected the program (background rate)".into(),
                ),
                coverage,
            };
        }
        if self.chance(config, opt, "to") < rates.timeout {
            return CompiledProgram::Decided {
                outcome: TestOutcome::Timeout,
                coverage,
            };
        }
        let wrong_rate = rates.wrong_code
            + if uses_barriers {
                rates.barrier_wrong_bonus
            } else {
                0.0
            };
        let perturb = self.chance(config, opt, "wc") < wrong_rate;
        let crash_rate = rates.runtime_crash
            + if uses_barriers {
                rates.barrier_crash_bonus
            } else {
                0.0
            };
        if self.chance(config, opt, "crash") < crash_rate {
            return CompiledProgram::Decided {
                outcome: TestOutcome::Crash("kernel execution crashed (background rate)".into()),
                coverage,
            };
        }

        // --- Compilation --------------------------------------------------
        let (base, base_fingerprint) = if opt == OptLevel::Enabled && config.optimizes {
            let (base, base_fingerprint, pass_bits) = self.optimized();
            for bit in 0..8 {
                if pass_bits & (1 << bit) != 0 {
                    coverage.set(CoverageClass::Passes, bit);
                }
            }
            (base, base_fingerprint)
        } else {
            (self.program, self.base_fingerprint)
        };
        if miscompilations.is_empty() && !perturb {
            return CompiledProgram::Execute {
                program: Cow::Borrowed(base),
                fingerprint: base_fingerprint,
                coverage,
            };
        }
        let mut compiled = base.clone();
        for m in &miscompilations {
            apply_miscompilation(&mut compiled, *m);
        }
        if perturb {
            let salt = self.hasher.chain(&(config.id, "perturb"));
            let perturbation = Miscompilation::PerturbLiteral(salt);
            coverage.set(CoverageClass::Miscompiles, perturbation.coverage_bit());
            apply_miscompilation(&mut compiled, perturbation);
        }
        let fingerprint = compiled.fingerprint();
        CompiledProgram::Execute {
            program: Cow::Owned(compiled),
            fingerprint,
            coverage,
        }
    }

    /// Compiles and executes the kernel on one target, sharing front-end
    /// state and (when `exec.memoize` is on) emulator launches with every
    /// other target of this session's memo.
    pub fn execute(
        &self,
        config: &Configuration,
        opt: OptLevel,
        exec: &ExecOptions,
    ) -> TestOutcome {
        self.memo.stats.bump(Counter::Requests);
        let (outcome, mut coverage) = match self.compile(config, opt) {
            CompiledProgram::Decided { outcome, coverage } => (outcome, coverage),
            CompiledProgram::Execute {
                program,
                fingerprint,
                coverage,
            } => (self.run(program, fingerprint, exec), coverage),
        };
        // The outcome *kind* is itself a coverage signal (a kernel that
        // provokes its first build failure or crash is interesting), and it
        // is available on every path — decided, memoised or launched.
        coverage.set(CoverageClass::Dynamic, outcome_kind_bit(&outcome));
        self.fold_coverage(&coverage);
        outcome
    }

    /// Executes on the reference emulator with no configuration-specific
    /// behaviour, through the same memoised execution phase — so e.g. the
    /// two runs of an EMI liveness probe share one lowered kernel.
    pub fn reference_execute(&self, exec: &ExecOptions) -> TestOutcome {
        self.memo.stats.bump(Counter::Requests);
        self.run(Cow::Borrowed(self.program), self.base_fingerprint, exec)
    }

    /// The execution phase: launch a compiled program, memoised by
    /// `(fingerprint, exec-relevant options)`.
    ///
    /// Lookup order on the memoised path: the per-job memo, then the
    /// process-wide shared cache, then the on-disk store (when one is
    /// configured); a launch back-fills every level, and a hit at an outer
    /// level back-fills the levels inside it.  All three levels key on the
    /// same `(fingerprint, exec key)` pair, and outcomes are deterministic
    /// functions of that pair, so hits can never change a result.
    fn run(
        &self,
        program: Cow<'_, Program>,
        fingerprint: Fingerprint,
        exec: &ExecOptions,
    ) -> TestOutcome {
        let options = launch_options(exec);
        if !exec.memoize {
            self.memo.stats.bump(Counter::Compiles);
            self.memo.stats.bump(Counter::Launches);
            let result = clc_interp::launch(&program, &options);
            self.fold_coverage(&dynamic_coverage(&result));
            return launch_outcome(result);
        }
        let key = (fingerprint, exec_key(exec));
        if let Some((hit, coverage)) = self.memo.outcomes.borrow().get(&key) {
            self.memo.stats.bump(Counter::OutcomeHits);
            self.fold_coverage(coverage);
            return hit.clone();
        }
        if let Some((hit, coverage)) = shared_get(&key) {
            self.memo.stats.bump(Counter::SharedHits);
            self.fold_coverage(&coverage);
            self.memo
                .outcomes
                .borrow_mut()
                .insert(key, (hit.clone(), coverage));
            return hit;
        }
        if let Some(store) = &exec.store {
            if let Some(hit) = store.get(fingerprint, key.1) {
                // The store holds outcomes only, so a store hit replays no
                // launch-derived dynamic bits; the empty map is cached so
                // later requests for this key stay consistent in-process.
                self.memo.stats.bump(Counter::StoreHits);
                shared_put(key, hit.clone(), CoverageMap::new());
                self.memo
                    .outcomes
                    .borrow_mut()
                    .insert(key, (hit.clone(), CoverageMap::new()));
                return hit;
            }
        }
        let kernel = {
            let mut kernels = self.memo.kernels.borrow_mut();
            match kernels.entry(fingerprint) {
                Entry::Occupied(entry) => {
                    self.memo.stats.bump(Counter::KernelHits);
                    Rc::clone(entry.get())
                }
                Entry::Vacant(entry) => {
                    self.memo.stats.bump(Counter::Compiles);
                    Rc::clone(entry.insert(Rc::new(CompiledKernel::compile(program.into_owned()))))
                }
            }
        };
        self.memo.stats.bump(Counter::Launches);
        let result = kernel.launch(&options);
        let coverage = dynamic_coverage(&result);
        self.fold_coverage(&coverage);
        let outcome = launch_outcome(result);
        self.memo
            .outcomes
            .borrow_mut()
            .insert(key, (outcome.clone(), coverage));
        shared_put(key, outcome.clone(), coverage);
        if let Some(store) = &exec.store {
            store.put(fingerprint, key.1, &outcome);
        }
        outcome
    }
}

/// Compiles and executes a kernel on a simulated configuration.
///
/// One-shot form of [`Session::execute`]; a caller fanning the same kernel
/// over many targets should hold a [`Session`] so compiled programs and
/// outcomes are shared across the fan-out.
pub fn execute(
    program: &Program,
    config: &Configuration,
    opt: OptLevel,
    exec: &ExecOptions,
) -> TestOutcome {
    Session::new(program).execute(config, opt, exec)
}

/// Executes on the reference emulator with no configuration-specific
/// behaviour (the oracle used by the harness to sanity-check majorities and
/// by the reducer).
pub fn reference_execute(program: &Program, exec: &ExecOptions) -> TestOutcome {
    let options = launch_options(exec);
    launch_outcome(clc_interp::launch(program, &options))
}

/// Derives the emulator launch options for one execution.
fn launch_options(exec: &ExecOptions) -> LaunchOptions {
    LaunchOptions {
        step_limit: exec.step_limit,
        detect_races: exec.detect_races,
        schedule: exec.schedule,
        buffer_overrides: Arc::clone(&exec.buffer_overrides),
        scalar_args: HashMap::new(),
        tier: exec.tier,
    }
}

/// Maps an emulator result onto the platform outcome surface, folding the
/// launch's race-detector counters (when detection ran) into the
/// process-wide aggregate.
fn launch_outcome(result: Result<clc_interp::LaunchResult, RuntimeError>) -> TestOutcome {
    if let Ok(result) = &result {
        if let Some(stats) = result.race_stats {
            record_race_stats(stats);
        }
    }
    match result {
        Ok(result) => TestOutcome::Result {
            hash: result.result_hash,
            output: result.result_string,
        },
        Err(RuntimeError::StepLimitExceeded { .. }) => TestOutcome::Timeout,
        Err(e) => TestOutcome::Crash(e.to_string()),
    }
}

/// The dynamic-class coverage bit for an outcome kind (bits 4..=7: ok, bf,
/// crash, timeout).  Available on every path — decided, memoised, launched.
fn outcome_kind_bit(outcome: &TestOutcome) -> u32 {
    match outcome.kind() {
        "ok" => 4,
        "bf" => 5,
        "c" => 6,
        _ => 7,
    }
}

/// Maps one emulator launch onto the dynamic word of the coverage map —
/// the thread-aware feedback bits (à la MUZZ) the blind campaign never saw.
///
/// Layout of the `Dynamic` class word:
///
/// * bit 0 — a data race was detected;
/// * bit 1 — barrier divergence;
/// * bit 2 — step-limit exhaustion;
/// * bit 3 — any other runtime error;
/// * bits 4..=7 — outcome kind (set in [`Session::execute`], not here);
/// * bits 8..=15 — barrier-release depth bucket (`log2` of the deepest
///   barrier ladder any work-group ran, saturated at 7);
/// * bit 16 — non-synchronising helper-function barriers executed;
/// * bits 32..=63 — race-*site* hash (object, offset, same-group), so two
///   distinct racy sites light distinct bits.
///
/// Only tier-stable signals are used (`total_steps` and the race-detector
/// work counters are tier- or schedule-specific and deliberately excluded),
/// so both interpreter tiers produce identical maps.
fn dynamic_coverage(result: &Result<LaunchResult, RuntimeError>) -> CoverageMap {
    let mut map = CoverageMap::new();
    match result {
        Ok(result) => {
            if let Some(race) = &result.race {
                map.set(CoverageClass::Dynamic, 0);
                map.set(CoverageClass::Dynamic, race_site_bit(race));
            }
            let depth = (64 - result.barrier_intervals.leading_zeros()).min(7);
            map.set(CoverageClass::Dynamic, 8 + depth);
            if result.soft_barriers > 0 {
                map.set(CoverageClass::Dynamic, 16);
            }
        }
        Err(RuntimeError::BarrierDivergence { .. }) => map.set(CoverageClass::Dynamic, 1),
        Err(RuntimeError::StepLimitExceeded { .. }) => map.set(CoverageClass::Dynamic, 2),
        Err(RuntimeError::DataRace(race)) => {
            map.set(CoverageClass::Dynamic, 0);
            map.set(CoverageClass::Dynamic, race_site_bit(race));
        }
        Err(_) => map.set(CoverageClass::Dynamic, 3),
    }
    map
}

/// One of the 32 race-site bits (32..=63) for a detected race, hashed from
/// the site's stable identity (schedule-independent parts only: the object,
/// offset and same-group flag, not the thread ids).
fn race_site_bit(race: &clc_interp::RaceReport) -> u32 {
    let site = format!("{}:{}:{}", race.object, race.offset, race.same_group);
    32 + (coverage_hash(&site) % 32) as u32
}

/// Hash of every execution option that can change a launch outcome — the
/// second half of the outcome-cache key.  Buffer overrides are folded in
/// key-sorted order so the value is independent of map iteration order.
/// `store` and `memoize` are deliberately excluded: they select *where*
/// outcomes are cached, never *what* they are.
fn exec_key(exec: &ExecOptions) -> u64 {
    let mut h = DefaultHasher::new();
    exec.step_limit.hash(&mut h);
    exec.detect_races.hash(&mut h);
    exec.schedule.hash(&mut h);
    exec.tier.hash(&mut h);
    let mut names: Vec<&String> = exec.buffer_overrides.keys().collect();
    names.sort();
    for name in names {
        name.hash(&mut h);
        exec.buffer_overrides[name].hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{all_configurations, configuration};
    use clc::{BufferSpec, Expr, IdKind, KernelDef, LaunchConfig, ScalarType, Stmt};

    fn trivial_program(value: i64) -> Program {
        let mut p = Program::new(
            KernelDef {
                name: "k".into(),
                params: Program::standard_clsmith_params(0),
                body: clc::Block::of(vec![Stmt::assign(
                    Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
                    Expr::int(value),
                )]),
            },
            LaunchConfig::single_group(4),
        );
        p.buffers
            .push(BufferSpec::result("out", ScalarType::ULong, 4));
        p
    }

    #[test]
    fn outcomes_are_deterministic() {
        let p = trivial_program(7);
        for config in all_configurations() {
            for opt in OptLevel::BOTH {
                let a = execute(&p, &config, opt, &ExecOptions::default());
                let b = execute(&p, &config, opt, &ExecOptions::default());
                assert_eq!(a, b, "config {} {}", config.id, opt);
            }
        }
    }

    #[test]
    fn reference_execution_matches_source_semantics() {
        let p = trivial_program(9);
        match reference_execute(&p, &ExecOptions::default()) {
            TestOutcome::Result { output, .. } => assert_eq!(output, "9,9,9,9"),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn healthy_configs_agree_on_a_trivial_kernel() {
        // A struct-free, barrier-free, comma-free kernel triggers none of the
        // deterministic bug rules; any disagreement would have to come from
        // the background rates, which are per-kernel deterministic, so at
        // least the NVIDIA configuration with optimisations (rate bf = 0)
        // must produce the reference answer.
        let p = trivial_program(3);
        let reference = reference_execute(&p, &ExecOptions::default());
        let outcome = execute(
            &p,
            &configuration(1),
            OptLevel::Enabled,
            &ExecOptions::default(),
        );
        if let (TestOutcome::Result { hash: a, .. }, TestOutcome::Result { hash: b, .. }) =
            (&reference, &outcome)
        {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn outcome_kinds_classify() {
        assert_eq!(TestOutcome::Timeout.kind(), "to");
        assert_eq!(TestOutcome::BuildFailure("x".into()).kind(), "bf");
        assert_eq!(TestOutcome::Crash("x".into()).kind(), "c");
        assert_eq!(
            TestOutcome::Result {
                hash: 1,
                output: "1".into()
            }
            .kind(),
            "ok"
        );
        assert!(TestOutcome::Result {
            hash: 1,
            output: "1".into()
        }
        .is_result());
        assert_eq!(TestOutcome::Timeout.result_hash(), None);
    }

    #[test]
    fn altera_rejects_vectors_in_structs() {
        use clc::{Field, StructDef, Type, VectorWidth};
        let mut p = trivial_program(1);
        p.add_struct(StructDef::new(
            "S",
            vec![Field::new(
                "x",
                Type::Vector(ScalarType::Int, VectorWidth::W4),
            )],
        ));
        let outcome = execute(
            &p,
            &configuration(20),
            OptLevel::Enabled,
            &ExecOptions::default(),
        );
        assert!(matches!(outcome, TestOutcome::BuildFailure(msg) if msg.contains("vector")));
    }

    #[test]
    fn oclgrind_miscompiles_comma_kernels() {
        let mut p = trivial_program(1);
        p.kernel.body.stmts[0] = Stmt::assign(
            Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
            Expr::comma(Expr::int(5), Expr::int(1)),
        );
        let reference = reference_execute(&p, &ExecOptions::default());
        let oclgrind = execute(
            &p,
            &configuration(19),
            OptLevel::Disabled,
            &ExecOptions::default(),
        );
        match (reference, oclgrind) {
            (TestOutcome::Result { output: r, .. }, TestOutcome::Result { output: o, .. }) => {
                assert_eq!(r, "1,1,1,1");
                assert_eq!(o, "5,5,5,5");
            }
            other => panic!("unexpected outcomes {other:?}"),
        }
    }

    #[test]
    fn session_fan_out_collapses_identical_compiles_to_few_launches() {
        let p = trivial_program(5);
        let session = Session::new(&p);
        let exec = ExecOptions::default();
        let mut outcomes = Vec::new();
        for config in all_configurations() {
            for opt in OptLevel::BOTH {
                outcomes.push(session.execute(&config, opt, &exec));
            }
        }
        let stats = session.memo().stats();
        assert_eq!(stats.requests, 42);
        assert!(
            stats.launches < stats.requests / 2,
            "expected heavy deduplication, got {stats:?}"
        );
        assert!(stats.launches >= 1);
        assert_eq!(stats.compiles, stats.launches, "one compile per launch: each distinct outcome-cache miss here is a distinct compiled AST");
        // Every computed result must be reproduced by the cold path.
        for (i, (config, opt)) in all_configurations()
            .iter()
            .flat_map(|c| OptLevel::BOTH.map(|o| (c.clone(), o)))
            .enumerate()
        {
            let cold = ExecOptions {
                memoize: false,
                ..ExecOptions::default()
            };
            assert_eq!(
                outcomes[i],
                execute(&p, &config, opt, &cold),
                "config {} {opt} diverged under memoisation",
                config.id
            );
        }
    }

    #[test]
    fn session_memoisation_matches_cold_execution_for_generated_outcomes() {
        // The memo key must separate different exec options for the same
        // fingerprint: the same program with a different schedule or step
        // limit is a different cache line.
        let p = trivial_program(2);
        let session = Session::new(&p);
        let fast = ExecOptions::default();
        let strict = ExecOptions {
            step_limit: 1, // tiny budget: the kernel times out
            ..ExecOptions::default()
        };
        let ok = session.reference_execute(&fast);
        let starved = session.reference_execute(&strict);
        assert!(ok.is_result());
        assert_eq!(starved, TestOutcome::Timeout);
        // Same options again: served from cache, same value.
        assert_eq!(session.reference_execute(&fast), ok);
        let stats = session.memo().stats();
        assert_eq!(stats.launches, 2, "two distinct exec-option sets");
        assert_eq!(stats.outcome_hits, 1);
        assert_eq!(stats.compiles, 1, "one lowered kernel serves both");
    }

    #[test]
    fn shared_memo_deduplicates_across_sessions_of_identical_programs() {
        // Two structurally identical programs behind one memo — the EMI
        // variant case — must share both the compile and the launch.
        let a = trivial_program(4);
        let b = trivial_program(4);
        let memo = Rc::new(ExecMemo::new());
        let sa = Session::with_memo(&a, Rc::clone(&memo));
        let sb = Session::with_memo(&b, Rc::clone(&memo));
        let exec = ExecOptions::default();
        assert_eq!(sa.reference_execute(&exec), sb.reference_execute(&exec));
        let stats = memo.stats();
        assert_eq!(stats.launches, 1);
        assert_eq!(stats.outcome_hits, 1);
    }

    #[test]
    fn hit_rates_are_zero_not_nan_without_lookups() {
        let empty = CacheStats::default();
        assert_eq!(empty.compile_hit_rate(), 0.0);
        assert_eq!(empty.outcome_hit_rate(), 0.0);
        let busy = CacheStats {
            launches: 1,
            outcome_hits: 1,
            shared_hits: 1,
            store_hits: 1,
            ..CacheStats::default()
        };
        assert_eq!(busy.outcome_hit_rate(), 0.75);
    }

    #[test]
    fn shared_cache_and_store_serve_outcomes_beyond_the_job_memo() {
        // This is the only test allowed to call reset_shared_outcome_cache:
        // other tests' shared-cache expectations must not race a reset.
        //
        // Part 1 — the on-disk store survives a simulated process death
        // (shared cache cleared, store reopened from the directory).
        let dir =
            std::env::temp_dir().join(format!("clfuzz-platform-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let p = trivial_program(12);
        let store = Arc::new(OutcomeStore::open_with_cap(&dir, u64::MAX).unwrap());
        let exec = ExecOptions {
            store: Some(Arc::clone(&store)),
            ..ExecOptions::default()
        };
        let first = Session::new(&p).reference_execute(&exec);
        assert_eq!(store.stats().writes, 1);
        reset_shared_outcome_cache();
        let reopened = Arc::new(OutcomeStore::open_with_cap(&dir, u64::MAX).unwrap());
        let exec = ExecOptions {
            store: Some(Arc::clone(&reopened)),
            ..ExecOptions::default()
        };
        let session = Session::new(&p);
        assert_eq!(session.reference_execute(&exec), first);
        let stats = session.memo().stats();
        assert_eq!(stats.launches, 0, "warm store must skip the launch");
        assert_eq!(stats.store_hits, 1);
        assert_eq!(reopened.stats().hits, 1);
        let _ = std::fs::remove_dir_all(&dir);

        // Part 2 — the process-wide shared cache deduplicates across
        // sessions with independent memos (i.e. across jobs).
        let q = trivial_program(11);
        let exec = ExecOptions {
            store: None,
            ..ExecOptions::default()
        };
        let a = Session::new(&q);
        let cold = a.reference_execute(&exec);
        assert_eq!(a.memo().stats().launches, 1);
        let b = Session::new(&q); // fresh memo, same process
        assert_eq!(b.reference_execute(&exec), cold);
        let stats = b.memo().stats();
        assert_eq!(stats.launches, 0, "served from the process-wide cache");
        assert_eq!(stats.shared_hits, 1);
        // The per-job memo is back-filled: a repeat hits locally.
        assert_eq!(b.reference_execute(&exec), cold);
        assert_eq!(b.memo().stats().outcome_hits, 1);
    }

    #[test]
    fn coverage_replays_identically_from_every_cache_level() {
        let p = trivial_program(11);
        let exec = ExecOptions {
            store: None,
            ..ExecOptions::default()
        };
        let fan_out = |exec: &ExecOptions| {
            let session = Session::new(&p);
            for config in all_configurations() {
                for opt in OptLevel::BOTH {
                    session.execute(&config, opt, exec);
                }
            }
            session.coverage()
        };
        let cold = fan_out(&exec);
        // The outcome-kind bit fires on every path, so the map is never
        // empty; the trivial kernel must at least produce results.
        assert!(cold.contains(CoverageClass::Dynamic, 4));
        // A warm fan-out is served from the caches; the replayed coverage
        // must be bit-identical to what the real launches produced.
        assert_eq!(fan_out(&exec), cold);
        // So must a fan-out with memoisation off (all real launches).
        let unmemoised = ExecOptions {
            memoize: false,
            store: None,
            ..ExecOptions::default()
        };
        assert_eq!(fan_out(&unmemoised), cold);
    }

    #[test]
    fn front_end_reuses_the_optimised_ast_across_targets() {
        let p = trivial_program(6);
        let session = Session::new(&p);
        // Two optimising configurations at the enabled level: both borrow
        // the session's optimised AST (same fingerprint) unless a
        // miscompilation or perturbation applies.
        let mut fingerprints = Vec::new();
        for id in [1usize, 3] {
            if let CompiledProgram::Execute { fingerprint, .. } =
                session.compile(&configuration(id), OptLevel::Enabled)
            {
                fingerprints.push(fingerprint);
            }
        }
        assert_eq!(fingerprints.len(), 2);
        assert_eq!(fingerprints[0], fingerprints[1]);
    }
}
