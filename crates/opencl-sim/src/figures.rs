//! The bug-exhibiting kernels of Figures 1 and 2 of the paper, rebuilt as
//! [`clc::Program`]s.
//!
//! Each [`FigureKernel`] records the expected (correct) output and which
//! simulated configurations demonstrate the corresponding bug.  They serve
//! three purposes: documentation of the bug classes, unit tests of the bug
//! models in [`crate::bugs`]/[`crate::configs`], and the data behind the
//! `figures` reproduction binary.
//!
//! A few kernels are lightly adapted where the paper's exact program relies
//! on byte-level layout or on behaviour our cell-based emulator reports as
//! undefined; every adaptation preserves the bug-triggering feature and is
//! noted in the kernel's caption.

use crate::bugs::OptLevel;
use clc::expr::{AssignOp, BinOp, Builtin, Expr, IdKind};
use clc::stmt::{Block, Initializer, MemFence, Stmt};
use clc::types::{AddressSpace, Field, ScalarType, StructDef, Type, VectorWidth};
use clc::{BufferInit, BufferSpec, FunctionDef, KernelDef, LaunchConfig, Param, Program};

/// A figure kernel together with its expected behaviour.
#[derive(Debug, Clone)]
pub struct FigureKernel {
    /// Figure label, e.g. `"1(a)"`.
    pub id: &'static str,
    /// Short description (the figure caption, abridged).
    pub caption: &'static str,
    /// The kernel.
    pub program: Program,
    /// The output a correct implementation produces.
    pub expected_output: String,
    /// Configurations (id, optimisation level) that demonstrate the bug,
    /// together with the observable misbehaviour.
    pub demonstrates: Vec<(usize, OptLevel, &'static str)>,
}

fn out_param() -> Param {
    Param::new(
        "out",
        Type::Scalar(ScalarType::ULong).pointer_to(AddressSpace::Global),
    )
}

fn kernel_program(params: Vec<Param>, body: Block, threads: usize) -> Program {
    let mut p = Program::new(
        KernelDef {
            name: "k".into(),
            params,
            body,
        },
        LaunchConfig::single_group(threads),
    );
    p.buffers
        .push(BufferSpec::result("out", ScalarType::ULong, threads));
    p
}

fn write_out(value: Expr) -> Stmt {
    Stmt::assign(
        Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
        value,
    )
}

/// Figure 1(a): char-then-wider struct miscompiled by the AMD configurations.
pub fn figure_1a() -> FigureKernel {
    let mut p = kernel_program(vec![out_param()], Block::new(), 2);
    let s = p.add_struct(StructDef::new(
        "S",
        vec![
            Field::new("a", Type::Scalar(ScalarType::Char)),
            Field::new("b", Type::Scalar(ScalarType::Short)),
        ],
    ));
    p.kernel.body.push(Stmt::decl_init_list(
        "s",
        Type::Struct(s),
        Initializer::of_exprs(vec![Expr::int(1), Expr::int(1)]),
    ));
    p.kernel.body.push(write_out(Expr::binary(
        BinOp::Add,
        Expr::field(Expr::var("s"), "a"),
        Expr::field(Expr::var("s"), "b"),
    )));
    FigureKernel {
        id: "1(a)",
        caption: "struct S { char a; short b; } initialised to {1, 1}; out = s.a + s.b",
        program: p,
        expected_output: "2,2".into(),
        demonstrates: vec![
            (5, OptLevel::Enabled, "yields 1 (expected 2)"),
            (6, OptLevel::Enabled, "yields 1 (expected 2)"),
            (16, OptLevel::Enabled, "yields 1 (expected 2)"),
        ],
    }
}

/// Figure 1(b): whole-struct copy read back through a pointer, miscompiled
/// only when `Nx = 1` (adapted: the destination struct is zero-initialised so
/// the stale read is well-defined).
pub fn figure_1b() -> FigureKernel {
    let mut p = Program::new(
        KernelDef {
            name: "k".into(),
            params: vec![out_param()],
            body: Block::new(),
        },
        LaunchConfig::new([1, 2, 1], [1, 2, 1]).expect("valid launch"),
    );
    p.buffers
        .push(BufferSpec::result("out", ScalarType::ULong, 2));
    let s = p.add_struct(StructDef::new(
        "S",
        vec![
            Field::new("a", Type::Scalar(ScalarType::Short)),
            Field::new("b", Type::Scalar(ScalarType::Int)),
            Field::volatile("c", Type::Scalar(ScalarType::Char)),
            Field::new("d", Type::Scalar(ScalarType::Int)),
            Field::new("e", Type::Scalar(ScalarType::Int)),
            Field::new("f", Type::Scalar(ScalarType::Short).array_of(10)),
        ],
    ));
    p.kernel.body.push(Stmt::decl_init_list(
        "s",
        Type::Struct(s),
        Initializer::of_exprs(vec![Expr::int(0)]),
    ));
    p.kernel.body.push(Stmt::decl(
        "p",
        Type::Struct(s).pointer_to(AddressSpace::Private),
        Some(Expr::addr_of(Expr::var("s"))),
    ));
    p.kernel.body.push(Stmt::decl_init_list(
        "t",
        Type::Struct(s),
        Initializer::List(vec![
            Initializer::Expr(Expr::int(0)),
            Initializer::Expr(Expr::int(0)),
            Initializer::Expr(Expr::int(0)),
            Initializer::Expr(Expr::int(0)),
            Initializer::Expr(Expr::int(0)),
            Initializer::of_exprs(vec![
                Expr::int(0),
                Expr::int(0),
                Expr::int(0),
                Expr::int(0),
                Expr::int(0),
                Expr::int(0),
                Expr::int(0),
                Expr::int(1),
                Expr::int(0),
                Expr::int(0),
            ]),
        ]),
    ));
    p.kernel
        .body
        .push(Stmt::assign(Expr::var("s"), Expr::var("t")));
    p.kernel.body.push(write_out(Expr::index(
        Expr::arrow(Expr::var("p"), "f"),
        Expr::int(7),
    )));
    FigureKernel {
        id: "1(b)",
        caption: "struct copy `s = t` then read `p->f[7]` through a pointer; only miscompiled when Nx = 1",
        program: p,
        expected_output: "1,1".into(),
        demonstrates: vec![
            (10, OptLevel::Disabled, "yields 0 (expected 1)"),
            (11, OptLevel::Disabled, "yields 0 (expected 1)"),
        ],
    }
}

/// Figure 1(c): a vector inside a struct makes the Altera front end fail.
pub fn figure_1c() -> FigureKernel {
    let mut p = kernel_program(vec![out_param()], Block::new(), 2);
    let s = p.add_struct(StructDef::new(
        "S",
        vec![Field::new(
            "x",
            Type::Vector(ScalarType::Int, VectorWidth::W4),
        )],
    ));
    p.kernel.body.push(Stmt::decl_init_list(
        "s",
        Type::Struct(s),
        Initializer::List(vec![Initializer::Expr(Expr::VectorLit {
            elem: ScalarType::Int,
            width: VectorWidth::W4,
            parts: vec![
                Expr::VectorLit {
                    elem: ScalarType::Int,
                    width: VectorWidth::W2,
                    parts: vec![Expr::int(1), Expr::int(1)],
                },
                Expr::int(1),
                Expr::int(1),
            ],
        })]),
    ));
    p.kernel
        .body
        .push(write_out(Expr::lane(Expr::field(Expr::var("s"), "x"), 0)));
    FigureKernel {
        id: "1(c)",
        caption: "a vector type used as a struct member",
        program: p,
        expected_output: "1,1".into(),
        demonstrates: vec![
            (20, OptLevel::Enabled, "internal error during IR generation"),
            (
                20,
                OptLevel::Disabled,
                "internal error during IR generation",
            ),
            (21, OptLevel::Enabled, "internal error during IR generation"),
            (
                21,
                OptLevel::Disabled,
                "internal error during IR generation",
            ),
        ],
    }
}

/// Figure 1(d): a store through a struct pointer inside a helper function is
/// lost when the kernel also contains a barrier.
pub fn figure_1d() -> FigureKernel {
    let mut p = kernel_program(vec![out_param()], Block::new(), 2);
    let s = p.add_struct(StructDef::new(
        "S",
        vec![
            Field::new("x", Type::Scalar(ScalarType::Int)),
            Field::new("y", Type::Scalar(ScalarType::Int)),
        ],
    ));
    p.functions.push(FunctionDef::new(
        "f",
        None,
        vec![Param::new(
            "p",
            Type::Struct(s).pointer_to(AddressSpace::Private),
        )],
        Block::of(vec![Stmt::assign(
            Expr::arrow(Expr::var("p"), "x"),
            Expr::int(2),
        )]),
    ));
    p.kernel.body.push(Stmt::decl_init_list(
        "s",
        Type::Struct(s),
        Initializer::of_exprs(vec![Expr::int(1), Expr::int(1)]),
    ));
    p.kernel.body.push(Stmt::Barrier(MemFence::Local));
    p.kernel.body.push(Stmt::expr(Expr::call(
        "f",
        vec![Expr::addr_of(Expr::var("s"))],
    )));
    p.kernel.body.push(write_out(Expr::binary(
        BinOp::Add,
        Expr::field(Expr::var("s"), "x"),
        Expr::field(Expr::var("s"), "y"),
    )));
    FigureKernel {
        id: "1(d)",
        caption: "barrier(); f(&s) where f writes p->x = 2; out = s.x + s.y",
        program: p,
        expected_output: "3,3".into(),
        demonstrates: vec![
            (17, OptLevel::Enabled, "yields 2 (expected 3)"),
            (17, OptLevel::Disabled, "yields 2 (expected 3)"),
        ],
    }
}

/// Figure 1(e): the Intel HD compilers hang on `while(1)` under a `for` loop
/// with bound 197.
pub fn figure_1e() -> FigureKernel {
    let mut p = kernel_program(
        vec![
            out_param(),
            Param::new(
                "p",
                Type::Scalar(ScalarType::Int).pointer_to(AddressSpace::Global),
            ),
        ],
        Block::new(),
        2,
    );
    p.buffers
        .push(BufferSpec::new("p", ScalarType::Int, 2, BufferInit::Zero));
    p.kernel.body.push(Stmt::For {
        init: Some(Box::new(Stmt::decl(
            "i",
            Type::Scalar(ScalarType::Int),
            Some(Expr::int(0)),
        ))),
        cond: Some(Expr::binary(BinOp::Lt, Expr::var("i"), Expr::int(197))),
        update: Some(Expr::assign_op(
            AssignOp::AddAssign,
            Expr::var("i"),
            Expr::int(1),
        )),
        body: Block::of(vec![Stmt::if_then(
            Expr::deref(Expr::var("p")),
            Block::of(vec![Stmt::While {
                cond: Expr::int(1),
                body: Block::new(),
            }]),
        )]),
    });
    p.kernel.body.push(write_out(Expr::int(0)));
    FigureKernel {
        id: "1(e)",
        caption: "for (i < 197) if (*p) while (1) {} — compiles forever on Intel HD Graphics",
        program: p,
        expected_output: "0,0".into(),
        demonstrates: vec![
            (7, OptLevel::Enabled, "compiler never terminates (timeout)"),
            (8, OptLevel::Enabled, "compiler never terminates (timeout)"),
        ],
    }
}

/// Figure 1(f): large struct plus a barrier makes Xeon Phi compilation take
/// more than 20 seconds.
pub fn figure_1f() -> FigureKernel {
    let mut p = kernel_program(vec![out_param()], Block::new(), 2);
    let s = p.add_struct(StructDef::new(
        "S",
        vec![
            Field::new("a", Type::Scalar(ScalarType::Int)),
            Field::new(
                "b",
                Type::Scalar(ScalarType::Int).pointer_to(AddressSpace::Private),
            ),
            Field::new(
                "c",
                Type::Scalar(ScalarType::ULong)
                    .array_of(3)
                    .array_of(9)
                    .array_of(9),
            ),
        ],
    ));
    p.kernel.body.push(Stmt::decl_init_list(
        "s",
        Type::Struct(s),
        Initializer::of_exprs(vec![Expr::int(0)]),
    ));
    p.kernel.body.push(Stmt::decl(
        "p",
        Type::Struct(s).pointer_to(AddressSpace::Private),
        Some(Expr::addr_of(Expr::var("s"))),
    ));
    p.kernel.body.push(Stmt::decl_init_list(
        "t",
        Type::Struct(s),
        Initializer::List(vec![
            Initializer::Expr(Expr::int(0)),
            Initializer::Expr(Expr::addr_of(Expr::arrow(Expr::var("p"), "a"))),
            Initializer::List(vec![]),
        ]),
    ));
    p.kernel
        .body
        .push(Stmt::assign(Expr::var("s"), Expr::var("t")));
    p.kernel.body.push(Stmt::Barrier(MemFence::Local));
    p.kernel.body.push(write_out(Expr::index(
        Expr::index(
            Expr::index(Expr::arrow(Expr::var("p"), "c"), Expr::int(0)),
            Expr::int(0),
        ),
        Expr::int(1),
    )));
    FigureKernel {
        id: "1(f)",
        caption:
            "ulong c[9][9][3] struct member, a struct copy and a barrier: >20 s compile on Xeon Phi",
        program: p,
        expected_output: "0,0".into(),
        demonstrates: vec![(
            18,
            OptLevel::Enabled,
            "compilation exceeds 20 seconds (timeout)",
        )],
    }
}

/// Figure 2(a): brace-initialised union inside a struct gets garbage upper
/// bytes on the NVIDIA configurations without optimisations.
pub fn figure_2a() -> FigureKernel {
    let mut p = Program::new(
        KernelDef {
            name: "k".into(),
            params: vec![
                out_param(),
                Param::new(
                    "in",
                    Type::Scalar(ScalarType::Int).pointer_to(AddressSpace::Global),
                ),
            ],
            body: Block::new(),
        },
        LaunchConfig::new([2, 1, 1], [2, 1, 1]).expect("valid launch"),
    );
    p.buffers
        .push(BufferSpec::result("out", ScalarType::ULong, 2));
    p.buffers
        .push(BufferSpec::new("in", ScalarType::Int, 2, BufferInit::Iota));
    let s = p.add_struct(StructDef::new(
        "S",
        vec![
            Field::new("c", Type::Scalar(ScalarType::Short)),
            Field::new("d", Type::Scalar(ScalarType::Long)),
        ],
    ));
    let u = p.add_struct(StructDef::union(
        "U",
        vec![
            Field::new("a", Type::Scalar(ScalarType::UInt)),
            Field::new("b", Type::Struct(s)),
        ],
    ));
    let t = p.add_struct(StructDef::new(
        "T",
        vec![
            Field::new("u", Type::Struct(u).array_of(1)),
            Field::new("x", Type::Scalar(ScalarType::ULong)),
            Field::new("y", Type::Scalar(ScalarType::ULong)),
        ],
    ));
    p.kernel.body.push(Stmt::decl("c", Type::Struct(t), None));
    p.kernel.body.push(Stmt::decl_init_list(
        "t",
        Type::Struct(t),
        Initializer::List(vec![
            Initializer::List(vec![Initializer::List(vec![Initializer::Expr(Expr::int(
                1,
            ))])]),
            Initializer::Expr(Expr::index(
                Expr::var("in"),
                Expr::IdQuery(IdKind::GlobalId(clc::Dim::X)),
            )),
            Initializer::Expr(Expr::index(
                Expr::var("in"),
                Expr::IdQuery(IdKind::GlobalId(clc::Dim::Y)),
            )),
        ]),
    ));
    p.kernel
        .body
        .push(Stmt::assign(Expr::var("c"), Expr::var("t")));
    p.kernel.body.push(Stmt::decl(
        "total",
        Type::Scalar(ScalarType::ULong),
        Some(Expr::lit(0, ScalarType::ULong)),
    ));
    p.kernel.body.push(Stmt::For {
        init: Some(Box::new(Stmt::decl(
            "i",
            Type::Scalar(ScalarType::Int),
            Some(Expr::int(0)),
        ))),
        cond: Some(Expr::binary(BinOp::Lt, Expr::var("i"), Expr::int(1))),
        update: Some(Expr::assign_op(
            AssignOp::AddAssign,
            Expr::var("i"),
            Expr::int(1),
        )),
        body: Block::of(vec![Stmt::expr(Expr::assign_op(
            AssignOp::AddAssign,
            Expr::var("total"),
            Expr::field(
                Expr::index(Expr::field(Expr::var("c"), "u"), Expr::var("i")),
                "a",
            ),
        ))]),
    });
    p.kernel.body.push(write_out(Expr::var("total")));
    FigureKernel {
        id: "2(a)",
        caption: "union member initialised via `{{1}}` inside a struct initialiser",
        program: p,
        expected_output: "1,1".into(),
        demonstrates: vec![
            (
                1,
                OptLevel::Disabled,
                "yields 4294901761 (0xffff0001; expected 1)",
            ),
            (2, OptLevel::Disabled, "yields 4294901761 (expected 1)"),
            (3, OptLevel::Disabled, "yields 4294901761 (expected 1)"),
            (4, OptLevel::Disabled, "yields 4294901761 (expected 1)"),
        ],
    }
}

/// Figure 2(b): rotate of a vector by zero is constant-folded to all-ones on
/// the Intel i5 configuration.
pub fn figure_2b() -> FigureKernel {
    let mut p = kernel_program(vec![out_param()], Block::new(), 2);
    p.kernel.body.push(write_out(Expr::lane(
        Expr::builtin(
            Builtin::Rotate,
            vec![
                Expr::VectorLit {
                    elem: ScalarType::UInt,
                    width: VectorWidth::W2,
                    parts: vec![
                        Expr::lit(1, ScalarType::UInt),
                        Expr::lit(1, ScalarType::UInt),
                    ],
                },
                Expr::VectorLit {
                    elem: ScalarType::UInt,
                    width: VectorWidth::W2,
                    parts: vec![
                        Expr::lit(0, ScalarType::UInt),
                        Expr::lit(0, ScalarType::UInt),
                    ],
                },
            ],
        ),
        0,
    )));
    FigureKernel {
        id: "2(b)",
        caption: "out = rotate((uint2)(1,1), (uint2)(0,0)).x",
        program: p,
        expected_output: "1,1".into(),
        demonstrates: vec![
            (
                14,
                OptLevel::Enabled,
                "yields 4294967295 (0xffffffff; expected 1)",
            ),
            (14, OptLevel::Disabled, "yields 4294967295 (expected 1)"),
        ],
    }
}

/// Figure 2(c): a barrier inside a forward-declared callee makes the Intel
/// CPU drivers lose the store `*p = f()` (and crash outright on 14−/15−).
pub fn figure_2c() -> FigureKernel {
    let mut p = kernel_program(vec![out_param()], Block::new(), 2);
    let mut f = FunctionDef::new(
        "f",
        Some(Type::Scalar(ScalarType::Int)),
        vec![],
        Block::of(vec![
            Stmt::Barrier(MemFence::Local),
            Stmt::Return(Some(Expr::int(1))),
        ]),
    );
    f.forward_declared = true;
    p.functions.push(f);
    p.functions.push(FunctionDef::new(
        "kc",
        None,
        vec![Param::new(
            "p",
            Type::Scalar(ScalarType::Int).pointer_to(AddressSpace::Private),
        )],
        Block::of(vec![
            Stmt::Barrier(MemFence::Local),
            Stmt::assign(Expr::deref(Expr::var("p")), Expr::call("f", vec![])),
        ]),
    ));
    p.functions.push(FunctionDef::new(
        "h",
        None,
        vec![Param::new(
            "p",
            Type::Scalar(ScalarType::Int).pointer_to(AddressSpace::Private),
        )],
        Block::of(vec![Stmt::expr(Expr::call("kc", vec![Expr::var("p")]))]),
    ));
    p.kernel.body.push(Stmt::decl(
        "x",
        Type::Scalar(ScalarType::Int),
        Some(Expr::int(0)),
    ));
    p.kernel.body.push(Stmt::expr(Expr::call(
        "h",
        vec![Expr::addr_of(Expr::var("x"))],
    )));
    p.kernel.body.push(write_out(Expr::var("x")));
    FigureKernel {
        id: "2(c)",
        caption: "barriers inside a forward-declared callee; *p = f() is lost / crashes",
        program: p,
        expected_output: "1,1".into(),
        demonstrates: vec![
            (
                12,
                OptLevel::Disabled,
                "a work-item observes 0 (expected 1)",
            ),
            (
                13,
                OptLevel::Disabled,
                "a work-item observes 0 (expected 1)",
            ),
            (14, OptLevel::Disabled, "segmentation fault"),
            (15, OptLevel::Disabled, "segmentation fault"),
        ],
    }
}

/// Figure 2(d): an unreachable loop body containing a barrier confuses the
/// Intel i5/Xeon drivers.  The wrong-code outcome is modelled statistically
/// (barrier-dependent crash/wrong-code rates of configurations 14/15), so no
/// deterministic demonstration is listed.
pub fn figure_2d() -> FigureKernel {
    let mut p = kernel_program(vec![out_param()], Block::new(), 2);
    let s = p.add_struct(StructDef::new(
        "S",
        vec![
            Field::new("a", Type::Scalar(ScalarType::Int)),
            Field::new(
                "b",
                Type::Scalar(ScalarType::Int)
                    .pointer_to(AddressSpace::Private)
                    .pointer_to(AddressSpace::Private),
            ),
            Field::new("c", Type::Scalar(ScalarType::Int)),
        ],
    ));
    p.functions.push(FunctionDef::new(
        "f",
        None,
        vec![Param::new(
            "s",
            Type::Struct(s).pointer_to(AddressSpace::Private),
        )],
        Block::of(vec![Stmt::For {
            init: Some(Box::new(Stmt::assign(
                Expr::arrow(Expr::var("s"), "a"),
                Expr::int(0),
            ))),
            cond: Some(Expr::binary(
                BinOp::Gt,
                Expr::arrow(Expr::var("s"), "a"),
                Expr::int(0),
            )),
            update: Some(Expr::assign(Expr::arrow(Expr::var("s"), "a"), Expr::int(0))),
            body: Block::of(vec![
                Stmt::decl("x", Type::Scalar(ScalarType::Int), Some(Expr::int(1))),
                Stmt::decl(
                    "p",
                    Type::Scalar(ScalarType::Int).pointer_to(AddressSpace::Private),
                    Some(Expr::addr_of(Expr::arrow(Expr::var("s"), "c"))),
                ),
                Stmt::Barrier(MemFence::Local),
                Stmt::assign(
                    Expr::arrow(Expr::var("s"), "c"),
                    Expr::binary(BinOp::Add, Expr::var("x"), Expr::deref(Expr::var("p"))),
                ),
            ]),
        }]),
    ));
    p.kernel.body.push(Stmt::decl_init_list(
        "s",
        Type::Struct(s),
        Initializer::of_exprs(vec![Expr::int(1), Expr::int(0), Expr::int(0)]),
    ));
    p.kernel.body.push(Stmt::expr(Expr::call(
        "f",
        vec![Expr::addr_of(Expr::var("s"))],
    )));
    p.kernel
        .body
        .push(write_out(Expr::field(Expr::var("s"), "a")));
    FigureKernel {
        id: "2(d)",
        caption: "unreachable loop body with a barrier; removing the barrier fixes the result",
        program: p,
        expected_output: "0,0".into(),
        demonstrates: vec![],
    }
}

/// Figure 2(e): a comparison involving the group id is folded to false on the
/// anonymous GPU with optimisations (adapted to the minimal guard
/// `(*p - gx) != 1`, which is the sub-expression the bug folds).
pub fn figure_2e() -> FigureKernel {
    let mut p = kernel_program(vec![out_param()], Block::new(), 1);
    p.functions.push(FunctionDef::new(
        "f",
        None,
        vec![Param::new(
            "p",
            Type::Scalar(ScalarType::Int).pointer_to(AddressSpace::Private),
        )],
        Block::of(vec![Stmt::if_then(
            Expr::binary(
                BinOp::Ne,
                Expr::binary(
                    BinOp::Sub,
                    Expr::deref(Expr::var("p")),
                    Expr::IdQuery(IdKind::GroupId(clc::Dim::X)),
                ),
                Expr::int(1),
            ),
            Block::of(vec![Stmt::assign(
                Expr::deref(Expr::var("p")),
                Expr::int(1),
            )]),
        )]),
    ));
    p.kernel.body.push(Stmt::decl(
        "x",
        Type::Scalar(ScalarType::Int),
        Some(Expr::int(0)),
    ));
    p.kernel.body.push(Stmt::expr(Expr::call(
        "f",
        vec![Expr::addr_of(Expr::var("x"))],
    )));
    p.kernel.body.push(write_out(Expr::var("x")));
    FigureKernel {
        id: "2(e)",
        caption: "guard comparing (*p - gx) against 1; evaluates to true for a single work-item",
        program: p,
        expected_output: "1".into(),
        demonstrates: vec![(9, OptLevel::Enabled, "yields 0 (expected 1)")],
    }
}

/// Figure 2(f): the comma operator is mishandled by Oclgrind (adapted: the
/// discarded operand is 0 so the mishandling is observable).
pub fn figure_2f() -> FigureKernel {
    let mut p = kernel_program(vec![out_param()], Block::new(), 2);
    p.kernel.body.push(Stmt::decl(
        "x",
        Type::Scalar(ScalarType::Short),
        Some(Expr::int(0)),
    ));
    p.kernel.body.push(Stmt::decl(
        "y",
        Type::Scalar(ScalarType::UInt),
        Some(Expr::lit(0, ScalarType::UInt)),
    ));
    p.kernel.body.push(Stmt::For {
        init: Some(Box::new(Stmt::assign(Expr::var("y"), Expr::int(-1)))),
        cond: Some(Expr::binary(
            BinOp::Ge,
            Expr::var("y"),
            Expr::lit(1, ScalarType::UInt),
        )),
        update: Some(Expr::assign_op(
            AssignOp::AddAssign,
            Expr::var("y"),
            Expr::lit(1, ScalarType::UInt),
        )),
        body: Block::of(vec![Stmt::if_then(
            Expr::comma(Expr::var("x"), Expr::int(1)),
            Block::of(vec![Stmt::Break]),
        )]),
    });
    p.kernel.body.push(write_out(Expr::var("y")));
    FigureKernel {
        id: "2(f)",
        caption: "for (y = -1; y >= 1; ++y) { if (x, 1) break; } — comma operator mishandled",
        program: p,
        expected_output: "4294967295,4294967295".into(),
        demonstrates: vec![
            (19, OptLevel::Disabled, "yields 0 (expected 0xffffffff)"),
            (19, OptLevel::Enabled, "yields 0 (expected 0xffffffff)"),
        ],
    }
}

/// All twelve figure kernels, in paper order.
pub fn all_figures() -> Vec<FigureKernel> {
    vec![
        figure_1a(),
        figure_1b(),
        figure_1c(),
        figure_1d(),
        figure_1e(),
        figure_1f(),
        figure_2a(),
        figure_2b(),
        figure_2c(),
        figure_2d(),
        figure_2e(),
        figure_2f(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::configuration;
    use crate::platform::{execute, reference_execute, ExecOptions, TestOutcome};

    #[test]
    fn reference_outputs_match_expectations() {
        for fig in all_figures() {
            assert!(
                clc::check_program(&fig.program).is_ok(),
                "figure {} fails typecheck",
                fig.id
            );
            match reference_execute(&fig.program, &ExecOptions::default()) {
                TestOutcome::Result { output, .. } => {
                    assert_eq!(output, fig.expected_output, "figure {}", fig.id)
                }
                other => panic!("figure {} reference run failed: {other:?}", fig.id),
            }
        }
    }

    #[test]
    fn demonstrating_configurations_misbehave() {
        for fig in all_figures() {
            for &(config_id, opt, note) in &fig.demonstrates {
                let config = configuration(config_id);
                let outcome = execute(&fig.program, &config, opt, &ExecOptions::default());
                // Build failures, crashes and timeouts all demonstrate a
                // defect; only a correct result needs flagging.
                if let TestOutcome::Result { output, .. } = &outcome {
                    assert_ne!(
                        output, &fig.expected_output,
                        "figure {}: configuration {}{} should misbehave ({note}) but \
                         produced the correct result",
                        fig.id, config_id, opt
                    );
                }
            }
        }
    }

    #[test]
    fn figure_2b_reproduces_the_constant_fold_value() {
        let fig = figure_2b();
        let outcome = execute(
            &fig.program,
            &configuration(14),
            OptLevel::Enabled,
            &ExecOptions::default(),
        );
        match outcome {
            TestOutcome::Result { output, .. } => assert_eq!(output, "4294967295,4294967295"),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn figure_1e_times_out_only_on_intel_hd() {
        let fig = figure_1e();
        let hd = execute(
            &fig.program,
            &configuration(7),
            OptLevel::Enabled,
            &ExecOptions::default(),
        );
        assert_eq!(hd, TestOutcome::Timeout);
        let nvidia = execute(
            &fig.program,
            &configuration(1),
            OptLevel::Enabled,
            &ExecOptions::default(),
        );
        assert!(matches!(nvidia, TestOutcome::Result { .. }));
    }

    #[test]
    fn figure_2a_union_garbage_value_matches_paper() {
        let fig = figure_2a();
        let outcome = execute(
            &fig.program,
            &configuration(1),
            OptLevel::Disabled,
            &ExecOptions::default(),
        );
        match outcome {
            TestOutcome::Result { output, .. } => {
                assert_eq!(output, "4294901761,4294901761", "0xffff0001 expected");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
}
