//! Static bounds checking of shared-object accesses against declared
//! extents.
//!
//! Works over the access set collected by the race pass: each access whose
//! subscript class yields a provable maximum cell index is compared against
//! the declared buffer / local-array length.  Classes the analyzer cannot
//! bound produce a (deduplicated) may-out-of-bounds note.

use crate::classify::{IndexClass, KernelModel};
use crate::race::Access;
use crate::report::{Diagnostic, DiagnosticKind};
use std::collections::BTreeSet;

/// Runs the bounds pass over the collected accesses.
pub fn check_bounds(accesses: &[Access], model: &KernelModel<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut seen: BTreeSet<(String, String, DiagnosticKind)> = BTreeSet::new();
    for a in accesses {
        if a.from_escape {
            continue;
        }
        let Some(info) = model.objects.get(&a.object) else {
            continue;
        };
        let Some(len) = info.len else {
            continue;
        };
        let gs = model.group_size;
        let groups = model.total_groups;
        // (max cell index reachable, whether the access definitely happens
        // at an index ≥ len on some work-item)
        let verdict = match &a.class {
            IndexClass::Const(v) => {
                if *v < 0 || *v >= len {
                    Some((DiagnosticKind::OutOfBounds, *v))
                } else {
                    None
                }
            }
            IndexClass::Thread => {
                let max = model.total_threads - 1;
                (max >= len).then_some((DiagnosticKind::OutOfBounds, max))
            }
            IndexClass::Lane(_) => {
                let max = gs - 1;
                (max >= len).then_some((DiagnosticKind::OutOfBounds, max))
            }
            IndexClass::GroupSlot { stride, slot } => {
                let max = (groups - 1) * stride + slot;
                (max >= len).then_some((DiagnosticKind::OutOfBounds, max))
            }
            IndexClass::GroupLane { stride, .. } => {
                let max = (groups - 1) * stride + gs - 1;
                (max >= len).then_some((DiagnosticKind::OutOfBounds, max))
            }
            IndexClass::Uniform | IndexClass::Unknown => Some((DiagnosticKind::MayOutOfBounds, -1)),
        };
        let Some((kind, max)) = verdict else { continue };
        if !seen.insert((a.object.clone(), a.site.clone(), kind)) {
            continue;
        }
        let message = match kind {
            DiagnosticKind::OutOfBounds => {
                format!("subscript reaches cell {max} but extent is {len}")
            }
            _ => format!("subscript cannot be bounded statically (extent {len})"),
        };
        out.push(Diagnostic {
            kind,
            object: Some(a.object.clone()),
            message,
            excerpt: a.site.clone(),
        });
    }
    out
}
