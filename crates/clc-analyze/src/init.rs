//! Use-before-init dataflow for private variables.
//!
//! A forward "maybe-uninitialised" analysis: the fact is the set of private
//! variables that may still hold an indeterminate value.  Declarations
//! without an initialiser generate, assignments (and address-taking, which
//! conservatively counts as initialisation-by-alias) kill, and any read of a
//! variable still in the set is reported.

use crate::cfg::{build_cfg, Cfg, Step};
use crate::classify::{place_root, KernelModel};
use crate::dataflow::{forward_fixpoint, Analysis};
use crate::report::{Diagnostic, DiagnosticKind};
use clc::expr::Expr;
use clc::stmt::Stmt;
use clc::types::AddressSpace;
use std::collections::BTreeSet;

/// Runs the pass over the kernel and every helper body.
pub fn check_uninit(model: &KernelModel<'_>) -> Vec<Diagnostic> {
    let mut flagged = BTreeSet::new();
    for f in &model.program.functions {
        let params: BTreeSet<String> = f.params.iter().map(|p| p.name.clone()).collect();
        run_body(model, &build_cfg(&f.body), &params, &mut flagged);
    }
    let kernel_params: BTreeSet<String> = model
        .program
        .kernel
        .params
        .iter()
        .map(|p| p.name.clone())
        .collect();
    run_body(
        model,
        &build_cfg(&model.program.kernel.body),
        &kernel_params,
        &mut flagged,
    );

    flagged
        .into_iter()
        .map(|name| Diagnostic {
            kind: DiagnosticKind::UseBeforeInit,
            object: Some(name.clone()),
            message: "private variable may be read before initialisation".into(),
            excerpt: name,
        })
        .collect()
}

fn run_body<'p>(
    model: &KernelModel<'p>,
    cfg: &Cfg<'p>,
    params: &BTreeSet<String>,
    flagged: &mut BTreeSet<String>,
) {
    let mut analysis = Uninit {
        model,
        params,
        report: None,
    };
    let entry_facts = forward_fixpoint(cfg, &mut analysis);
    // Reporting pass: replay each block's transfer from its fixpoint entry
    // fact, recording reads of maybe-uninit variables.
    let mut found = BTreeSet::new();
    analysis.report = Some(&mut found);
    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut fact = entry_facts[b].clone();
        for step in &block.steps {
            analysis.transfer(step, &mut fact);
        }
    }
    flagged.extend(found);
}

struct Uninit<'a, 'p> {
    model: &'a KernelModel<'p>,
    params: &'a BTreeSet<String>,
    report: Option<&'a mut BTreeSet<String>>,
}

impl<'a, 'p> Uninit<'a, 'p> {
    fn is_tracked_decl(&self, space: AddressSpace, name: &str) -> bool {
        space == AddressSpace::Private && !self.model.is_object(name)
    }

    /// Walks `e` in evaluation order, recording uses and applying defs.
    fn eval(&mut self, e: &'p Expr, fact: &mut BTreeSet<String>) {
        match e {
            Expr::Assign { op, lhs, rhs } => {
                self.eval(rhs, fact);
                match lhs.as_ref() {
                    Expr::Var(name) => {
                        if op.binop().is_some() {
                            self.use_var(name, fact);
                        }
                        fact.remove(name);
                    }
                    _ => {
                        // Writes through a subscript / field / pointer:
                        // subscripts are uses; a partial write counts as
                        // initialising the whole aggregate (conservative
                        // against false positives).
                        self.eval_place_subscripts(lhs, fact);
                        if op.binop().is_some() {
                            if let Some(root) = place_root(lhs) {
                                self.use_var(root, fact);
                            }
                        }
                        if let Some(root) = place_root(lhs) {
                            fact.remove(root);
                        }
                    }
                }
            }
            Expr::AddrOf(inner) => {
                self.eval_place_subscripts(inner, fact);
                // The address escapes: assume the callee / alias initialises
                // it.  (Sound for the report's *may*-uninit claim direction
                // used by the differential: we only certify, never prove a
                // bug.)
                if let Some(root) = place_root(inner) {
                    fact.remove(root);
                }
            }
            Expr::Var(name) => self.use_var(name, fact),
            Expr::Cond {
                cond,
                then_expr,
                else_expr,
            } => {
                self.eval(cond, fact);
                // Either branch may run; evaluate both against the same
                // entry fact, then merge (union of survivors).
                let mut t = fact.clone();
                self.eval(then_expr, &mut t);
                self.eval(else_expr, fact);
                fact.extend(t);
            }
            other => {
                let mut children = Vec::new();
                crate::walk::expr_children(other, &mut children);
                for c in children {
                    self.eval(c, fact);
                }
            }
        }
    }

    /// Uses occurring inside a place's subscripts (the place itself is being
    /// written, not read).
    fn eval_place_subscripts(&mut self, place: &'p Expr, fact: &mut BTreeSet<String>) {
        match place {
            Expr::Index { base, index } => {
                self.eval(index, fact);
                self.eval_place_subscripts(base, fact);
            }
            Expr::Field { base, .. } | Expr::Swizzle { base, .. } => {
                self.eval_place_subscripts(base, fact)
            }
            Expr::Deref(inner) => self.eval(inner, fact),
            Expr::AddrOf(inner) | Expr::Cast { expr: inner, .. } => {
                self.eval_place_subscripts(inner, fact)
            }
            Expr::Var(_) => {}
            other => self.eval(other, fact),
        }
    }

    fn use_var(&mut self, name: &str, fact: &BTreeSet<String>) {
        if fact.contains(name) {
            if let Some(report) = self.report.as_mut() {
                report.insert(name.to_string());
            }
        }
    }
}

impl<'a, 'p> Analysis<'p> for Uninit<'a, 'p> {
    type Fact = BTreeSet<String>;

    fn boundary(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn bottom(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn join(&self, into: &mut Self::Fact, other: &Self::Fact) -> bool {
        let before = into.len();
        into.extend(other.iter().cloned());
        into.len() != before
    }

    fn transfer(&mut self, step: &Step<'p>, fact: &mut Self::Fact) {
        match step {
            Step::Decl(Stmt::Decl {
                name,
                space,
                init,
                init_list,
                ..
            }) => {
                if let Some(e) = init {
                    self.eval(e, fact);
                }
                if let Some(list) = init_list {
                    let mut leaves = Vec::new();
                    crate::walk::initializer_exprs(list, &mut leaves);
                    for e in leaves {
                        self.eval(e, fact);
                    }
                }
                if self.is_tracked_decl(*space, name)
                    && !self.params.contains(name)
                    && init.is_none()
                    && init_list.is_none()
                {
                    fact.insert(name.clone());
                } else {
                    fact.remove(name);
                }
            }
            Step::Decl(_) => {}
            Step::Eval(e) => self.eval(e, fact),
            Step::EmiGuard => {}
        }
    }
}
