//! Static race analysis: conservative may-read/may-write access sets over
//! shared objects, barrier-interval reasoning, and the per-pair
//! disjoint / may-race / must-race matrix.
//!
//! Mirrors the dynamic detector's conflict rule: two accesses from different
//! work-items conflict when at least one writes and they are not both
//! atomic — across groups always, within a group only inside the same
//! barrier interval.  The static version over-approximates "same cell" via
//! [`IndexClass`] and "same interval" via a linear walk that counts
//! top-level unconditional barriers.

use crate::classify::{place_root, IndexClass, KernelModel, LaneSource};
use crate::report::{AccessPair, Diagnostic, DiagnosticKind, PairVerdict};
use clc::expr::Expr;
use clc::print_expr;
use clc::stmt::{Block, Stmt};
use clc::types::AddressSpace;
use std::collections::{BTreeMap, BTreeSet};

/// A (possibly unbounded) range of barrier-interval indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalRange {
    /// First interval the access can occur in.
    pub min: u32,
    /// Last interval, or `None` once the walk loses alignment (a loop
    /// containing barriers).
    pub max: Option<u32>,
}

impl IntervalRange {
    fn overlaps(self, other: IntervalRange) -> bool {
        self.min <= other.max.unwrap_or(u32::MAX) && other.min <= self.max.unwrap_or(u32::MAX)
    }

    fn is_point(self) -> bool {
        self.max == Some(self.min)
    }
}

/// One static access to a shared object.
#[derive(Debug, Clone)]
pub struct Access {
    /// The object touched.
    pub object: String,
    /// Abstract subscript class.
    pub class: IndexClass,
    /// Whether the access writes.
    pub write: bool,
    /// Whether the access is an atomic read-modify-write.
    pub atomic: bool,
    /// Barrier intervals the access can occur in.
    pub interval: IntervalRange,
    /// Whether the access sits under conditional or loop control.
    pub conditional: bool,
    /// Synthesised for an escaped address rather than a syntactic access.
    pub from_escape: bool,
    /// Printer-derived excerpt of the access site.
    pub site: String,
}

/// Result of the race pass.
pub struct RaceAnalysis {
    /// Every collected access (used downstream by the bounds pass).
    pub accesses: Vec<Access>,
    /// Non-disjoint pairs.
    pub pairs: Vec<AccessPair>,
    /// Race diagnostics (one per object and verdict kind).
    pub diagnostics: Vec<Diagnostic>,
    /// Total pairs examined.
    pub checked_pairs: usize,
}

/// Runs the race pass.
pub fn analyze_races(model: &KernelModel<'_>) -> RaceAnalysis {
    let mut collector = Collector {
        model,
        cur: 0,
        unbounded: false,
        conditional_depth: 0,
        loop_depth: 0,
        accesses: Vec::new(),
        poisoned: BTreeSet::new(),
    };
    collector.walk_block(&model.program.kernel.body);

    // Helper bodies: barriers there are soft (non-synchronising) and calls
    // can happen anywhere, so helper accesses live in every interval, under
    // conditional control.
    for f in &model.program.functions {
        let mut helper = Collector {
            model,
            cur: 0,
            unbounded: true,
            conditional_depth: 1,
            loop_depth: 0,
            accesses: Vec::new(),
            poisoned: BTreeSet::new(),
        };
        helper.walk_block(&f.body);
        collector.accesses.extend(helper.accesses);
        collector.poisoned.extend(helper.poisoned);
    }

    let mut accesses = collector.accesses;
    for obj in &collector.poisoned {
        accesses.push(Access {
            object: obj.clone(),
            class: IndexClass::Unknown,
            write: true,
            atomic: false,
            interval: IntervalRange { min: 0, max: None },
            conditional: true,
            from_escape: true,
            site: format!("&{obj}[...] escapes"),
        });
    }

    classify_pairs(model, accesses)
}

fn classify_pairs(model: &KernelModel<'_>, accesses: Vec<Access>) -> RaceAnalysis {
    let mut by_object: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, a) in accesses.iter().enumerate() {
        by_object.entry(a.object.as_str()).or_default().push(i);
    }

    let mut pairs = Vec::new();
    let mut checked_pairs = 0usize;
    // (object, kind) → (pair count, first excerpt)
    let mut summaries: BTreeMap<(String, DiagnosticKind), (usize, String)> = BTreeMap::new();
    for (object, idxs) in &by_object {
        let space = model
            .objects
            .get(*object)
            .map(|o| o.space)
            .unwrap_or(AddressSpace::Global);
        for (pos, &i) in idxs.iter().enumerate() {
            for &j in &idxs[pos..] {
                checked_pairs += 1;
                let verdict = pair_verdict(&accesses[i], &accesses[j], model, space);
                if verdict == PairVerdict::Disjoint {
                    continue;
                }
                let kind = match verdict {
                    PairVerdict::MustRace => DiagnosticKind::MustRace,
                    _ => DiagnosticKind::MayRace,
                };
                let excerpt = format!("{} <-> {}", accesses[i].site, accesses[j].site);
                let entry = summaries
                    .entry((object.to_string(), kind))
                    .or_insert_with(|| (0, excerpt.clone()));
                entry.0 += 1;
                pairs.push(AccessPair {
                    object: object.to_string(),
                    first: accesses[i].site.clone(),
                    second: accesses[j].site.clone(),
                    verdict,
                });
            }
        }
    }

    let diagnostics = summaries
        .into_iter()
        .map(|((object, kind), (count, excerpt))| Diagnostic {
            kind,
            object: Some(object),
            message: format!(
                "{count} access pair{} {} on shared object",
                if count == 1 { "" } else { "s" },
                match kind {
                    DiagnosticKind::MustRace => "must race",
                    _ => "may race",
                }
            ),
            excerpt,
        })
        .collect();

    RaceAnalysis {
        accesses,
        pairs,
        diagnostics,
        checked_pairs,
    }
}

// ----- pair rules -----------------------------------------------------------

fn pair_verdict(
    a: &Access,
    b: &Access,
    model: &KernelModel<'_>,
    space: AddressSpace,
) -> PairVerdict {
    if !(a.write || b.write) {
        return PairVerdict::Disjoint;
    }
    if a.atomic && b.atomic {
        return PairVerdict::Disjoint;
    }

    let same_group_possible = model.group_size >= 2
        && a.interval.overlaps(b.interval)
        && !distinct_cells_same_group(&a.class, &b.class, model);
    let cross_group_possible = model.total_groups >= 2
        && space == AddressSpace::Global
        && !distinct_cells_cross_group(&a.class, &b.class);
    if !(same_group_possible || cross_group_possible) {
        return PairVerdict::Disjoint;
    }

    // Must-race: both unconditional, definitely the same cell, and either
    // cross-group (no interval requirement) or provably the same single
    // interval.
    if !a.conditional && !b.conditional {
        match (&a.class, &b.class) {
            (IndexClass::Const(x), IndexClass::Const(y)) if x == y => {
                let cross_must = model.total_groups >= 2 && space == AddressSpace::Global;
                let point_must =
                    model.group_size >= 2 && a.interval.is_point() && a.interval == b.interval;
                if cross_must || point_must {
                    return PairVerdict::MustRace;
                }
            }
            (
                IndexClass::GroupSlot {
                    stride: s1,
                    slot: k1,
                },
                IndexClass::GroupSlot {
                    stride: s2,
                    slot: k2,
                },
            ) if s1 == s2
                && k1 == k2
                && model.group_size >= 2
                && a.interval.is_point()
                && a.interval == b.interval =>
            {
                return PairVerdict::MustRace;
            }
            _ => {}
        }
    }
    PairVerdict::MayRace
}

/// Whether two same-group accesses provably touch distinct cells for any two
/// *distinct* work-items of one group.
fn distinct_cells_same_group(a: &IndexClass, b: &IndexClass, model: &KernelModel<'_>) -> bool {
    use IndexClass::*;
    match (a, b) {
        (Thread, Thread) => true,
        (Const(x), Const(y)) => x != y,
        (Lane(s1), Lane(s2)) => same_stable_source(s1, s2, model),
        (
            GroupLane {
                stride: s1,
                source: src1,
            },
            GroupLane {
                stride: s2,
                source: src2,
            },
        ) => s1 == s2 && same_stable_source(src1, src2, model),
        (
            GroupSlot {
                stride: s1,
                slot: k1,
            },
            GroupSlot {
                stride: s2,
                slot: k2,
            },
        ) => s1 == s2 && k1 != k2,
        (GroupSlot { stride: s1, slot }, GroupLane { stride: s2, .. })
        | (GroupLane { stride: s2, .. }, GroupSlot { stride: s1, slot }) => {
            // Slot cells g·s+k with k ≥ group_size can never hit the lane
            // stripe g·s+lane (lane < group_size) of the same group.
            s1 == s2 && *slot >= model.group_size
        }
        _ => false,
    }
}

/// Whether two accesses from *different groups* provably touch distinct
/// cells.
fn distinct_cells_cross_group(a: &IndexClass, b: &IndexClass) -> bool {
    use IndexClass::*;
    let group_partitioned_stride = |c: &IndexClass| match c {
        GroupSlot { stride, .. } | GroupLane { stride, .. } => Some(*stride),
        _ => None,
    };
    match (a, b) {
        (Thread, Thread) => true,
        (Const(x), Const(y)) => x != y,
        _ => match (group_partitioned_stride(a), group_partitioned_stride(b)) {
            // Equal-stride group stripes never overlap across groups
            // (slots and lanes are both < stride by construction).
            (Some(s1), Some(s2)) => s1 == s2,
            _ => false,
        },
    }
}

fn same_stable_source(a: &LaneSource, b: &LaneSource, model: &KernelModel<'_>) -> bool {
    match (a, b) {
        (LaneSource::LocalLinear, LaneSource::LocalLinear) => true,
        (LaneSource::PermRow(r1), LaneSource::PermRow(r2)) => r1 == r2,
        (LaneSource::Var(v1), LaneSource::Var(v2)) => v1 == v2 && model.lane_stable.contains(v1),
        _ => false,
    }
}

// ----- access collection ----------------------------------------------------

struct Collector<'m, 'p> {
    model: &'m KernelModel<'p>,
    cur: u32,
    unbounded: bool,
    conditional_depth: usize,
    loop_depth: usize,
    accesses: Vec<Access>,
    poisoned: BTreeSet<String>,
}

impl<'m, 'p> Collector<'m, 'p> {
    fn range(&self) -> IntervalRange {
        IntervalRange {
            min: self.cur,
            max: if self.unbounded { None } else { Some(self.cur) },
        }
    }

    fn conditional(&self) -> bool {
        self.conditional_depth > 0 || self.loop_depth > 0
    }

    fn walk_block(&mut self, block: &Block) {
        for s in block.iter() {
            self.walk_stmt(s);
        }
    }

    fn walk_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Barrier(_) => {
                // Only unconditional, non-loop barriers separate intervals
                // for every work-item in lockstep.
                if self.conditional_depth == 0 && self.loop_depth == 0 {
                    self.cur += 1;
                }
            }
            Stmt::Decl { .. } | Stmt::Expr(_) | Stmt::Return(_) => {
                for e in crate::walk::own_exprs(s) {
                    self.collect_expr(e);
                }
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                self.collect_expr(cond);
                self.conditional_depth += 1;
                self.walk_block(then_block);
                if let Some(b) = else_block {
                    self.walk_block(b);
                }
                self.conditional_depth -= 1;
            }
            Stmt::While { cond, body } => {
                if block_has_barrier(body) {
                    self.unbounded = true;
                }
                self.loop_depth += 1;
                self.collect_expr(cond);
                self.walk_block(body);
                self.loop_depth -= 1;
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                if let Some(i) = init {
                    self.walk_stmt(i);
                }
                if block_has_barrier(body) {
                    self.unbounded = true;
                }
                self.loop_depth += 1;
                if let Some(c) = cond {
                    self.collect_expr(c);
                }
                if let Some(u) = update {
                    self.collect_expr(u);
                }
                self.walk_block(body);
                self.loop_depth -= 1;
            }
            Stmt::Block(b) => self.walk_block(b),
            Stmt::Emi(emi) => {
                // The guard reads `dead[a] < dead[b]` before deciding.
                if self.model.is_object("dead") {
                    for cell in [emi.guard.0, emi.guard.1] {
                        self.accesses.push(Access {
                            object: "dead".into(),
                            class: IndexClass::Const(cell as i128),
                            write: false,
                            atomic: false,
                            interval: self.range(),
                            conditional: self.conditional(),
                            from_escape: false,
                            site: format!("EMI guard #{}", emi.index),
                        });
                    }
                }
                self.conditional_depth += 1;
                self.walk_block(&emi.body);
                self.conditional_depth -= 1;
            }
            Stmt::Break | Stmt::Continue => {}
        }
    }

    fn collect_expr(&mut self, e: &Expr) {
        match e {
            Expr::Assign { op, lhs, rhs } => {
                self.place_access(lhs, true, op.binop().is_some(), false);
                self.collect_expr(rhs);
            }
            Expr::BuiltinCall { func, args } if func.is_atomic() => {
                let mut rest = args.iter();
                if let Some(first) = rest.next() {
                    if let Expr::AddrOf(place) = first {
                        self.place_access(place, true, true, true);
                    } else {
                        self.collect_expr(first);
                    }
                }
                for a in rest {
                    self.collect_expr(a);
                }
            }
            Expr::AddrOf(inner) => {
                // A shared address escaping (outside a direct atomic
                // argument) poisons the object: it may be read or written
                // anywhere afterwards.
                if let Some(root) = place_root(inner) {
                    if self.model.is_object(root) {
                        self.poisoned.insert(root.to_string());
                    }
                }
                self.collect_subscripts(inner);
            }
            Expr::Index { .. } | Expr::Deref(_) | Expr::Field { .. } | Expr::Swizzle { .. } => {
                self.place_access(e, false, false, false);
            }
            Expr::Var(name) => {
                // A bare object name is a pointer value escaping.
                if self.model.is_object(name) {
                    self.poisoned.insert(name.clone());
                }
            }
            _ => {
                let mut children = Vec::new();
                crate::walk::expr_children(e, &mut children);
                for c in children {
                    self.collect_expr(c);
                }
            }
        }
    }

    /// Records an access through a place expression, and collects nested
    /// reads inside its subscripts.
    fn place_access(&mut self, place: &Expr, write: bool, also_read: bool, atomic: bool) {
        let Some(root) = place_root(place) else {
            // No identifiable root (e.g. a computed pointer): just collect
            // nested reads.
            let mut children = Vec::new();
            crate::walk::expr_children(place, &mut children);
            for c in children {
                self.collect_expr(c);
            }
            return;
        };
        self.collect_subscripts(place);
        if root == "permutations" || !self.model.is_object(root) {
            return;
        }
        let class = match place {
            Expr::Index { base, index } if matches!(base.as_ref(), Expr::Var(n) if n == root) => {
                self.model.classify(index)
            }
            Expr::Deref(inner) if matches!(inner.as_ref(), Expr::Var(n) if n == root) => {
                IndexClass::Const(0)
            }
            _ => IndexClass::Unknown,
        };
        let site = print_expr(place, self.model.program);
        let interval = self.range();
        let conditional = self.conditional();
        if write {
            self.accesses.push(Access {
                object: root.to_string(),
                class: class.clone(),
                write: true,
                atomic,
                interval,
                conditional,
                from_escape: false,
                site: site.clone(),
            });
        }
        if !write || also_read {
            self.accesses.push(Access {
                object: root.to_string(),
                class,
                write: false,
                atomic,
                interval,
                conditional,
                from_escape: false,
                site,
            });
        }
    }

    /// Collects reads occurring inside the subscript / pointee expressions
    /// of a place, without treating the spine itself as an access.
    fn collect_subscripts(&mut self, place: &Expr) {
        match place {
            Expr::Index { base, index } => {
                self.collect_expr(index);
                self.collect_subscripts(base);
            }
            Expr::Field { base, .. } | Expr::Swizzle { base, .. } => self.collect_subscripts(base),
            Expr::Deref(inner) | Expr::AddrOf(inner) => self.collect_subscripts(inner),
            Expr::Cast { expr, .. } => self.collect_subscripts(expr),
            Expr::Var(_) => {}
            other => self.collect_expr(other),
        }
    }
}

/// Whether a block (recursively) contains a `barrier()` statement.
pub fn block_has_barrier(block: &Block) -> bool {
    let mut found = false;
    for s in block.iter() {
        s.for_each(&mut |s| {
            if matches!(s, Stmt::Barrier(_)) {
                found = true;
            }
        });
    }
    found
}
