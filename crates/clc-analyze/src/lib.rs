//! # clc-analyze — static CFG/dataflow analyzer for `clc` kernels
//!
//! A sound-by-construction lint suite over the [`clc`] AST, mirroring the
//! properties the dynamic detector in `clc-interp` checks at runtime:
//!
//! * **Barrier divergence** ([`divergence`]): no barrier (and no early exit
//!   past one) under control flow whose condition or trip count depends on
//!   `get_local_id` / `get_global_id`.
//! * **Races** ([`race`]): conservative may-read/may-write access sets over
//!   global and local objects, with work-item-index-linearity reasoning on
//!   subscripts ([`classify::IndexClass`]) and barrier-interval separation,
//!   classifying every access pair as disjoint, may-race or must-race.
//! * **Use before init** ([`init`]): a forward dataflow over the basic-block
//!   CFG ([`cfg`], [`dataflow`]) tracking maybe-uninitialised private
//!   variables.
//! * **Bounds** ([`bounds`]): provable subscript ranges checked against
//!   declared buffer extents.
//!
//! The soundness contract, enforced by the `analysis_soundness` differential
//! against both interpreter tiers: a kernel whose [`AnalysisReport`] is
//! *certified* (race-free and divergence-free) never produces a dynamic race
//! verdict, and every dynamic race names an object in
//! [`AnalysisReport::flagged_objects`].
//!
//! ```
//! use clc::{KernelDef, LaunchConfig, Program};
//!
//! let program = Program::new(
//!     KernelDef {
//!         name: "k".into(),
//!         params: Program::standard_clsmith_params(0),
//!         body: clc::Block::new(),
//!     },
//!     LaunchConfig::single_group(4),
//! );
//! let report = clc_analyze::analyze(&program);
//! assert!(report.is_certified());
//! assert_eq!(report.verdict(), "clean");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bounds;
pub mod cfg;
pub mod classify;
pub mod dataflow;
pub mod divergence;
pub mod init;
pub mod race;
pub mod report;
pub mod walk;

pub use classify::{IndexClass, KernelModel};
pub use report::{AccessPair, AnalysisReport, Diagnostic, DiagnosticKind, PairVerdict};

use clc::program::Program;

/// Runs the full pass suite over `program` and returns a normalised report.
pub fn analyze(program: &Program) -> AnalysisReport {
    let model = KernelModel::build(program);
    let race = race::analyze_races(&model);
    let mut report = AnalysisReport {
        diagnostics: race.diagnostics,
        pairs: race.pairs,
        checked_pairs: race.checked_pairs,
        flagged_objects: Default::default(),
    };
    report
        .diagnostics
        .extend(divergence::check_divergence(&model));
    report.diagnostics.extend(init::check_uninit(&model));
    report
        .diagnostics
        .extend(bounds::check_bounds(&race.accesses, &model));
    report.normalize();
    report
}
