//! Basic-block construction from the structured `clc` AST.
//!
//! The AST has no gotos, so the CFG is built by structural lowering:
//! conditions become evaluation steps in the predecessor block, loop
//! back-edges and `break` / `continue` edges are wired through a small
//! loop-context stack.  Steps borrow the program (`'p`), so facts computed
//! by dataflow passes can reference AST nodes directly.

use clc::expr::Expr;
use clc::stmt::{Block, Stmt};

/// One atomic step of a basic block.
#[derive(Debug, Clone, Copy)]
pub enum Step<'p> {
    /// A declaration statement (uses of its initialiser, then the def).
    Decl(&'p Stmt),
    /// Evaluation of an expression for value or effect.
    Eval(&'p Expr),
    /// Evaluation of an EMI guard (`dead[a] < dead[b]`; no local uses/defs).
    EmiGuard,
}

/// A straight-line run of steps with successor edges.
#[derive(Debug, Default)]
pub struct BasicBlock<'p> {
    /// The steps, in evaluation order.
    pub steps: Vec<Step<'p>>,
    /// Indices of successor blocks.
    pub succs: Vec<usize>,
}

/// A control-flow graph over one function body.
#[derive(Debug)]
pub struct Cfg<'p> {
    /// All blocks; block 0 is unused padding only if `entry` says so.
    pub blocks: Vec<BasicBlock<'p>>,
    /// Entry block index.
    pub entry: usize,
    /// Single synthetic exit block index.
    pub exit: usize,
}

/// Builds the CFG for a function or kernel body.
pub fn build_cfg(body: &Block) -> Cfg<'_> {
    let mut b = Builder { blocks: Vec::new() };
    let entry = b.new_block();
    let exit = b.new_block();
    let ctx = LoopCtx {
        break_to: None,
        continue_to: None,
        exit,
    };
    let end = b.lower_block(body, entry, &ctx);
    b.edge(end, exit);
    Cfg {
        blocks: b.blocks,
        entry,
        exit,
    }
}

#[derive(Clone, Copy)]
struct LoopCtx {
    break_to: Option<usize>,
    continue_to: Option<usize>,
    exit: usize,
}

struct Builder<'p> {
    blocks: Vec<BasicBlock<'p>>,
}

impl<'p> Builder<'p> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn lower_block(&mut self, block: &'p Block, mut cur: usize, ctx: &LoopCtx) -> usize {
        for s in block.iter() {
            cur = self.lower_stmt(s, cur, ctx);
        }
        cur
    }

    fn lower_stmt(&mut self, s: &'p Stmt, cur: usize, ctx: &LoopCtx) -> usize {
        match s {
            Stmt::Decl { .. } => {
                self.blocks[cur].steps.push(Step::Decl(s));
                cur
            }
            Stmt::Expr(e) => {
                self.blocks[cur].steps.push(Step::Eval(e));
                cur
            }
            Stmt::Barrier(_) => cur,
            Stmt::Block(b) => self.lower_block(b, cur, ctx),
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                self.blocks[cur].steps.push(Step::Eval(cond));
                let join = self.new_block();
                let t0 = self.new_block();
                self.edge(cur, t0);
                let t_end = self.lower_block(then_block, t0, ctx);
                self.edge(t_end, join);
                match else_block {
                    Some(b) => {
                        let e0 = self.new_block();
                        self.edge(cur, e0);
                        let e_end = self.lower_block(b, e0, ctx);
                        self.edge(e_end, join);
                    }
                    None => self.edge(cur, join),
                }
                join
            }
            Stmt::While { cond, body } => {
                let header = self.new_block();
                self.edge(cur, header);
                self.blocks[header].steps.push(Step::Eval(cond));
                let join = self.new_block();
                let b0 = self.new_block();
                self.edge(header, b0);
                self.edge(header, join);
                let inner = LoopCtx {
                    break_to: Some(join),
                    continue_to: Some(header),
                    exit: ctx.exit,
                };
                let b_end = self.lower_block(body, b0, &inner);
                self.edge(b_end, header);
                join
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                let mut cur = cur;
                if let Some(i) = init {
                    cur = self.lower_stmt(i, cur, ctx);
                }
                let header = self.new_block();
                self.edge(cur, header);
                if let Some(c) = cond {
                    self.blocks[header].steps.push(Step::Eval(c));
                }
                let join = self.new_block();
                let b0 = self.new_block();
                let update_block = self.new_block();
                self.edge(header, b0);
                if cond.is_some() {
                    self.edge(header, join);
                }
                let inner = LoopCtx {
                    break_to: Some(join),
                    continue_to: Some(update_block),
                    exit: ctx.exit,
                };
                let b_end = self.lower_block(body, b0, &inner);
                self.edge(b_end, update_block);
                if let Some(u) = update {
                    self.blocks[update_block].steps.push(Step::Eval(u));
                }
                self.edge(update_block, header);
                join
            }
            Stmt::Emi(emi) => {
                self.blocks[cur].steps.push(Step::EmiGuard);
                let join = self.new_block();
                let b0 = self.new_block();
                self.edge(cur, b0);
                self.edge(cur, join);
                let b_end = self.lower_block(&emi.body, b0, ctx);
                self.edge(b_end, join);
                join
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    self.blocks[cur].steps.push(Step::Eval(e));
                }
                self.edge(cur, ctx.exit);
                self.new_block()
            }
            Stmt::Break => {
                if let Some(t) = ctx.break_to {
                    self.edge(cur, t);
                }
                self.new_block()
            }
            Stmt::Continue => {
                if let Some(t) = ctx.continue_to {
                    self.edge(cur, t);
                }
                self.new_block()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clc::expr::BinOp;
    use clc::types::{ScalarType, Type};

    #[test]
    fn straight_line_is_two_blocks() {
        let body = Block::of(vec![
            Stmt::decl("x", Type::Scalar(ScalarType::Int), Some(Expr::int(1))),
            Stmt::expr(Expr::assign(Expr::var("x"), Expr::int(2))),
        ]);
        let cfg = build_cfg(&body);
        assert_eq!(cfg.blocks[cfg.entry].steps.len(), 2);
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![cfg.exit]);
    }

    #[test]
    fn while_loop_has_back_edge() {
        let body = Block::of(vec![Stmt::While {
            cond: Expr::binary(BinOp::Lt, Expr::var("i"), Expr::int(4)),
            body: Block::of(vec![Stmt::expr(Expr::assign(
                Expr::var("i"),
                Expr::binary(BinOp::Add, Expr::var("i"), Expr::int(1)),
            ))]),
        }]);
        let cfg = build_cfg(&body);
        // Some block must have a successor with a smaller index (the
        // back-edge to the loop header).
        let has_back_edge = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.succs.iter().any(|&s| s <= i && s != cfg.exit));
        assert!(has_back_edge);
    }
}
