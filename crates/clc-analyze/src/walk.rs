//! Lifetime-preserving AST walkers.
//!
//! The `clc` convenience visitors (`Stmt::for_each`, `Program::for_each_stmt`)
//! take `FnMut(&Stmt)` with an anonymous lifetime, which is fine for counting
//! but cannot *collect references*.  The analyzer builds CFGs and binding
//! tables that borrow the program, so these walkers thread the program
//! lifetime `'p` through explicitly.

use clc::expr::Expr;
use clc::program::Program;
use clc::stmt::{Block, Initializer, Stmt};

/// Appends every statement of `block`, recursively, in program order.
pub fn block_stmts<'p>(block: &'p Block, out: &mut Vec<&'p Stmt>) {
    for s in block.iter() {
        stmt_and_nested(s, out);
    }
}

/// Appends `s` and every statement nested inside it, in program order.
pub fn stmt_and_nested<'p>(s: &'p Stmt, out: &mut Vec<&'p Stmt>) {
    out.push(s);
    match s {
        Stmt::If {
            then_block,
            else_block,
            ..
        } => {
            block_stmts(then_block, out);
            if let Some(b) = else_block {
                block_stmts(b, out);
            }
        }
        Stmt::For { init, body, .. } => {
            if let Some(i) = init {
                stmt_and_nested(i, out);
            }
            block_stmts(body, out);
        }
        Stmt::While { body, .. } => block_stmts(body, out),
        Stmt::Block(b) => block_stmts(b, out),
        Stmt::Emi(e) => block_stmts(&e.body, out),
        _ => {}
    }
}

/// Every statement of the program: helper bodies first, then the kernel.
pub fn program_stmts(program: &Program) -> Vec<&Stmt> {
    let mut out = Vec::new();
    for f in &program.functions {
        block_stmts(&f.body, &mut out);
    }
    block_stmts(&program.kernel.body, &mut out);
    out
}

/// One control-dependence guard enclosing a statement: executing the
/// statement is conditional on this.
#[derive(Clone, Copy)]
pub enum Guard<'p> {
    /// An `if`/`while`/`for` condition.
    Cond(&'p Expr),
    /// An EMI dead-block guard (`dead[a] < dead[b]` over the `dead` input).
    EmiDead,
}

/// Calls `f` on every statement of the program (helper bodies first, then
/// the kernel, mirroring [`program_stmts`]) together with the stack of
/// guards its *own expressions* evaluate under.
///
/// Loop statements (`while`, `for`) are reported under their own condition:
/// their condition and update expressions re-evaluate once per iteration,
/// so any assignment inside them is control-dependent on the trip count.
/// An `if` is reported outside its condition — the condition itself is
/// evaluated by every work-item that reaches the statement.
pub fn guarded_program_stmts<'p>(program: &'p Program, f: &mut impl FnMut(&'p Stmt, &[Guard<'p>])) {
    let mut guards = Vec::new();
    for func in &program.functions {
        guarded_block(&func.body, &mut guards, f);
    }
    guarded_block(&program.kernel.body, &mut guards, f);
}

fn guarded_block<'p>(
    block: &'p Block,
    guards: &mut Vec<Guard<'p>>,
    f: &mut impl FnMut(&'p Stmt, &[Guard<'p>]),
) {
    for s in block.iter() {
        guarded_stmt(s, guards, f);
    }
}

fn guarded_stmt<'p>(
    s: &'p Stmt,
    guards: &mut Vec<Guard<'p>>,
    f: &mut impl FnMut(&'p Stmt, &[Guard<'p>]),
) {
    match s {
        Stmt::If {
            cond,
            then_block,
            else_block,
        } => {
            f(s, guards);
            guards.push(Guard::Cond(cond));
            guarded_block(then_block, guards, f);
            if let Some(b) = else_block {
                guarded_block(b, guards, f);
            }
            guards.pop();
        }
        Stmt::While { cond, body } => {
            guards.push(Guard::Cond(cond));
            f(s, guards);
            guarded_block(body, guards, f);
            guards.pop();
        }
        Stmt::For {
            init, cond, body, ..
        } => {
            if let Some(i) = init {
                guarded_stmt(i, guards, f);
            }
            let guarded = cond.as_ref().map(|c| guards.push(Guard::Cond(c)));
            f(s, guards);
            guarded_block(body, guards, f);
            if guarded.is_some() {
                guards.pop();
            }
        }
        Stmt::Block(b) => {
            f(s, guards);
            guarded_block(b, guards, f);
        }
        Stmt::Emi(e) => {
            f(s, guards);
            guards.push(Guard::EmiDead);
            guarded_block(&e.body, guards, f);
            guards.pop();
        }
        _ => f(s, guards),
    }
}

/// The expression roots evaluated directly by `s` (conditions, initialisers,
/// statement expressions) — not those of nested statements.
pub fn own_exprs(s: &Stmt) -> Vec<&Expr> {
    let mut out = Vec::new();
    match s {
        Stmt::Decl {
            init, init_list, ..
        } => {
            if let Some(e) = init {
                out.push(e);
            }
            if let Some(list) = init_list {
                initializer_exprs(list, &mut out);
            }
        }
        Stmt::Expr(e) => out.push(e),
        Stmt::If { cond, .. } => out.push(cond),
        Stmt::For { cond, update, .. } => {
            if let Some(c) = cond {
                out.push(c);
            }
            if let Some(u) = update {
                out.push(u);
            }
        }
        Stmt::While { cond, .. } => out.push(cond),
        Stmt::Return(Some(e)) => out.push(e),
        _ => {}
    }
    out
}

/// Appends the leaf expressions of an initialiser, in order.
pub fn initializer_exprs<'p>(init: &'p Initializer, out: &mut Vec<&'p Expr>) {
    match init {
        Initializer::Expr(e) => out.push(e),
        Initializer::List(items) => {
            for item in items {
                initializer_exprs(item, out);
            }
        }
    }
}

/// Appends the *direct* children of `e` (one level, no recursion).
pub fn expr_children<'p>(e: &'p Expr, out: &mut Vec<&'p Expr>) {
    match e {
        Expr::IntLit { .. } | Expr::Var(_) | Expr::IdQuery(_) => {}
        Expr::VectorLit { parts, .. } => out.extend(parts.iter()),
        Expr::Unary { expr, .. }
        | Expr::Deref(expr)
        | Expr::AddrOf(expr)
        | Expr::Cast { expr, .. } => out.push(expr),
        Expr::Binary { lhs, rhs, .. }
        | Expr::Assign { lhs, rhs, .. }
        | Expr::Comma { lhs, rhs } => {
            out.push(lhs);
            out.push(rhs);
        }
        Expr::Cond {
            cond,
            then_expr,
            else_expr,
        } => {
            out.push(cond);
            out.push(then_expr);
            out.push(else_expr);
        }
        Expr::Call { args, .. } | Expr::BuiltinCall { args, .. } => out.extend(args.iter()),
        Expr::Index { base, index } => {
            out.push(base);
            out.push(index);
        }
        Expr::Field { base, .. } | Expr::Swizzle { base, .. } => out.push(base),
    }
}

/// Calls `f` on `e` and every sub-expression, pre-order.
pub fn expr_subtree<'p>(e: &'p Expr, f: &mut impl FnMut(&'p Expr)) {
    f(e);
    match e {
        Expr::IntLit { .. } | Expr::Var(_) | Expr::IdQuery(_) => {}
        Expr::VectorLit { parts, .. } => {
            for p in parts {
                expr_subtree(p, f);
            }
        }
        Expr::Unary { expr, .. }
        | Expr::Deref(expr)
        | Expr::AddrOf(expr)
        | Expr::Cast { expr, .. } => expr_subtree(expr, f),
        Expr::Binary { lhs, rhs, .. }
        | Expr::Assign { lhs, rhs, .. }
        | Expr::Comma { lhs, rhs } => {
            expr_subtree(lhs, f);
            expr_subtree(rhs, f);
        }
        Expr::Cond {
            cond,
            then_expr,
            else_expr,
        } => {
            expr_subtree(cond, f);
            expr_subtree(then_expr, f);
            expr_subtree(else_expr, f);
        }
        Expr::Call { args, .. } | Expr::BuiltinCall { args, .. } => {
            for a in args {
                expr_subtree(a, f);
            }
        }
        Expr::Index { base, index } => {
            expr_subtree(base, f);
            expr_subtree(index, f);
        }
        Expr::Field { base, .. } | Expr::Swizzle { base, .. } => expr_subtree(base, f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clc::expr::BinOp;
    use clc::types::{ScalarType, Type};

    #[test]
    fn collects_nested_statements_and_exprs() {
        let block = Block::of(vec![Stmt::if_then(
            Expr::binary(BinOp::Lt, Expr::var("x"), Expr::int(3)),
            Block::of(vec![Stmt::decl(
                "y",
                Type::Scalar(ScalarType::Int),
                Some(Expr::int(1)),
            )]),
        )]);
        let mut stmts = Vec::new();
        block_stmts(&block, &mut stmts);
        assert_eq!(stmts.len(), 2);
        let mut leaves = 0usize;
        for s in &stmts {
            for root in own_exprs(s) {
                expr_subtree(root, &mut |_| leaves += 1);
            }
        }
        // (x < 3), x, 3, 1
        assert_eq!(leaves, 4);
    }
}
