//! Forward-dataflow worklist engine over [`Cfg`].
//!
//! Passes implement [`Analysis`] (a join-semilattice of facts plus a
//! transfer function over [`Step`]s) and call [`forward_fixpoint`], which
//! returns the fact at *entry* of every block once the worklist stabilises.

use crate::cfg::{Cfg, Step};

/// A forward dataflow analysis: lattice + transfer function.
pub trait Analysis<'p> {
    /// The lattice element attached to each block entry.
    type Fact: Clone + PartialEq;

    /// Fact at the CFG entry (boundary condition).
    fn boundary(&self) -> Self::Fact;

    /// Least element, the initial value of every other block.
    fn bottom(&self) -> Self::Fact;

    /// Joins `other` into `into`; returns whether `into` changed.
    fn join(&self, into: &mut Self::Fact, other: &Self::Fact) -> bool;

    /// Applies one step to the fact in place.
    fn transfer(&mut self, step: &Step<'p>, fact: &mut Self::Fact);
}

/// Runs `analysis` to fixpoint over `cfg` and returns per-block entry facts.
pub fn forward_fixpoint<'p, A: Analysis<'p>>(cfg: &Cfg<'p>, analysis: &mut A) -> Vec<A::Fact> {
    let n = cfg.blocks.len();
    let mut entry_facts: Vec<A::Fact> = (0..n).map(|_| analysis.bottom()).collect();
    entry_facts[cfg.entry] = analysis.boundary();

    let mut worklist: Vec<usize> = vec![cfg.entry];
    let mut on_list = vec![false; n];
    on_list[cfg.entry] = true;

    while let Some(b) = worklist.pop() {
        on_list[b] = false;
        let mut fact = entry_facts[b].clone();
        for step in &cfg.blocks[b].steps {
            analysis.transfer(step, &mut fact);
        }
        for &succ in &cfg.blocks[b].succs {
            if analysis.join(&mut entry_facts[succ], &fact) && !on_list[succ] {
                on_list[succ] = true;
                worklist.push(succ);
            }
        }
    }
    entry_facts
}
