//! Work-item–index classification of subscript expressions, the shared
//! object table, and the lane-stability analysis.
//!
//! The race analysis reasons about *which cells* an access can touch via a
//! small abstract domain over subscript expressions ([`IndexClass`]): launch
//! constants, thread-linear and lane-linear indices, and group-partitioned
//! affine forms `g·stride + slot` / `g·stride + lane`.  Everything the
//! domain cannot prove collapses to [`IndexClass::Unknown`], which the
//! conflict rules treat as "may touch any cell" — the analysis is
//! conservative by construction.

use clc::expr::{BinOp, Expr, IdKind};
use clc::program::Program;
use clc::stmt::{Block, Stmt};
use clc::types::{AddressSpace, Type};
use std::collections::{BTreeMap, BTreeSet};

/// Where a lane-valued (`0..group_size`, bijective per group) index comes
/// from.  Two lane accesses hit distinct cells for distinct work-items only
/// when they come from the *same* source and that source is stable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum LaneSource {
    /// `get_local_linear_id()` directly.
    LocalLinear,
    /// `permutations[r][l_linear]` — row `r` verified to be a permutation of
    /// `0..group_size`.
    PermRow(usize),
    /// A variable whose every reaching definition is lane-valued.  Distinct
    /// per work-item only while the variable is *stable* (see
    /// [`KernelModel::lane_stable`]).
    Var(String),
}

/// Abstract class of a subscript expression.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum IndexClass {
    /// A compile-time constant.
    Const(i128),
    /// The same value on every work-item at a given program point (launch
    /// constants and values computed only from them).
    Uniform,
    /// A per-group bijection of `0..group_size`.
    Lane(LaneSource),
    /// `get_global_linear_id()` — distinct across *all* work-items.
    Thread,
    /// `g_linear * stride + slot` with `0 <= slot < stride`: one cell per
    /// group.
    GroupSlot {
        /// Cells per group.
        stride: i128,
        /// Fixed offset within the group's stripe.
        slot: i128,
    },
    /// `g_linear * stride + lane` with `group_size <= stride`: a per-group
    /// stripe indexed bijectively by lane.
    GroupLane {
        /// Cells per group.
        stride: i128,
        /// The lane source of the in-stripe offset.
        source: LaneSource,
    },
    /// Anything else — may alias any cell.
    Unknown,
}

/// A shared (global / local / constant address space) object accesses can
/// race on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectInfo {
    /// Address space the object lives in.
    pub space: AddressSpace,
    /// Declared extent in elements, when known (`None` for scalars treated
    /// as single cells).
    pub len: Option<i128>,
}

/// Launch facts, the object table, the flow-insensitive variable
/// classification environment, and lane stability for one program.
pub struct KernelModel<'p> {
    /// The program under analysis.
    pub program: &'p Program,
    /// Work-items per group (linearised).
    pub group_size: i128,
    /// Number of groups (linearised).
    pub total_groups: i128,
    /// Total work-items.
    pub total_threads: i128,
    /// Shared objects by name: kernel buffers plus `local` declarations.
    pub objects: BTreeMap<String, ObjectInfo>,
    /// Objects with at least one (potential) write anywhere in the program.
    pub written: BTreeSet<String>,
    /// Lane-classed variables whose value provably cannot change between a
    /// barrier and any use that follows it (every assignment is top-level,
    /// unconditional, outside loops, and precedes every use since the last
    /// barrier).  Unstable lane variables can alias across work-items
    /// mid-interval — exactly the dynamic-race mechanism the detector
    /// observes when a sync point and its offset reassignment get separated.
    pub lane_stable: BTreeSet<String>,
    env: BTreeMap<String, IndexClass>,
}

impl<'p> KernelModel<'p> {
    /// Builds the model: object table, written set, variable environment
    /// fixpoint, and lane stability.
    pub fn build(program: &'p Program) -> KernelModel<'p> {
        let group_size = program.launch.group_size() as i128;
        let total_groups = program.launch.total_groups() as i128;
        let total_threads = program.launch.total_work_items() as i128;

        let mut objects = BTreeMap::new();
        for spec in &program.buffers {
            objects.insert(
                spec.param.clone(),
                ObjectInfo {
                    space: AddressSpace::Global,
                    len: Some(spec.len as i128),
                },
            );
        }
        collect_local_objects(&program.kernel.body, &mut objects);
        for f in &program.functions {
            collect_local_objects(&f.body, &mut objects);
        }

        let mut model = KernelModel {
            program,
            group_size,
            total_groups,
            total_threads,
            objects,
            written: BTreeSet::new(),
            lane_stable: BTreeSet::new(),
            env: BTreeMap::new(),
        };
        model.collect_written();
        model.env_fixpoint();
        model.lane_stability();
        model
    }

    /// Whether `name` names a shared object.
    pub fn is_object(&self, name: &str) -> bool {
        self.objects.contains_key(name)
    }

    /// Classifies an expression used as a subscript (or condition).
    pub fn classify(&self, e: &Expr) -> IndexClass {
        self.classify_with_env(e, &self.env)
    }

    /// Whether a condition is launch-uniform: every work-item at the same
    /// program point computes the same value.
    pub fn is_uniform(&self, e: &Expr) -> bool {
        matches!(self.classify(e), IndexClass::Const(_) | IndexClass::Uniform)
            && !e.has_side_effects()
    }

    // ----- written set -----------------------------------------------------

    fn collect_written(&mut self) {
        let mut written = BTreeSet::new();
        for s in crate::walk::program_stmts(self.program) {
            for root_expr in crate::walk::own_exprs(s) {
                crate::walk::expr_subtree(root_expr, &mut |e| {
                    let target = match e {
                        Expr::Assign { lhs, .. } => place_root(lhs),
                        Expr::BuiltinCall { func, args } if func.is_atomic() => {
                            args.first().and_then(place_root)
                        }
                        // A shared address that escapes may be written
                        // through.
                        Expr::AddrOf(inner) => place_root(inner),
                        _ => None,
                    };
                    if let Some(root) = target {
                        if self.objects.contains_key(root) {
                            written.insert(root.to_string());
                        }
                    }
                });
            }
        }
        self.written = written;
    }

    // ----- variable environment --------------------------------------------

    /// Flow-insensitive classification of every scalar variable: join over
    /// all bindings program-wide, iterated to fixpoint.
    ///
    /// An *assignment* under non-uniform control flow is soundness-critical
    /// even when its right-hand side is uniform: only the work-items taking
    /// the branch observe the new value, so the variable's post-region value
    /// is lane-dependent (`int x = 0; if (lid < 2) x = 1;` makes `x`
    /// non-uniform).  Such binds are therefore demoted to [`IndexClass::
    /// Unknown`], with the guard conditions re-judged against the evolving
    /// environment each fixpoint round.  Declaration initialisers need no
    /// demotion — a declaration's scope is confined to the guarded region,
    /// so its value cannot leak past the divergence the region itself
    /// already accounts for.
    fn env_fixpoint(&mut self) {
        enum Bind<'a> {
            Init(&'a Expr),
            Assign(&'a Expr),
            Opaque,
        }
        use crate::walk::Guard;
        let mut binds: Vec<(String, Bind<'p>, Vec<Guard<'p>>)> = Vec::new();
        let mut uniform_params: BTreeSet<String> = BTreeSet::new();
        for p in &self.program.kernel.params {
            if matches!(p.ty, Type::Scalar(_)) {
                uniform_params.insert(p.name.clone());
            }
        }
        crate::walk::guarded_program_stmts(self.program, &mut |s, guards| {
            if let Stmt::Decl {
                name,
                init: Some(e),
                ..
            } = s
            {
                if !self.objects.contains_key(name) {
                    binds.push((name.clone(), Bind::Init(e), Vec::new()));
                }
            }
            for root_expr in crate::walk::own_exprs(s) {
                crate::walk::expr_subtree(root_expr, &mut |e| {
                    if let Expr::Assign { op, lhs, rhs } = e {
                        if let Expr::Var(name) = lhs.as_ref() {
                            if op.binop().is_none() {
                                binds.push((name.clone(), Bind::Assign(rhs), guards.to_vec()));
                            } else {
                                binds.push((name.clone(), Bind::Opaque, Vec::new()));
                            }
                        } else if let Some(root) = place_root(lhs) {
                            // Partial writes (fields / elements) spoil
                            // precision.
                            binds.push((root.to_string(), Bind::Opaque, Vec::new()));
                        }
                    }
                });
            }
        });

        let mut env: BTreeMap<String, IndexClass> = BTreeMap::new();
        for p in &uniform_params {
            env.insert(p.clone(), IndexClass::Uniform);
        }
        for _ in 0..64 {
            let mut changed = false;
            for (name, bind, guards) in &binds {
                let divergent_ctx = || {
                    guards.iter().any(|g| match g {
                        Guard::Cond(e) => {
                            !matches!(
                                self.classify_with_env(e, &env),
                                IndexClass::Const(_) | IndexClass::Uniform
                            ) || e.has_side_effects()
                        }
                        Guard::EmiDead => self.written.contains("dead"),
                    })
                };
                let new = match bind {
                    Bind::Init(e) => self.classify_with_env(e, &env),
                    Bind::Assign(e) if !divergent_ctx() => self.classify_with_env(e, &env),
                    Bind::Assign(_) | Bind::Opaque => IndexClass::Unknown,
                };
                // A lane-valued variable is represented by its own name so
                // that two uses of the same variable share a source.
                let new = match new {
                    IndexClass::Lane(_) => IndexClass::Lane(LaneSource::Var(name.clone())),
                    IndexClass::GroupLane { stride, .. } => IndexClass::GroupLane {
                        stride,
                        source: LaneSource::Var(name.clone()),
                    },
                    other => other,
                };
                let joined = match env.get(name) {
                    None => new,
                    Some(old) => join(old, &new),
                };
                if env.get(name) != Some(&joined) {
                    env.insert(name.clone(), joined);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        self.env = env;
    }

    fn classify_with_env(&self, e: &Expr, env: &BTreeMap<String, IndexClass>) -> IndexClass {
        use IndexClass::*;
        match e {
            Expr::IntLit { value, .. } => Const(*value),
            Expr::IdQuery(kind) => match kind {
                IdKind::GlobalLinearId => Thread,
                IdKind::LocalLinearId => Lane(LaneSource::LocalLinear),
                IdKind::GroupLinearId => GroupSlot { stride: 1, slot: 0 },
                k if !k.is_identity_dependent() => Uniform,
                _ => Unknown,
            },
            Expr::Var(name) => match env.get(name) {
                Some(Lane(_)) => Lane(LaneSource::Var(name.clone())),
                Some(GroupLane { stride, .. }) => GroupLane {
                    stride: *stride,
                    source: LaneSource::Var(name.clone()),
                },
                Some(c) => c.clone(),
                None => Unknown,
            },
            Expr::Cast { ty, expr } => match ty {
                // Widening / same-width integer casts preserve the index
                // value for in-bounds subscripts.
                Type::Scalar(s) if s.bits() >= 32 => self.classify_with_env(expr, env),
                _ => Unknown,
            },
            Expr::Unary { expr, .. } => match self.classify_with_env(expr, env) {
                Const(_) | Uniform if !expr.has_side_effects() => Uniform,
                _ => Unknown,
            },
            Expr::Cond {
                cond,
                then_expr,
                else_expr,
            } => {
                let all_uniform = [cond.as_ref(), then_expr.as_ref(), else_expr.as_ref()]
                    .into_iter()
                    .all(|x| {
                        matches!(self.classify_with_env(x, env), Const(_) | Uniform)
                            && !x.has_side_effects()
                    });
                if all_uniform {
                    Uniform
                } else {
                    Unknown
                }
            }
            Expr::Index { base, index } => self.classify_index_read(base, index, env),
            Expr::Binary { op, lhs, rhs } => {
                if e.has_side_effects() {
                    return Unknown;
                }
                let l = self.classify_with_env(lhs, env);
                let r = self.classify_with_env(rhs, env);
                // Constant folding.
                if let (Const(a), Const(b)) = (&l, &r) {
                    match op {
                        BinOp::Add => return Const(a.wrapping_add(*b)),
                        BinOp::Sub => return Const(a.wrapping_sub(*b)),
                        BinOp::Mul => return Const(a.wrapping_mul(*b)),
                        _ => return Uniform,
                    }
                }
                // Uniform closure.
                if matches!(l, Const(_) | Uniform) && matches!(r, Const(_) | Uniform) {
                    return Uniform;
                }
                match op {
                    BinOp::Add => add_classes(&l, &r, self.group_size),
                    BinOp::Mul => mul_classes(&l, &r),
                    _ => Unknown,
                }
            }
            _ => Unknown,
        }
    }

    /// Classifies an `Index` expression *read as a value* (not as a place):
    /// `permutations[r][l_linear]` is lane-valued; a read of a never-written
    /// object at a uniform subscript is uniform.
    fn classify_index_read(
        &self,
        base: &Expr,
        index: &Expr,
        env: &BTreeMap<String, IndexClass>,
    ) -> IndexClass {
        // permutations[r][l_linear]
        if let Expr::Index {
            base: inner_base,
            index: row,
        } = base
        {
            if matches!(inner_base.as_ref(), Expr::Var(n) if n == "permutations") {
                if let (Expr::IntLit { value, .. }, Expr::IdQuery(IdKind::LocalLinearId)) =
                    (row.as_ref(), index)
                {
                    if let Ok(r) = usize::try_from(*value) {
                        if self.perm_row_is_permutation(r) {
                            return IndexClass::Lane(LaneSource::PermRow(r));
                        }
                    }
                }
                return IndexClass::Unknown;
            }
        }
        // A read of a never-written object at a uniform subscript yields the
        // (launch-constant) initial contents: uniform.
        if let Expr::Var(name) = base {
            if self.objects.contains_key(name) && !self.written.contains(name) {
                let idx = self.classify_with_env(index, env);
                if matches!(idx, IndexClass::Const(_) | IndexClass::Uniform) {
                    return IndexClass::Uniform;
                }
            }
        }
        IndexClass::Unknown
    }

    /// Whether `permutations[r]` exists and is a permutation of
    /// `0..group_size`.
    pub fn perm_row_is_permutation(&self, r: usize) -> bool {
        let Some(row) = self.program.permutations.get(r) else {
            return false;
        };
        let n = self.group_size as usize;
        if row.len() < n {
            return false;
        }
        let mut seen = vec![false; n];
        for &v in &row[..n] {
            let v = v as usize;
            if v >= n || seen[v] {
                return false;
            }
            seen[v] = true;
        }
        true
    }

    // ----- lane stability ---------------------------------------------------

    /// Linear walk of the kernel body computing which lane-classed variables
    /// are stable: every assignment is top-level, unconditional, outside
    /// loops, and the variable has not been used since the last top-level
    /// barrier when it is (re)assigned.
    fn lane_stability(&mut self) {
        let lane_vars: BTreeSet<String> = self
            .env
            .iter()
            .filter(|(_, c)| matches!(c, IndexClass::Lane(_)))
            .map(|(n, _)| n.clone())
            .collect();
        if lane_vars.is_empty() {
            return;
        }
        let mut unstable: BTreeSet<String> = BTreeSet::new();
        // Any assignment inside a helper function body to a name shadowing a
        // kernel lane variable is treated conservatively (flat namespace).
        for f in &self.program.functions {
            mark_nested_assignments(&f.body, &lane_vars, &mut unstable);
        }
        let mut used_since_sync: BTreeSet<String> = BTreeSet::new();
        walk_stability(
            &self.program.kernel.body,
            &lane_vars,
            &mut used_since_sync,
            &mut unstable,
        );
        self.lane_stable = lane_vars.difference(&unstable).cloned().collect();
    }
}

/// Joins two variable classes (flow-insensitive may-join).
fn join(a: &IndexClass, b: &IndexClass) -> IndexClass {
    use IndexClass::*;
    if a == b {
        return a.clone();
    }
    match (a, b) {
        // Different launch-uniform values at different program points are
        // still launch-uniform at each point.
        (Const(_) | Uniform, Const(_) | Uniform) => Uniform,
        (Lane(x), Lane(_)) => Lane(x.clone()),
        _ => Unknown,
    }
}

fn add_classes(l: &IndexClass, r: &IndexClass, group_size: i128) -> IndexClass {
    use IndexClass::*;
    let pairs = [(l, r), (r, l)];
    for (a, b) in pairs {
        if let (GroupSlot { stride, slot }, Const(c)) = (a, b) {
            let new = slot + c;
            if new >= 0 && new < *stride {
                return GroupSlot {
                    stride: *stride,
                    slot: new,
                };
            }
        }
        if let (GroupSlot { stride, slot: 0 }, Lane(src)) = (a, b) {
            if group_size <= *stride {
                return GroupLane {
                    stride: *stride,
                    source: src.clone(),
                };
            }
        }
    }
    Unknown
}

fn mul_classes(l: &IndexClass, r: &IndexClass) -> IndexClass {
    use IndexClass::*;
    let pairs = [(l, r), (r, l)];
    for (a, b) in pairs {
        if let (GroupSlot { stride: 1, slot: 0 }, Const(c)) = (a, b) {
            if *c > 0 {
                return GroupSlot {
                    stride: *c,
                    slot: 0,
                };
            }
        }
    }
    Unknown
}

/// The root variable of a place expression (`A[i]`, `s.f`, `*p`, `&A[i]`).
pub fn place_root(e: &Expr) -> Option<&str> {
    match e {
        Expr::Var(name) => Some(name),
        Expr::Index { base, .. } => place_root(base),
        Expr::Field { base, .. } => place_root(base),
        Expr::Swizzle { base, .. } => place_root(base),
        Expr::Deref(inner) | Expr::AddrOf(inner) => place_root(inner),
        Expr::Cast { expr, .. } => place_root(expr),
        _ => None,
    }
}

fn collect_local_objects(body: &Block, objects: &mut BTreeMap<String, ObjectInfo>) {
    for s in body.iter() {
        s.for_each(&mut |s| {
            if let Stmt::Decl {
                name,
                ty,
                space: AddressSpace::Local,
                ..
            } = s
            {
                let len = match ty {
                    Type::Array(_, n) => Some(*n as i128),
                    _ => None,
                };
                objects.insert(
                    name.clone(),
                    ObjectInfo {
                        space: AddressSpace::Local,
                        len,
                    },
                );
            }
        });
    }
}

/// Marks every assignment (to a tracked variable) inside `body` as
/// destabilising — used for helper bodies and nested control flow.
fn mark_nested_assignments(
    body: &Block,
    tracked: &BTreeSet<String>,
    unstable: &mut BTreeSet<String>,
) {
    for s in body.iter() {
        mark_stmt_assignments(s, tracked, unstable);
    }
}

/// Marks every assignment (or shadowing declaration) of a tracked variable
/// in `stmt` or anything nested in it.
fn mark_stmt_assignments(stmt: &Stmt, tracked: &BTreeSet<String>, unstable: &mut BTreeSet<String>) {
    stmt.for_each(&mut |s| {
        if let Stmt::Decl { name, .. } = s {
            if tracked.contains(name) {
                unstable.insert(name.clone());
            }
        }
        for root in crate::walk::own_exprs(s) {
            record_assignment_targets(root, tracked, unstable);
        }
    });
}

fn record_assignment_targets(
    e: &Expr,
    tracked: &BTreeSet<String>,
    unstable: &mut BTreeSet<String>,
) {
    e.for_each(&mut |sub| {
        if let Expr::Assign { lhs, .. } = sub {
            if let Some(root) = place_root(lhs) {
                if tracked.contains(root) {
                    unstable.insert(root.to_string());
                }
            }
        }
    });
}

/// Records every variable *use* (read) in an expression, excluding the bare
/// root of a plain-assignment lhs.
fn record_uses(e: &Expr, used: &mut BTreeSet<String>) {
    match e {
        Expr::Assign { op, lhs, rhs } => {
            // Plain `x = rhs` does not read `x`; compound `x += rhs` does.
            match lhs.as_ref() {
                Expr::Var(name) => {
                    if op.binop().is_some() {
                        used.insert(name.clone());
                    }
                }
                other => record_uses(other, used),
            }
            record_uses(rhs, used);
        }
        Expr::Var(name) => {
            used.insert(name.clone());
        }
        _ => {
            let mut children: Vec<&Expr> = Vec::new();
            collect_children(e, &mut children);
            for c in children {
                record_uses(c, used);
            }
        }
    }
}

fn collect_children<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match e {
        Expr::IntLit { .. } | Expr::Var(_) | Expr::IdQuery(_) => {}
        Expr::VectorLit { parts, .. } => out.extend(parts.iter()),
        Expr::Unary { expr, .. }
        | Expr::Deref(expr)
        | Expr::AddrOf(expr)
        | Expr::Cast { expr, .. } => out.push(expr),
        Expr::Binary { lhs, rhs, .. }
        | Expr::Assign { lhs, rhs, .. }
        | Expr::Comma { lhs, rhs } => {
            out.push(lhs);
            out.push(rhs);
        }
        Expr::Cond {
            cond,
            then_expr,
            else_expr,
        } => {
            out.push(cond);
            out.push(then_expr);
            out.push(else_expr);
        }
        Expr::Call { args, .. } | Expr::BuiltinCall { args, .. } => out.extend(args.iter()),
        Expr::Index { base, index } => {
            out.push(base);
            out.push(index);
        }
        Expr::Field { base, .. } | Expr::Swizzle { base, .. } => out.push(base),
    }
}

/// The stability walk over the kernel body's unconditional, non-loop
/// statement sequence (nested plain `Block`s included — they execute
/// unconditionally and their barriers synchronise).  Everything under
/// conditional or loop control is handled conservatively: any assignment to
/// a tracked variable there destabilises it.
fn walk_stability(
    body: &Block,
    tracked: &BTreeSet<String>,
    used_since_sync: &mut BTreeSet<String>,
    unstable: &mut BTreeSet<String>,
) {
    for s in body.iter() {
        match s {
            Stmt::Barrier(_) => {
                used_since_sync.clear();
            }
            Stmt::Block(b) => {
                walk_stability(b, tracked, used_since_sync, unstable);
            }
            Stmt::Decl {
                name,
                init,
                init_list,
                ..
            } => {
                if let Some(e) = init {
                    record_uses(e, used_since_sync);
                }
                if let Some(list) = init_list {
                    list.for_each_expr(&mut |e| record_uses(e, used_since_sync));
                }
                if tracked.contains(name) && used_since_sync.contains(name) {
                    unstable.insert(name.clone());
                }
            }
            Stmt::Expr(e) => {
                // A top-level plain assignment to a tracked variable is a
                // legal sync-point reassignment only if the variable has not
                // been used since the last barrier.
                if let Expr::Assign { op, lhs, rhs } = e {
                    if let Expr::Var(name) = lhs.as_ref() {
                        if tracked.contains(name) {
                            let mut uses = BTreeSet::new();
                            record_uses(rhs, &mut uses);
                            if op.binop().is_some() {
                                uses.insert(name.clone());
                            }
                            if used_since_sync.contains(name) || uses.contains(name) {
                                unstable.insert(name.clone());
                            }
                            used_since_sync.extend(uses);
                            continue;
                        }
                    }
                }
                record_uses(e, used_since_sync);
                record_assignment_targets(e, tracked, unstable);
            }
            other => {
                // Conditional / loop context: every assignment (or shadowing
                // declaration) of a tracked variable destabilises it; every
                // use is recorded.
                mark_stmt_assignments(other, tracked, unstable);
                other.for_each(&mut |s| {
                    for root in crate::walk::own_exprs(s) {
                        record_uses(root, used_since_sync);
                    }
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clc::expr::Builtin;
    use clc::program::{BufferSpec, KernelDef, LaunchConfig};
    use clc::stmt::MemFence;
    use clc::types::ScalarType;
    use clc::Program;

    fn program_with(body: Vec<Stmt>) -> Program {
        let mut p = Program::new(
            KernelDef {
                name: "k".into(),
                params: Program::standard_clsmith_params(0),
                body: Block::of(body),
            },
            LaunchConfig::new([16, 1, 1], [4, 1, 1]).unwrap(),
        );
        p.buffers
            .push(BufferSpec::result("out", ScalarType::ULong, 16));
        p
    }

    #[test]
    fn classifies_core_idioms() {
        let p = program_with(vec![]);
        let m = KernelModel::build(&p);
        assert_eq!(
            m.classify(&Expr::IdQuery(IdKind::GlobalLinearId)),
            IndexClass::Thread
        );
        assert_eq!(
            m.classify(&Expr::IdQuery(IdKind::LocalLinearId)),
            IndexClass::Lane(LaneSource::LocalLinear)
        );
        assert_eq!(
            m.classify(&Expr::IdQuery(IdKind::GroupLinearId)),
            IndexClass::GroupSlot { stride: 1, slot: 0 }
        );
        assert_eq!(
            m.classify(&Expr::IdQuery(IdKind::LinearGroupSize)),
            IndexClass::Uniform
        );
        // g*4 + 2 → slot 2 of a 4-stride stripe.
        let slot = Expr::binary(
            BinOp::Add,
            Expr::binary(
                BinOp::Mul,
                Expr::IdQuery(IdKind::GroupLinearId),
                Expr::lit(4, ScalarType::UInt),
            ),
            Expr::lit(2, ScalarType::UInt),
        );
        assert_eq!(
            m.classify(&slot),
            IndexClass::GroupSlot { stride: 4, slot: 2 }
        );
        // g*4 + l_linear → per-group lane stripe (group size 4).
        let lane = Expr::binary(
            BinOp::Add,
            Expr::binary(
                BinOp::Mul,
                Expr::IdQuery(IdKind::GroupLinearId),
                Expr::lit(4, ScalarType::UInt),
            ),
            Expr::IdQuery(IdKind::LocalLinearId),
        );
        assert_eq!(
            m.classify(&lane),
            IndexClass::GroupLane {
                stride: 4,
                source: LaneSource::LocalLinear
            }
        );
    }

    #[test]
    fn permutation_rows_are_lane_valued() {
        let mut p = program_with(vec![]);
        p.permutations = vec![vec![2, 0, 3, 1], vec![0, 0, 1, 2]];
        let m = KernelModel::build(&p);
        let read = |r: i64| {
            Expr::index(
                Expr::index(Expr::var("permutations"), Expr::int(r)),
                Expr::IdQuery(IdKind::LocalLinearId),
            )
        };
        assert_eq!(
            m.classify(&read(0)),
            IndexClass::Lane(LaneSource::PermRow(0))
        );
        // Row 1 repeats 0 — not a permutation.
        assert_eq!(m.classify(&read(1)), IndexClass::Unknown);
        // Out-of-range row.
        assert_eq!(m.classify(&read(7)), IndexClass::Unknown);
    }

    #[test]
    fn env_classifies_offset_variable_and_stability() {
        // A_offset = permutations[0][lid], reassigned right after a barrier:
        // stable.
        let mut p = program_with(vec![
            Stmt::decl(
                "A_offset",
                Type::Scalar(ScalarType::UInt),
                Some(Expr::index(
                    Expr::index(Expr::var("permutations"), Expr::int(0)),
                    Expr::IdQuery(IdKind::LocalLinearId),
                )),
            ),
            Stmt::assign(
                Expr::index(Expr::var("out"), Expr::var("A_offset")),
                Expr::int(1),
            ),
            Stmt::Barrier(MemFence::Global),
            Stmt::assign(
                Expr::var("A_offset"),
                Expr::index(
                    Expr::index(Expr::var("permutations"), Expr::int(0)),
                    Expr::IdQuery(IdKind::LocalLinearId),
                ),
            ),
            Stmt::assign(
                Expr::index(Expr::var("out"), Expr::var("A_offset")),
                Expr::int(2),
            ),
        ]);
        p.permutations = vec![vec![2, 0, 3, 1]];
        let m = KernelModel::build(&p);
        assert_eq!(
            m.classify(&Expr::var("A_offset")),
            IndexClass::Lane(LaneSource::Var("A_offset".into()))
        );
        assert!(m.lane_stable.contains("A_offset"));
    }

    #[test]
    fn reassignment_after_use_without_barrier_is_unstable() {
        let mut p = program_with(vec![
            Stmt::decl(
                "A_offset",
                Type::Scalar(ScalarType::UInt),
                Some(Expr::index(
                    Expr::index(Expr::var("permutations"), Expr::int(0)),
                    Expr::IdQuery(IdKind::LocalLinearId),
                )),
            ),
            Stmt::assign(
                Expr::index(Expr::var("out"), Expr::var("A_offset")),
                Expr::int(1),
            ),
            // Reassigned *without* an intervening barrier while live: the
            // shuffle-separated sync-point pattern.
            Stmt::assign(
                Expr::var("A_offset"),
                Expr::index(
                    Expr::index(Expr::var("permutations"), Expr::int(0)),
                    Expr::IdQuery(IdKind::LocalLinearId),
                ),
            ),
            Stmt::assign(
                Expr::index(Expr::var("out"), Expr::var("A_offset")),
                Expr::int(2),
            ),
        ]);
        p.permutations = vec![vec![2, 0, 3, 1]];
        let m = KernelModel::build(&p);
        assert!(!m.lane_stable.contains("A_offset"));
    }

    #[test]
    fn written_set_sees_assignments_atomics_and_escapes() {
        let mut p = program_with(vec![
            Stmt::assign(
                Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
                Expr::int(1),
            ),
            Stmt::expr(Expr::builtin(
                Builtin::AtomicInc,
                vec![Expr::addr_of(Expr::index(Expr::var("red"), Expr::int(0)))],
            )),
        ]);
        p.buffers.push(BufferSpec::new(
            "red",
            ScalarType::UInt,
            4,
            clc::BufferInit::Zero,
        ));
        p.buffers.push(BufferSpec::new(
            "quiet",
            ScalarType::UInt,
            4,
            clc::BufferInit::Zero,
        ));
        let m = KernelModel::build(&p);
        assert!(m.written.contains("out"));
        assert!(m.written.contains("red"));
        assert!(!m.written.contains("quiet"));
    }
}
