//! Analysis verdicts: diagnostics, access-pair classifications, and the
//! [`AnalysisReport`] that campaigns, caches and the `analyze` binary consume.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The kind of a diagnostic, ordered by severity (most severe first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagnosticKind {
    /// A barrier may be reached by only part of a work-group (a barrier under
    /// identity-dependent control flow).
    BarrierDivergence,
    /// Two accesses definitely form a data race on every execution.
    MustRace,
    /// Two accesses may form a data race under some schedule.
    MayRace,
    /// A private variable may be read before it is initialised.
    UseBeforeInit,
    /// An access is definitely outside the declared buffer extent.
    OutOfBounds,
    /// An access whose subscript the analyzer cannot bound.
    MayOutOfBounds,
}

impl DiagnosticKind {
    /// Short stable key used in tallies and golden files.
    pub fn key(self) -> &'static str {
        match self {
            DiagnosticKind::BarrierDivergence => "divergence",
            DiagnosticKind::MustRace => "must-race",
            DiagnosticKind::MayRace => "may-race",
            DiagnosticKind::UseBeforeInit => "uninit",
            DiagnosticKind::OutOfBounds => "oob",
            DiagnosticKind::MayOutOfBounds => "may-oob",
        }
    }
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// What was found.
    pub kind: DiagnosticKind,
    /// The buffer / local array / variable involved, when there is one.
    pub object: Option<String>,
    /// Human-readable explanation.
    pub message: String,
    /// Printer-derived source excerpt of the offending site.
    pub excerpt: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.kind)?;
        if let Some(obj) = &self.object {
            write!(f, " {obj}:")?;
        }
        write!(f, " {}", self.message)?;
        if !self.excerpt.is_empty() {
            write!(f, "\n    at: {}", self.excerpt)?;
        }
        Ok(())
    }
}

/// Static verdict for one pair of accesses to the same object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PairVerdict {
    /// The two accesses can never touch the same cell from different
    /// work-items in a conflicting way.
    Disjoint,
    /// A conflicting overlap is possible under some schedule.
    MayRace,
    /// A conflicting overlap happens on every execution.
    MustRace,
}

/// A classified access pair (only non-disjoint pairs are retained).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AccessPair {
    /// The object both accesses touch.
    pub object: String,
    /// Printer-derived excerpt of the first access site.
    pub first: String,
    /// Printer-derived excerpt of the second access site.
    pub second: String,
    /// The pair verdict.
    pub verdict: PairVerdict,
}

/// The full result of analysing one program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AnalysisReport {
    /// All findings, most severe first, deterministically ordered.
    pub diagnostics: Vec<Diagnostic>,
    /// All may-race / must-race access pairs.
    pub pairs: Vec<AccessPair>,
    /// How many access pairs the race analysis examined in total.
    pub checked_pairs: usize,
    /// Objects involved in at least one may-race / must-race pair.  The
    /// soundness contract: every *dynamic* race verdict must name an object
    /// in this set.
    pub flagged_objects: BTreeSet<String>,
}

impl AnalysisReport {
    /// No may-race or must-race finding.
    pub fn race_free(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| matches!(d.kind, DiagnosticKind::MayRace | DiagnosticKind::MustRace))
    }

    /// No barrier-divergence finding.
    pub fn divergence_free(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.kind == DiagnosticKind::BarrierDivergence)
    }

    /// The certification the differential methodology relies on: the kernel
    /// is statically race-free *and* divergence-free, so a dynamic race or
    /// divergence verdict on it would be an analyzer soundness bug.
    pub fn is_certified(&self) -> bool {
        self.race_free() && self.divergence_free()
    }

    /// Whether any diagnostic at all was produced.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The single most severe verdict class, for per-kernel tallies.
    pub fn verdict(&self) -> &'static str {
        self.diagnostics
            .iter()
            .map(|d| d.kind)
            .min()
            .map(DiagnosticKind::key)
            .unwrap_or("clean")
    }

    /// Diagnostic counts per kind key, deterministically ordered.
    pub fn verdict_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for d in &self.diagnostics {
            *counts.entry(d.kind.key()).or_insert(0) += 1;
        }
        counts
    }

    /// One-line summary: `clean` or `divergence:1 may-race:3`.
    pub fn summary(&self) -> String {
        if self.diagnostics.is_empty() {
            return "clean".into();
        }
        self.verdict_counts()
            .iter()
            .map(|(k, n)| format!("{k}:{n}"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Canonicalises ordering so reports compare and render deterministically
    /// regardless of pass ordering.
    pub(crate) fn normalize(&mut self) {
        self.diagnostics.sort();
        self.diagnostics.dedup();
        self.pairs.sort();
        self.pairs.dedup();
        self.flagged_objects = self
            .pairs
            .iter()
            .map(|p| p.object.clone())
            .collect::<BTreeSet<_>>();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(kind: DiagnosticKind) -> Diagnostic {
        Diagnostic {
            kind,
            object: Some("A".into()),
            message: "m".into(),
            excerpt: String::new(),
        }
    }

    #[test]
    fn verdict_picks_most_severe() {
        let mut r = AnalysisReport::default();
        assert_eq!(r.verdict(), "clean");
        assert!(r.is_certified());
        r.diagnostics.push(diag(DiagnosticKind::MayOutOfBounds));
        assert_eq!(r.verdict(), "may-oob");
        assert!(r.is_certified());
        r.diagnostics.push(diag(DiagnosticKind::MayRace));
        assert_eq!(r.verdict(), "may-race");
        assert!(!r.is_certified());
        r.diagnostics.push(diag(DiagnosticKind::BarrierDivergence));
        assert_eq!(r.verdict(), "divergence");
        assert!(!r.race_free() && !r.divergence_free());
    }

    #[test]
    fn summary_counts_per_kind() {
        let mut r = AnalysisReport::default();
        r.diagnostics.push(diag(DiagnosticKind::MayRace));
        r.diagnostics.push(diag(DiagnosticKind::MayRace));
        r.diagnostics.push(diag(DiagnosticKind::UseBeforeInit));
        assert_eq!(r.summary(), "may-race:2 uninit:1");
    }
}
