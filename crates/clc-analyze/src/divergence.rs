//! Barrier-divergence lint.
//!
//! OpenCL requires every work-item of a group to reach the *same* barrier
//! the same number of times.  A barrier under identity-dependent control
//! flow (a condition or loop trip count depending on `get_local_id` /
//! `get_global_id` or anything derived from them) can therefore hang or
//! produce undefined behaviour.  This pass walks the kernel body tracking a
//! non-uniform control depth and flags barriers (and divergent early exits)
//! reached under it.
//!
//! Helper-function barriers are *soft* in both interpreter tiers (they do
//! not synchronise), so only the kernel body is checked.

use crate::classify::KernelModel;
use crate::race::block_has_barrier;
use crate::report::{Diagnostic, DiagnosticKind};
use clc::stmt::{Block, Stmt};

/// Runs the divergence pass over the kernel body.
pub fn check_divergence(model: &KernelModel<'_>) -> Vec<Diagnostic> {
    // A group of one work-item cannot diverge from itself.
    if model.group_size < 2 {
        return Vec::new();
    }
    let kernel_has_barrier = block_has_barrier(&model.program.kernel.body);
    let mut checker = Checker {
        model,
        kernel_has_barrier,
        loops: Vec::new(),
        out: Vec::new(),
    };
    checker.walk_block(&model.program.kernel.body, 0);
    checker.out
}

struct Checker<'m, 'p> {
    model: &'m KernelModel<'p>,
    kernel_has_barrier: bool,
    /// `(loop_contains_barrier, nonuniform_depth_at_loop_entry)`.
    loops: Vec<(bool, usize)>,
    out: Vec<Diagnostic>,
}

impl<'m, 'p> Checker<'m, 'p> {
    fn walk_block(&mut self, block: &Block, nonuniform: usize) {
        for s in block.iter() {
            self.walk_stmt(s, nonuniform);
        }
    }

    fn diag(&mut self, message: &str, excerpt: String) {
        self.out.push(Diagnostic {
            kind: DiagnosticKind::BarrierDivergence,
            object: None,
            message: message.to_string(),
            excerpt,
        });
    }

    fn walk_stmt(&mut self, s: &Stmt, nonuniform: usize) {
        match s {
            Stmt::Barrier(_) => {
                if nonuniform > 0 {
                    self.diag(
                        "barrier under identity-dependent control flow",
                        "barrier(...)".into(),
                    );
                }
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                let d = nonuniform + usize::from(!self.model.is_uniform(cond));
                self.walk_block(then_block, d);
                if let Some(b) = else_block {
                    self.walk_block(b, d);
                }
            }
            Stmt::While { cond, body } => {
                let d = nonuniform + usize::from(!self.model.is_uniform(cond));
                self.loops.push((block_has_barrier(body), d));
                self.walk_block(body, d);
                self.loops.pop();
            }
            Stmt::For {
                init,
                cond,
                update: _,
                body,
            } => {
                if let Some(i) = init {
                    self.walk_stmt(i, nonuniform);
                }
                let uniform_trip = cond.as_ref().is_none_or(|c| self.model.is_uniform(c));
                let d = nonuniform + usize::from(!uniform_trip);
                self.loops.push((block_has_barrier(body), d));
                self.walk_block(body, d);
                self.loops.pop();
            }
            Stmt::Block(b) => self.walk_block(b, nonuniform),
            Stmt::Emi(emi) => {
                // The guard `dead[a] < dead[b]` is uniform as long as the
                // `dead` buffer is never written.
                let d = nonuniform + usize::from(self.model.written.contains("dead"));
                self.walk_block(&emi.body, d);
            }
            Stmt::Return(_) => {
                if nonuniform > 0 && self.kernel_has_barrier {
                    self.diag(
                        "divergent early return in a kernel that synchronises",
                        "return".into(),
                    );
                }
            }
            Stmt::Break | Stmt::Continue => {
                if let Some(&(has_barrier, entry)) = self.loops.last() {
                    if has_barrier && nonuniform > entry {
                        self.diag(
                            "divergent break/continue in a loop containing a barrier",
                            "break/continue".into(),
                        );
                    }
                }
            }
            Stmt::Decl { .. } | Stmt::Expr(_) => {}
        }
    }
}
