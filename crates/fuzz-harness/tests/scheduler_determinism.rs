//! The campaign engine's headline guarantee: for a fixed campaign seed,
//! every driver produces **bit-identical** results — including the rendered
//! report tables — at any worker count, and (since the staged scheduler)
//! in either execution mode: whole-job batches or the pipelined
//! generate → execute → judge hand-off.

use clsmith::{GenMode, GeneratorOptions};
use fuzz_harness::{
    classify_configurations_with, evaluate_benchmark_with, generate_live_bases_with, percent,
    render_campaign_table, render_emi_table, render_reliability_table, run_emi_campaign_with,
    run_mode_campaign_with, CampaignOptions, EmiBenchmark, EmiCampaignOptions, ExecutionTier,
    Scheduler, SchedulerMode,
};
use opencl_sim::ExecOptions;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Worker counts of the pipeline-vs-batch differential (1, a small prime,
/// and "many" relative to the job counts below).
const PIPELINE_WORKER_COUNTS: [usize; 3] = [1, 3, 8];

fn small_campaign_options(seed_offset: u64) -> CampaignOptions {
    CampaignOptions {
        kernels: 10,
        generator: GeneratorOptions {
            min_threads: 16,
            max_threads: 48,
            ..GeneratorOptions::default()
        },
        exec: ExecOptions::default(),
        seed_offset,
        prefilter: false,
    }
}

#[test]
fn mode_campaign_is_bit_identical_at_any_worker_count() {
    let configs = vec![
        opencl_sim::configuration(1),
        opencl_sim::configuration(9),
        opencl_sim::configuration(14),
        opencl_sim::configuration(19),
    ];
    let options = small_campaign_options(0xC0FFEE);
    let reference = run_mode_campaign_with(
        &Scheduler::sequential(),
        GenMode::Barrier,
        &configs,
        &options,
    );
    let reference_table = render_campaign_table(&reference);
    assert!(reference.stats.iter().any(|s| s.total() == options.kernels));
    for workers in WORKER_COUNTS {
        let result = run_mode_campaign_with(
            &Scheduler::new(workers),
            GenMode::Barrier,
            &configs,
            &options,
        );
        assert_eq!(
            result, reference,
            "{workers} workers changed the campaign result"
        );
        assert_eq!(
            render_campaign_table(&result),
            reference_table,
            "{workers} workers changed the rendered table"
        );
    }
}

#[test]
fn emi_campaign_is_bit_identical_at_any_worker_count() {
    let configs = vec![opencl_sim::configuration(1), opencl_sim::configuration(19)];
    let options = EmiCampaignOptions {
        bases: 3,
        variants_per_base: 6,
        campaign: small_campaign_options(7),
    };
    let reference = run_emi_campaign_with(&Scheduler::sequential(), &configs, &options);
    let reference_table = render_emi_table(&reference);
    assert!(reference.bases > 0, "liveness filtering accepted no bases");
    for workers in WORKER_COUNTS {
        let result = run_emi_campaign_with(&Scheduler::new(workers), &configs, &options);
        assert_eq!(
            result, reference,
            "{workers} workers changed the EMI campaign result"
        );
        assert_eq!(
            render_emi_table(&result),
            reference_table,
            "{workers} workers changed the rendered table"
        );
    }
}

#[test]
fn live_base_acceptance_is_independent_of_worker_count_and_chunking() {
    let options = EmiCampaignOptions {
        bases: 3,
        variants_per_base: 4,
        campaign: small_campaign_options(21),
    };
    let reference = generate_live_bases_with(&Scheduler::sequential(), &options);
    assert!(!reference.is_empty());
    for workers in WORKER_COUNTS {
        // Different worker counts probe candidates in different chunk sizes;
        // the accepted set must still be the first N live candidates.
        let bases = generate_live_bases_with(&Scheduler::new(workers), &options);
        assert_eq!(
            bases, reference,
            "{workers} workers changed the accepted base set"
        );
    }
}

#[test]
fn reliability_classification_is_bit_identical_at_any_worker_count() {
    let configs = vec![opencl_sim::configuration(1), opencl_sim::configuration(21)];
    let options = small_campaign_options(0);
    let describe = |scheduler: &Scheduler| -> Vec<(usize, String, bool)> {
        classify_configurations_with(scheduler, &configs, 3, &options)
            .into_iter()
            .map(|row| {
                (
                    row.config.id,
                    percent(row.failure_fraction * 100.0),
                    row.above_threshold,
                )
            })
            .collect()
    };
    let reference = describe(&Scheduler::sequential());
    for workers in WORKER_COUNTS {
        assert_eq!(
            describe(&Scheduler::new(workers)),
            reference,
            "{workers} workers"
        );
    }
}

/// The pipeline-vs-batch differential: Tables 1, 4 and 5 must be
/// bit-identical between the two scheduler modes at 1, 3 and 8 workers —
/// on both interpreter tiers, since the tier is the execution half of every
/// staged job.
#[test]
fn tables_1_4_5_are_bit_identical_between_batch_and_pipelined_modes() {
    for tier in ExecutionTier::ALL {
        let exec = ExecOptions {
            tier,
            ..ExecOptions::default()
        };
        let campaign_options = |seed_offset: u64| CampaignOptions {
            kernels: 8,
            generator: GeneratorOptions {
                min_threads: 16,
                max_threads: 48,
                ..GeneratorOptions::default()
            },
            exec: exec.clone(),
            seed_offset,
            prefilter: false,
        };

        // Table 1: the reliability classification.
        let table1_configs = vec![opencl_sim::configuration(1), opencl_sim::configuration(21)];
        let table1 = |scheduler: &Scheduler| {
            render_reliability_table(&classify_configurations_with(
                scheduler,
                &table1_configs,
                3,
                &campaign_options(0x7AB1E1),
            ))
        };

        // Table 4: a per-mode CLsmith campaign.
        let table4_configs = vec![
            opencl_sim::configuration(1),
            opencl_sim::configuration(9),
            opencl_sim::configuration(19),
        ];
        let table4 = |scheduler: &Scheduler| {
            render_campaign_table(&run_mode_campaign_with(
                scheduler,
                GenMode::Barrier,
                &table4_configs,
                &campaign_options(0x7AB1E4),
            ))
        };

        // Table 5: the EMI campaign (variant pruning, the memoised judging
        // grid and row classification are distinct pipeline stages here).
        let table5_configs = vec![opencl_sim::configuration(1), opencl_sim::configuration(19)];
        let emi_options = EmiCampaignOptions {
            bases: 2,
            variants_per_base: 5,
            campaign: campaign_options(0x7AB1E5),
        };
        let table5 = |scheduler: &Scheduler| {
            render_emi_table(&run_emi_campaign_with(
                scheduler,
                &table5_configs,
                &emi_options,
            ))
        };

        type RenderTable<'a> = &'a dyn Fn(&Scheduler) -> String;
        let tables: [(&str, RenderTable<'_>); 3] = [("1", &table1), ("4", &table4), ("5", &table5)];
        for (name, render) in tables {
            let reference = render(&Scheduler::new(2));
            for workers in PIPELINE_WORKER_COUNTS {
                let pipelined = Scheduler::new(workers).with_mode(SchedulerMode::Pipelined);
                assert_eq!(
                    render(&pipelined),
                    reference,
                    "Table {name} diverged between batch and pipelined mode \
                     at {workers} workers on the {} tier",
                    tier.name()
                );
            }
        }
    }
}

#[test]
fn benchmark_emi_cell_is_bit_identical_at_any_worker_count() {
    let donor = clsmith::generate(
        &GeneratorOptions {
            min_threads: 16,
            max_threads: 32,
            ..GeneratorOptions::new(GenMode::Basic, 123)
        }
        .with_emi(),
    );
    let bodies: Vec<clc::Block> = donor
        .emi_blocks()
        .iter()
        .map(|b| b.body.clone())
        .take(4)
        .collect();
    assert!(!bodies.is_empty());
    let bench = parboil();
    let emi = EmiBenchmark {
        name: bench.0,
        program: bench.1,
        bodies,
        injection_points: 1,
    };
    let config = opencl_sim::configuration(12);
    let exec = ExecOptions::default();
    let reference = evaluate_benchmark_with(&Scheduler::sequential(), &emi, &config, &exec);
    for workers in WORKER_COUNTS {
        let cell = evaluate_benchmark_with(&Scheduler::new(workers), &emi, &config, &exec);
        assert_eq!(cell.render(), reference.render(), "{workers} workers");
        assert_eq!(cell.variants, reference.variants, "{workers} workers");
    }
}

/// A small deterministic host kernel for the Table 3 cell test.
fn parboil() -> (String, clc::Program) {
    use clc::{BufferSpec, Expr, IdKind, KernelDef, LaunchConfig, ScalarType, Stmt, Type};
    let mut p = clc::Program::new(
        KernelDef {
            name: "bench".into(),
            params: clc::Program::standard_clsmith_params(0),
            body: clc::Block::of(vec![
                Stmt::decl("x", Type::Scalar(ScalarType::Int), Some(Expr::int(3))),
                Stmt::assign(
                    Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
                    Expr::var("x"),
                ),
            ]),
        },
        LaunchConfig::single_group(4),
    );
    p.buffers
        .push(BufferSpec::result("out", ScalarType::ULong, 4));
    ("tiny".to_string(), p)
}

/// The static pre-filter (`CampaignOptions::prefilter`) keeps every
/// guarantee above: skipped kernels land in the `sk` tally row, the row
/// only renders when something was actually skipped, totals still count
/// every kernel, and the table stays bit-identical at any worker count.
#[test]
fn prefilter_campaign_is_deterministic_and_renders_sk_row() {
    let configs = vec![opencl_sim::configuration(1), opencl_sim::configuration(19)];
    let options = CampaignOptions {
        kernels: 40,
        prefilter: true,
        ..small_campaign_options(0xF117E2)
    };
    let reference =
        run_mode_campaign_with(&Scheduler::sequential(), GenMode::All, &configs, &options);
    let reference_table = render_campaign_table(&reference);
    let skipped: usize = reference.stats.iter().map(|s| s.skipped).sum();
    assert!(
        skipped > 0,
        "seed offset produced no statically-uncertified kernels — the sk \
         path never ran:\n{reference_table}"
    );
    assert!(
        reference_table.contains("| sk "),
        "skipped kernels must render an sk row:\n{reference_table}"
    );
    for stat in &reference.stats {
        assert_eq!(
            stat.total(),
            options.kernels,
            "skipped kernels must still count toward the per-target total"
        );
    }
    for workers in WORKER_COUNTS {
        let result =
            run_mode_campaign_with(&Scheduler::new(workers), GenMode::All, &configs, &options);
        assert_eq!(
            render_campaign_table(&result),
            reference_table,
            "prefilter campaign diverged at {workers} workers"
        );
    }
    // Prefilter off on the same seed renders no sk row at all.
    let off = run_mode_campaign_with(
        &Scheduler::sequential(),
        GenMode::All,
        &configs,
        &CampaignOptions {
            prefilter: false,
            ..options.clone()
        },
    );
    assert!(!render_campaign_table(&off).contains("| sk "));
}
