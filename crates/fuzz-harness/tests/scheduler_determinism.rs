//! The campaign engine's headline guarantee: for a fixed campaign seed,
//! every driver produces **bit-identical** results — including the rendered
//! report tables — at any worker count.

use clsmith::{GenMode, GeneratorOptions};
use fuzz_harness::{
    classify_configurations_with, evaluate_benchmark_with, generate_live_bases_with, percent,
    render_campaign_table, render_emi_table, run_emi_campaign_with, run_mode_campaign_with,
    CampaignOptions, EmiBenchmark, EmiCampaignOptions, Scheduler,
};
use opencl_sim::ExecOptions;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn small_campaign_options(seed_offset: u64) -> CampaignOptions {
    CampaignOptions {
        kernels: 10,
        generator: GeneratorOptions {
            min_threads: 16,
            max_threads: 48,
            ..GeneratorOptions::default()
        },
        exec: ExecOptions::default(),
        seed_offset,
    }
}

#[test]
fn mode_campaign_is_bit_identical_at_any_worker_count() {
    let configs = vec![
        opencl_sim::configuration(1),
        opencl_sim::configuration(9),
        opencl_sim::configuration(14),
        opencl_sim::configuration(19),
    ];
    let options = small_campaign_options(0xC0FFEE);
    let reference = run_mode_campaign_with(
        &Scheduler::sequential(),
        GenMode::Barrier,
        &configs,
        &options,
    );
    let reference_table = render_campaign_table(&reference);
    assert!(reference.stats.iter().any(|s| s.total() == options.kernels));
    for workers in WORKER_COUNTS {
        let result = run_mode_campaign_with(
            &Scheduler::new(workers),
            GenMode::Barrier,
            &configs,
            &options,
        );
        assert_eq!(
            result, reference,
            "{workers} workers changed the campaign result"
        );
        assert_eq!(
            render_campaign_table(&result),
            reference_table,
            "{workers} workers changed the rendered table"
        );
    }
}

#[test]
fn emi_campaign_is_bit_identical_at_any_worker_count() {
    let configs = vec![opencl_sim::configuration(1), opencl_sim::configuration(19)];
    let options = EmiCampaignOptions {
        bases: 3,
        variants_per_base: 6,
        campaign: small_campaign_options(7),
    };
    let reference = run_emi_campaign_with(&Scheduler::sequential(), &configs, &options);
    let reference_table = render_emi_table(&reference);
    assert!(reference.bases > 0, "liveness filtering accepted no bases");
    for workers in WORKER_COUNTS {
        let result = run_emi_campaign_with(&Scheduler::new(workers), &configs, &options);
        assert_eq!(
            result, reference,
            "{workers} workers changed the EMI campaign result"
        );
        assert_eq!(
            render_emi_table(&result),
            reference_table,
            "{workers} workers changed the rendered table"
        );
    }
}

#[test]
fn live_base_acceptance_is_independent_of_worker_count_and_chunking() {
    let options = EmiCampaignOptions {
        bases: 3,
        variants_per_base: 4,
        campaign: small_campaign_options(21),
    };
    let reference = generate_live_bases_with(&Scheduler::sequential(), &options);
    assert!(!reference.is_empty());
    for workers in WORKER_COUNTS {
        // Different worker counts probe candidates in different chunk sizes;
        // the accepted set must still be the first N live candidates.
        let bases = generate_live_bases_with(&Scheduler::new(workers), &options);
        assert_eq!(
            bases, reference,
            "{workers} workers changed the accepted base set"
        );
    }
}

#[test]
fn reliability_classification_is_bit_identical_at_any_worker_count() {
    let configs = vec![opencl_sim::configuration(1), opencl_sim::configuration(21)];
    let options = small_campaign_options(0);
    let describe = |scheduler: &Scheduler| -> Vec<(usize, String, bool)> {
        classify_configurations_with(scheduler, &configs, 3, &options)
            .into_iter()
            .map(|row| {
                (
                    row.config.id,
                    percent(row.failure_fraction * 100.0),
                    row.above_threshold,
                )
            })
            .collect()
    };
    let reference = describe(&Scheduler::sequential());
    for workers in WORKER_COUNTS {
        assert_eq!(
            describe(&Scheduler::new(workers)),
            reference,
            "{workers} workers"
        );
    }
}

#[test]
fn benchmark_emi_cell_is_bit_identical_at_any_worker_count() {
    let donor = clsmith::generate(
        &GeneratorOptions {
            min_threads: 16,
            max_threads: 32,
            ..GeneratorOptions::new(GenMode::Basic, 123)
        }
        .with_emi(),
    );
    let bodies: Vec<clc::Block> = donor
        .emi_blocks()
        .iter()
        .map(|b| b.body.clone())
        .take(4)
        .collect();
    assert!(!bodies.is_empty());
    let bench = parboil();
    let emi = EmiBenchmark {
        name: bench.0,
        program: bench.1,
        bodies,
        injection_points: 1,
    };
    let config = opencl_sim::configuration(12);
    let exec = ExecOptions::default();
    let reference = evaluate_benchmark_with(&Scheduler::sequential(), &emi, &config, &exec);
    for workers in WORKER_COUNTS {
        let cell = evaluate_benchmark_with(&Scheduler::new(workers), &emi, &config, &exec);
        assert_eq!(cell.render(), reference.render(), "{workers} workers");
        assert_eq!(cell.variants, reference.variants, "{workers} workers");
    }
}

/// A small deterministic host kernel for the Table 3 cell test.
fn parboil() -> (String, clc::Program) {
    use clc::{BufferSpec, Expr, IdKind, KernelDef, LaunchConfig, ScalarType, Stmt, Type};
    let mut p = clc::Program::new(
        KernelDef {
            name: "bench".into(),
            params: clc::Program::standard_clsmith_params(0),
            body: clc::Block::of(vec![
                Stmt::decl("x", Type::Scalar(ScalarType::Int), Some(Expr::int(3))),
                Stmt::assign(
                    Expr::index(Expr::var("out"), Expr::IdQuery(IdKind::GlobalLinearId)),
                    Expr::var("x"),
                ),
            ]),
        },
        LaunchConfig::single_group(4),
    );
    p.buffers
        .push(BufferSpec::result("out", ScalarType::ULong, 4));
    ("tiny".to_string(), p)
}
