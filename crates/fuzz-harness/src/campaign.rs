//! Campaign drivers: the initial reliability classification (Table 1, §7.1)
//! and the per-mode CLsmith campaigns (Table 4, §7.3).

use crate::differential::{classify, run_on_targets, targets_for, TestTarget, Verdict};
use crate::exec::{job_seed, Job, Scheduler};
use clsmith::{generate, GenMode, GeneratorOptions};
use opencl_sim::{Configuration, ExecOptions, OptLevel, TestOutcome};
use std::sync::Arc;

/// Per-target tallies for a batch of kernels (one cell block of Table 4).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TargetStats {
    /// Wrong-code results (`w`).
    pub wrong: usize,
    /// Build failures (`bf`).
    pub build_failures: usize,
    /// Runtime crashes (`c`).
    pub crashes: usize,
    /// Timeouts (`to`).
    pub timeouts: usize,
    /// Results that agreed with the majority (`✓`).
    pub ok: usize,
}

impl TargetStats {
    /// Records one verdict.
    pub fn record(&mut self, verdict: Verdict) {
        match verdict {
            Verdict::Ok => self.ok += 1,
            Verdict::WrongCode => self.wrong += 1,
            Verdict::BuildFailure => self.build_failures += 1,
            Verdict::Crash => self.crashes += 1,
            Verdict::Timeout => self.timeouts += 1,
        }
    }

    /// Total number of kernels recorded.
    pub fn total(&self) -> usize {
        self.wrong + self.build_failures + self.crashes + self.timeouts + self.ok
    }

    /// The paper's *wrong code percentage* `w%`: wrong-code results as a
    /// percentage of computed (non-{bf, c, to}) results.
    pub fn wrong_code_percentage(&self) -> f64 {
        let computed = self.wrong + self.ok;
        if computed == 0 {
            0.0
        } else {
            100.0 * self.wrong as f64 / computed as f64
        }
    }

    /// Fraction of kernels that failed (build failure, crash or wrong code) —
    /// the quantity the §7.1 reliability threshold is defined over.
    pub fn failure_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.wrong + self.build_failures + self.crashes) as f64 / total as f64
        }
    }
}

/// Result of a per-mode campaign: one [`TargetStats`] per target, in target
/// order.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The mode the kernels were generated with.
    pub mode: GenMode,
    /// Number of kernels in the batch.
    pub kernels: usize,
    /// The targets, in column order.
    pub targets: Vec<TestTarget>,
    /// Tallies per target.
    pub stats: Vec<TargetStats>,
}

impl PartialEq for CampaignResult {
    /// Semantic equality: same mode, same batch size, same target columns
    /// (by label) and identical tallies.  Used by the scheduler determinism
    /// tests to compare campaigns run at different worker counts.
    fn eq(&self, other: &Self) -> bool {
        self.mode == other.mode
            && self.kernels == other.kernels
            && self.stats == other.stats
            && self.targets.len() == other.targets.len()
            && self
                .targets
                .iter()
                .zip(&other.targets)
                .all(|(a, b)| a.label() == b.label())
    }
}

impl CampaignResult {
    /// Stats for a target by its paper label (e.g. `"12-"`).
    pub fn stats_for(&self, label: &str) -> Option<&TargetStats> {
        self.targets
            .iter()
            .position(|t| t.label() == label)
            .map(|i| &self.stats[i])
    }

    /// Aggregate wrong-code percentage across all targets (the "Total"
    /// column of Table 4).
    pub fn total_wrong_code_percentage(&self) -> f64 {
        let mut wrong = 0usize;
        let mut ok = 0usize;
        for s in &self.stats {
            wrong += s.wrong;
            ok += s.ok;
        }
        if wrong + ok == 0 {
            0.0
        } else {
            100.0 * wrong as f64 / (wrong + ok) as f64
        }
    }
}

/// Options controlling campaign scale.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Kernels per mode.
    pub kernels: usize,
    /// Base generator options (mode and seed are overridden per kernel).
    pub generator: GeneratorOptions,
    /// Execution options (step limit maps to the paper's 60 s timeout).
    pub exec: ExecOptions,
    /// Seed offset so different campaigns use disjoint kernel sets.
    pub seed_offset: u64,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            kernels: 30,
            generator: GeneratorOptions::default(),
            exec: ExecOptions::default(),
            seed_offset: 0,
        }
    }
}

/// One kernel's worth of campaign work: generate the kernel from its
/// job-derived seed, run it on every target, vote.  The target list is
/// shared read-only state behind an [`Arc`].
#[derive(Debug, Clone)]
pub struct KernelJob {
    /// Generation mode.
    pub mode: GenMode,
    /// The per-job seed (`job_seed(campaign_seed, job_index)`).
    pub seed: u64,
    /// Base generator options (mode/seed overridden by the fields above).
    pub generator: GeneratorOptions,
    /// Execution options.
    pub exec: ExecOptions,
    /// The targets, shared across the whole batch.
    pub targets: Arc<Vec<TestTarget>>,
}

impl Job for KernelJob {
    type Output = Vec<Verdict>;

    fn run(self) -> Vec<Verdict> {
        let gen_opts = GeneratorOptions {
            mode: self.mode,
            seed: self.seed,
            ..self.generator
        };
        let program = generate(&gen_opts);
        let outcomes = run_on_targets(&program, &self.targets, &self.exec);
        classify(&outcomes)
    }
}

/// Runs a CLsmith campaign for one mode against the given configurations
/// (both optimisation levels), reproducing one row block of Table 4.
///
/// Parallelised over the default scheduler; see [`run_mode_campaign_with`].
pub fn run_mode_campaign(
    mode: GenMode,
    configs: &[Configuration],
    options: &CampaignOptions,
) -> CampaignResult {
    run_mode_campaign_with(&Scheduler::from_env(), mode, configs, options)
}

/// [`run_mode_campaign`] on an explicit scheduler.
///
/// Every kernel is an independent [`KernelJob`] seeded from
/// `(options.seed_offset, kernel index)`, and per-kernel verdict shards are
/// folded into [`TargetStats`] in job-index order, so the result is
/// bit-identical at any worker count.
pub fn run_mode_campaign_with(
    scheduler: &Scheduler,
    mode: GenMode,
    configs: &[Configuration],
    options: &CampaignOptions,
) -> CampaignResult {
    let targets = Arc::new(targets_for(configs));
    let jobs: Vec<KernelJob> = (0..options.kernels)
        .map(|i| KernelJob {
            mode,
            seed: job_seed(options.seed_offset, i as u64),
            generator: options.generator.clone(),
            exec: options.exec.clone(),
            targets: Arc::clone(&targets),
        })
        .collect();
    let mut stats = vec![TargetStats::default(); targets.len()];
    for verdicts in scheduler.run_all(jobs) {
        for (stat, verdict) in stats.iter_mut().zip(verdicts) {
            stat.record(verdict);
        }
    }
    let targets = Arc::try_unwrap(targets).unwrap_or_else(|shared| (*shared).clone());
    CampaignResult {
        mode,
        kernels: options.kernels,
        targets,
        stats,
    }
}

/// Outcome of the §7.1 initial classification for one configuration.
#[derive(Debug, Clone)]
pub struct ReliabilityRow {
    /// The configuration.
    pub config: Configuration,
    /// Failure fraction over the initial kernel set (both optimisation
    /// levels pooled, as in §7.1).
    pub failure_fraction: f64,
    /// Whether the configuration lies above the reliability threshold.
    pub above_threshold: bool,
}

/// The §7.1 reliability threshold: at most 25 % of the initial tests may be
/// build failures, runtime crashes or wrong-code results.
pub const RELIABILITY_THRESHOLD: f64 = 0.25;

/// Classifies every configuration against the reliability threshold using
/// `kernels_per_mode` kernels from each of the six modes (the paper uses 100
/// per mode, i.e. 600 in total).
///
/// Parallelised over the default scheduler; see
/// [`classify_configurations_with`].
pub fn classify_configurations(
    configs: &[Configuration],
    kernels_per_mode: usize,
    options: &CampaignOptions,
) -> Vec<ReliabilityRow> {
    classify_configurations_with(&Scheduler::from_env(), configs, kernels_per_mode, options)
}

/// [`classify_configurations`] on an explicit scheduler.
///
/// All six modes' kernel jobs are submitted as **one** scheduler batch
/// (mode-major job order), so the pool drains a single queue instead of
/// barriering five times between per-mode campaigns.  Each job keeps the
/// exact seed it had under the historical per-mode submission
/// (`job_seed(seed_offset + mode_index * 100_000, kernel_index)`), and
/// verdicts are folded in job-index — i.e. mode — order, so the pooled
/// per-configuration tallies are bit-identical to the barriered form at any
/// worker count.
pub fn classify_configurations_with(
    scheduler: &Scheduler,
    configs: &[Configuration],
    kernels_per_mode: usize,
    options: &CampaignOptions,
) -> Vec<ReliabilityRow> {
    let targets = Arc::new(targets_for(configs));
    let mut jobs = Vec::with_capacity(GenMode::ALL.len() * kernels_per_mode);
    for (mode_index, mode) in GenMode::ALL.iter().enumerate() {
        let seed_offset = options.seed_offset + (mode_index as u64) * 100_000;
        for i in 0..kernels_per_mode {
            jobs.push(KernelJob {
                mode: *mode,
                seed: job_seed(seed_offset, i as u64),
                generator: options.generator.clone(),
                exec: options.exec.clone(),
                targets: Arc::clone(&targets),
            });
        }
    }
    // Pool the two optimisation levels of each configuration: target
    // column 2k is configuration k at `-`, column 2k+1 at `+`
    // (`targets_for` enumerates both levels per configuration in order).
    let mut per_config = vec![TargetStats::default(); configs.len()];
    for verdicts in scheduler.run_all(jobs) {
        for (column, verdict) in verdicts.into_iter().enumerate() {
            per_config[column / OptLevel::BOTH.len()].record(verdict);
        }
    }
    configs
        .iter()
        .zip(per_config)
        .map(|(config, stats)| {
            let failure_fraction = stats.failure_fraction();
            // The paper additionally demotes the Xeon Phi (configuration 18)
            // because of its prohibitively slow compilation; timeouts caused
            // by compile hangs are counted against the threshold here so the
            // same judgement falls out of the data.
            let hang_fraction = stats.timeouts as f64 / stats.total().max(1) as f64;
            let above_threshold =
                failure_fraction <= RELIABILITY_THRESHOLD && hang_fraction <= RELIABILITY_THRESHOLD;
            ReliabilityRow {
                config: config.clone(),
                failure_fraction,
                above_threshold,
            }
        })
        .collect()
}

/// Runs one kernel across the above-threshold targets and returns both raw
/// outcomes and verdicts (useful to examples and tests).
pub fn quick_differential(
    program: &clc::Program,
) -> (Vec<TestTarget>, Vec<TestOutcome>, Vec<Verdict>) {
    let configs = opencl_sim::above_threshold_configurations();
    let targets = targets_for(&configs);
    let outcomes = run_on_targets(program, &targets, &ExecOptions::default());
    let verdicts = classify(&outcomes);
    (targets, outcomes, verdicts)
}

/// Returns `OptLevel::BOTH` targets for a single configuration (used by the
/// EMI campaign, which does not compare across configurations).
pub fn single_config_targets(config: &Configuration) -> Vec<TestTarget> {
    OptLevel::BOTH
        .iter()
        .map(|opt| TestTarget::new(config.clone(), *opt))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate_and_derive_percentages() {
        let mut s = TargetStats::default();
        for v in [
            Verdict::Ok,
            Verdict::Ok,
            Verdict::WrongCode,
            Verdict::Crash,
            Verdict::Timeout,
        ] {
            s.record(v);
        }
        assert_eq!(s.total(), 5);
        assert!((s.wrong_code_percentage() - 100.0 / 3.0).abs() < 1e-9);
        assert!((s.failure_fraction() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn small_campaign_runs_and_finds_wrong_code_somewhere() {
        let configs = vec![
            opencl_sim::configuration(1),
            opencl_sim::configuration(3),
            opencl_sim::configuration(9),
            opencl_sim::configuration(19),
        ];
        let options = CampaignOptions {
            kernels: 6,
            generator: GeneratorOptions {
                min_threads: 16,
                max_threads: 48,
                ..GeneratorOptions::default()
            },
            ..CampaignOptions::default()
        };
        let result = run_mode_campaign(GenMode::Basic, &configs, &options);
        assert_eq!(result.stats.len(), 8);
        assert!(result.stats.iter().all(|s| s.total() == 6));
        assert!(result.stats_for("9+").is_some());
        assert!(result.stats_for("99+").is_none());
    }

    #[test]
    fn classification_separates_reliable_from_unreliable_configs() {
        // Use a tiny kernel budget: the rates are strong enough that the
        // Altera FPGA lands below the threshold while NVIDIA stays above.
        let configs = vec![opencl_sim::configuration(1), opencl_sim::configuration(21)];
        let options = CampaignOptions {
            kernels: 0, // overridden by kernels_per_mode argument
            generator: GeneratorOptions {
                min_threads: 16,
                max_threads: 48,
                ..GeneratorOptions::default()
            },
            ..CampaignOptions::default()
        };
        let rows = classify_configurations(&configs, 3, &options);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[0].above_threshold,
            "NVIDIA should be above the threshold"
        );
        assert!(
            !rows[1].above_threshold,
            "the Altera FPGA should fall below the threshold"
        );
    }
}
