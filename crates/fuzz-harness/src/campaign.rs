//! Campaign drivers: the initial reliability classification (Table 1, §7.1)
//! and the per-mode CLsmith campaigns (Table 4, §7.3).

use crate::differential::{classify, run_on_targets, targets_for, TestTarget, Verdict};
use crate::exec::{job_seed, PipelineMetrics, Scheduler, StagedJob};
use crate::journal::{checksum, JournalError};
use crate::shard::{
    lease_header, parse_fields, refold_journals, run_range_fold, run_sharded, CheckpointPolicy,
    FoldRun, JournalOptions, JournalPayload, Mergeable, RefoldSummary, ShardMetrics, ShardSelect,
    ShardSpec,
};
use clsmith::{generate, GenMode, GeneratorOptions};
use opencl_sim::{Configuration, ExecOptions, OptLevel, TestOutcome};
use std::ops::Range;
use std::path::PathBuf;
use std::sync::Arc;

/// Per-target tallies for a batch of kernels (one cell block of Table 4).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TargetStats {
    /// Wrong-code results (`w`).
    pub wrong: usize,
    /// Build failures (`bf`).
    pub build_failures: usize,
    /// Runtime crashes (`c`).
    pub crashes: usize,
    /// Timeouts (`to`).
    pub timeouts: usize,
    /// Results that agreed with the majority (`✓`).
    pub ok: usize,
    /// Kernels skipped by the static pre-filter, never executed (`sk`).
    pub skipped: usize,
}

impl TargetStats {
    /// Records one verdict.
    pub fn record(&mut self, verdict: Verdict) {
        match verdict {
            Verdict::Ok => self.ok += 1,
            Verdict::WrongCode => self.wrong += 1,
            Verdict::BuildFailure => self.build_failures += 1,
            Verdict::Crash => self.crashes += 1,
            Verdict::Timeout => self.timeouts += 1,
            Verdict::Skipped => self.skipped += 1,
        }
    }

    /// Total number of kernels recorded (including statically skipped ones).
    pub fn total(&self) -> usize {
        self.wrong + self.build_failures + self.crashes + self.timeouts + self.ok + self.skipped
    }

    /// The paper's *wrong code percentage* `w%`: wrong-code results as a
    /// percentage of computed (non-{bf, c, to}) results.
    pub fn wrong_code_percentage(&self) -> f64 {
        let computed = self.wrong + self.ok;
        if computed == 0 {
            0.0
        } else {
            100.0 * self.wrong as f64 / computed as f64
        }
    }

    /// Fraction of kernels that failed (build failure, crash or wrong code) —
    /// the quantity the §7.1 reliability threshold is defined over.
    /// Statically skipped kernels never ran, so they are excluded.
    pub fn failure_fraction(&self) -> f64 {
        let total = self.total() - self.skipped;
        if total == 0 {
            0.0
        } else {
            (self.wrong + self.build_failures + self.crashes) as f64 / total as f64
        }
    }
}

impl TargetStats {
    /// Serializes to the journal's comma-separated count form
    /// (`w,bf,c,to,ok,sk`).
    pub(crate) fn to_token(&self) -> String {
        format!(
            "{},{},{},{},{},{}",
            self.wrong, self.build_failures, self.crashes, self.timeouts, self.ok, self.skipped
        )
    }

    /// Parses a count token.  Accepts the legacy five-count form (journals
    /// written before the static pre-filter existed) with `skipped = 0`.
    pub(crate) fn from_token(token: &str) -> Result<TargetStats, JournalError> {
        let fields = parse_fields::<usize>(token, ',', "target stats")?;
        if fields.len() != 5 && fields.len() != 6 {
            return Err(JournalError::Format(format!(
                "expected 5 or 6 target-stat counts, got {token:?}"
            )));
        }
        Ok(TargetStats {
            wrong: fields[0],
            build_failures: fields[1],
            crashes: fields[2],
            timeouts: fields[3],
            ok: fields[4],
            skipped: fields.get(5).copied().unwrap_or(0),
        })
    }

    fn absorb(&mut self, other: &TargetStats) {
        self.wrong += other.wrong;
        self.build_failures += other.build_failures;
        self.crashes += other.crashes;
        self.timeouts += other.timeouts;
        self.ok += other.ok;
        self.skipped += other.skipped;
    }
}

/// Serializes a row of per-target stats as `;`-joined count tokens (the
/// shared backbone of the [`Mergeable`] campaign aggregates).
pub(crate) fn stats_row_token(stats: &[TargetStats]) -> String {
    if stats.is_empty() {
        return "-".to_string();
    }
    stats
        .iter()
        .map(TargetStats::to_token)
        .collect::<Vec<_>>()
        .join(";")
}

pub(crate) fn stats_row_from_token(token: &str) -> Result<Vec<TargetStats>, JournalError> {
    if token == "-" {
        return Ok(Vec::new());
    }
    token.split(';').map(TargetStats::from_token).collect()
}

pub(crate) fn merge_stats_rows(into: &mut [TargetStats], from: &[TargetStats]) {
    assert_eq!(
        into.len(),
        from.len(),
        "cannot merge tallies with different target counts"
    );
    for (a, b) in into.iter_mut().zip(from) {
        a.absorb(b);
    }
}

/// The aggregation state of one mode's campaign: per-target verdict tallies,
/// folded from per-kernel verdict shards and mergeable across campaign
/// shards (counts sum elementwise, so the merge is associative and
/// commutative — any shard grouping folds to the same state).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModeTally {
    /// Tallies per target, in target order.
    pub per_target: Vec<TargetStats>,
}

impl ModeTally {
    /// An empty tally over `targets` columns.
    pub fn new(targets: usize) -> ModeTally {
        ModeTally {
            per_target: vec![TargetStats::default(); targets],
        }
    }

    /// Folds one kernel's verdict shard in.
    pub fn record(&mut self, verdicts: &[Verdict]) {
        assert_eq!(verdicts.len(), self.per_target.len());
        for (stat, verdict) in self.per_target.iter_mut().zip(verdicts) {
            stat.record(*verdict);
        }
    }

    /// Number of kernels folded in (every kernel contributes one verdict to
    /// every target).
    pub fn kernels(&self) -> usize {
        self.per_target.first().map_or(0, TargetStats::total)
    }
}

impl Mergeable for ModeTally {
    fn merge(&mut self, other: ModeTally) {
        merge_stats_rows(&mut self.per_target, &other.per_target);
    }

    fn serialize(&self) -> String {
        stats_row_token(&self.per_target)
    }

    fn deserialize(text: &str) -> Result<ModeTally, JournalError> {
        Ok(ModeTally {
            per_target: stats_row_from_token(text)?,
        })
    }
}

/// The aggregation state of a multi-mode campaign (Table 4: all six modes):
/// one [`ModeTally`] per mode, in mode order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MultiModeTally {
    /// One tally per mode, in the order the campaign was submitted.
    pub per_mode: Vec<ModeTally>,
}

impl MultiModeTally {
    /// An empty tally for `modes` modes over `targets` columns each.
    pub fn new(modes: usize, targets: usize) -> MultiModeTally {
        MultiModeTally {
            per_mode: vec![ModeTally::new(targets); modes],
        }
    }
}

impl Mergeable for MultiModeTally {
    fn merge(&mut self, other: MultiModeTally) {
        assert_eq!(
            self.per_mode.len(),
            other.per_mode.len(),
            "cannot merge tallies with different mode counts"
        );
        for (a, b) in self.per_mode.iter_mut().zip(other.per_mode) {
            a.merge(b);
        }
    }

    fn serialize(&self) -> String {
        if self.per_mode.is_empty() {
            return "-".to_string();
        }
        self.per_mode
            .iter()
            .map(Mergeable::serialize)
            .collect::<Vec<_>>()
            .join("|")
    }

    fn deserialize(text: &str) -> Result<MultiModeTally, JournalError> {
        if text == "-" {
            return Ok(MultiModeTally::default());
        }
        Ok(MultiModeTally {
            per_mode: text
                .split('|')
                .map(Mergeable::deserialize)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// Result of a per-mode campaign: one [`TargetStats`] per target, in target
/// order.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The mode the kernels were generated with.
    pub mode: GenMode,
    /// Number of kernels in the batch.
    pub kernels: usize,
    /// The targets, in column order.
    pub targets: Vec<TestTarget>,
    /// Tallies per target.
    pub stats: Vec<TargetStats>,
}

impl PartialEq for CampaignResult {
    /// Semantic equality: same mode, same batch size, same target columns
    /// (by label) and identical tallies.  Used by the scheduler determinism
    /// tests to compare campaigns run at different worker counts.
    fn eq(&self, other: &Self) -> bool {
        self.mode == other.mode
            && self.kernels == other.kernels
            && self.stats == other.stats
            && self.targets.len() == other.targets.len()
            && self
                .targets
                .iter()
                .zip(&other.targets)
                .all(|(a, b)| a.label() == b.label())
    }
}

impl CampaignResult {
    /// Stats for a target by its paper label (e.g. `"12-"`).
    pub fn stats_for(&self, label: &str) -> Option<&TargetStats> {
        self.targets
            .iter()
            .position(|t| t.label() == label)
            .map(|i| &self.stats[i])
    }

    /// Aggregate wrong-code percentage across all targets (the "Total"
    /// column of Table 4).
    pub fn total_wrong_code_percentage(&self) -> f64 {
        let mut wrong = 0usize;
        let mut ok = 0usize;
        for s in &self.stats {
            wrong += s.wrong;
            ok += s.ok;
        }
        if wrong + ok == 0 {
            0.0
        } else {
            100.0 * wrong as f64 / (wrong + ok) as f64
        }
    }
}

/// Options controlling campaign scale.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Kernels per mode.
    pub kernels: usize,
    /// Base generator options (mode and seed are overridden per kernel).
    pub generator: GeneratorOptions,
    /// Execution options (step limit maps to the paper's 60 s timeout).
    pub exec: ExecOptions,
    /// Seed offset so different campaigns use disjoint kernel sets.
    pub seed_offset: u64,
    /// Run the static analyzer on every generated kernel and skip (rather
    /// than execute) kernels it refuses to certify as race-free and
    /// divergence-free.  Skipped kernels land in the `sk` tally column.
    pub prefilter: bool,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            kernels: 30,
            generator: GeneratorOptions::default(),
            exec: ExecOptions::default(),
            seed_offset: 0,
            prefilter: false,
        }
    }
}

/// One kernel's worth of campaign work: generate the kernel from its
/// job-derived seed, run it on every target, vote.  The target list is
/// shared read-only state behind an [`Arc`].
///
/// A [`StagedJob`]: under the scheduler's pipelined mode the three stages
/// below run on whichever worker is free, so one worker can execute kernel
/// *k* while another generates kernel *k+1*.
#[derive(Debug, Clone)]
pub struct KernelJob {
    /// Generation mode.
    pub mode: GenMode,
    /// The per-job seed (`job_seed(campaign_seed, job_index)`).
    pub seed: u64,
    /// Base generator options (mode/seed overridden by the fields above).
    pub generator: GeneratorOptions,
    /// Execution options.
    pub exec: ExecOptions,
    /// Whether to statically pre-filter before executing (see
    /// [`CampaignOptions::prefilter`]).
    pub prefilter: bool,
    /// The targets, shared across the whole batch.
    pub targets: Arc<Vec<TestTarget>>,
}

/// Stage-1 output of a [`KernelJob`]: the generated kernel plus the
/// execution context the later stages need.
#[derive(Debug)]
pub struct GeneratedKernel {
    /// The generated kernel.
    pub program: clc::Program,
    /// The targets, shared across the whole batch.
    pub targets: Arc<Vec<TestTarget>>,
    /// Execution options.
    pub exec: ExecOptions,
    /// Whether to statically pre-filter before executing.
    pub prefilter: bool,
}

/// Stage-2 output of a [`KernelJob`]: per-target outcomes, or a record that
/// the static pre-filter rejected the kernel before launch.
#[derive(Debug)]
pub struct ExecutedKernel {
    /// Per-target outcomes (empty when the kernel was skipped).
    pub outcomes: Vec<TestOutcome>,
    /// `Some(target_count)` when the static pre-filter skipped execution.
    pub skipped_targets: Option<usize>,
}

impl StagedJob for KernelJob {
    type Generated = GeneratedKernel;
    type Executed = ExecutedKernel;
    type Output = Vec<Verdict>;

    fn generate(self) -> GeneratedKernel {
        let gen_opts = GeneratorOptions {
            mode: self.mode,
            seed: self.seed,
            ..self.generator
        };
        GeneratedKernel {
            program: generate(&gen_opts),
            targets: self.targets,
            exec: self.exec,
            prefilter: self.prefilter,
        }
    }

    fn execute(generated: GeneratedKernel) -> ExecutedKernel {
        let session = opencl_sim::Session::new(&generated.program);
        if generated.prefilter && !session.analysis().is_certified() {
            return ExecutedKernel {
                outcomes: Vec::new(),
                skipped_targets: Some(generated.targets.len()),
            };
        }
        ExecutedKernel {
            outcomes: crate::differential::run_on_targets_session(
                &session,
                &generated.targets,
                &generated.exec,
            ),
            skipped_targets: None,
        }
    }

    fn judge(executed: ExecutedKernel) -> Vec<Verdict> {
        match executed.skipped_targets {
            Some(n) => vec![Verdict::Skipped; n],
            None => classify(&executed.outcomes),
        }
    }
}

/// One kernel's journal payload: its per-target verdict row, one letter per
/// target (`k`/`w`/`b`/`c`/`t`).
impl JournalPayload for Vec<Verdict> {
    fn encode(&self) -> String {
        if self.is_empty() {
            return "-".to_string();
        }
        self.iter()
            .map(|v| match v {
                Verdict::Ok => 'k',
                Verdict::WrongCode => 'w',
                Verdict::BuildFailure => 'b',
                Verdict::Crash => 'c',
                Verdict::Timeout => 't',
                Verdict::Skipped => 's',
            })
            .collect()
    }

    fn decode(text: &str) -> Result<Self, JournalError> {
        if text == "-" {
            return Ok(Vec::new());
        }
        text.chars()
            .map(|c| match c {
                'k' => Ok(Verdict::Ok),
                'w' => Ok(Verdict::WrongCode),
                'b' => Ok(Verdict::BuildFailure),
                'c' => Ok(Verdict::Crash),
                't' => Ok(Verdict::Timeout),
                's' => Ok(Verdict::Skipped),
                other => Err(JournalError::Format(format!(
                    "unknown verdict letter {other:?} in {text:?}"
                ))),
            })
            .collect()
    }
}

/// A short fingerprint of the target column set, embedded in campaign
/// descriptors so journals from runs over different configuration lists
/// refuse to merge.
pub(crate) fn target_fingerprint(targets: &[TestTarget]) -> u64 {
    let labels: Vec<String> = targets.iter().map(TestTarget::label).collect();
    checksum(labels.join("\n").as_bytes())
}

/// A mode name as a descriptor token (Table 4 names contain spaces).
fn mode_token(mode: GenMode) -> String {
    mode.name().replace(' ', "_")
}

fn mode_from_token(token: &str) -> Result<GenMode, JournalError> {
    GenMode::ALL
        .into_iter()
        .find(|m| mode_token(*m) == token)
        .ok_or_else(|| JournalError::Format(format!("unknown generation mode token {token:?}")))
}

/// A fingerprint of the base generator options, embedded in campaign
/// descriptors so shards or resumes run at different generation scales
/// (e.g. one with `--paper-scale`, one without) refuse to combine.
/// `GeneratorOptions` is a flat value struct, so its `Debug` form is a
/// stable serialization.
pub(crate) fn generator_fingerprint(generator: &GeneratorOptions) -> u64 {
    checksum(format!("{generator:?}").as_bytes())
}

/// The self-describing campaign descriptor of a (multi-)mode campaign
/// journal: the modes, kernels per mode, and fingerprints of the generator
/// options and target columns.
pub fn mode_campaign_descriptor(
    modes: &[GenMode],
    kernels: usize,
    generator: &GeneratorOptions,
    targets: &[TestTarget],
) -> String {
    let names: Vec<String> = modes.iter().map(|m| mode_token(*m)).collect();
    format!(
        "modes:{}:k{kernels}:gen{:016x}:cfg{:016x}",
        names.join("+"),
        generator_fingerprint(generator),
        target_fingerprint(targets)
    )
}

/// Parses a [`mode_campaign_descriptor`] back into (modes, kernels per
/// mode), validating the target fingerprint against `targets`.  (The
/// generator fingerprint is not re-validated here — a merge has no
/// generator options; journals only merge when their descriptors agree
/// verbatim, which pins it across shards.)
fn parse_mode_campaign_descriptor(
    descriptor: &str,
    targets: &[TestTarget],
) -> Result<(Vec<GenMode>, usize), JournalError> {
    let fields: Vec<&str> = descriptor.split(':').collect();
    let bad = || JournalError::Format(format!("bad mode-campaign descriptor {descriptor:?}"));
    if fields.len() != 5 || fields[0] != "modes" || !fields[3].starts_with("gen") {
        return Err(bad());
    }
    let modes: Vec<GenMode> = fields[1]
        .split('+')
        .map(mode_from_token)
        .collect::<Result<_, _>>()?;
    let kernels: usize = fields[2]
        .strip_prefix('k')
        .ok_or_else(bad)?
        .parse()
        .map_err(|_| bad())?;
    let expected = format!("cfg{:016x}", target_fingerprint(targets));
    if fields[4] != expected {
        return Err(JournalError::Mismatch(format!(
            "journal was recorded over a different target set ({} vs {expected})",
            fields[4]
        )));
    }
    Ok((modes, kernels))
}

/// A sharded (multi-)mode campaign's outcome: per-mode partial results over
/// this shard's slice, the mergeable tally behind them, and resume/journal
/// metrics.
#[derive(Debug)]
pub struct ShardedModeCampaign {
    /// One partial [`CampaignResult`] per submitted mode (tallies cover
    /// only this shard's job slice).
    pub results: Vec<CampaignResult>,
    /// The underlying aggregation state ([`Mergeable`], one tally per
    /// mode) — merge shards' tallies and rebuild results for a full table.
    pub tally: MultiModeTally,
    /// Shard/resume metrics.
    pub metrics: ShardMetrics,
    /// Stage timing/hand-off metrics of the underlying staged run.
    pub pipeline: PipelineMetrics,
}

/// Builds per-mode results from a tally (used by sharded runs and journal
/// merges alike, so both render through the identical path).
fn mode_results_from_tally(
    modes: &[GenMode],
    targets: &[TestTarget],
    tally: &MultiModeTally,
) -> Vec<CampaignResult> {
    modes
        .iter()
        .zip(&tally.per_mode)
        .map(|(mode, mode_tally)| CampaignResult {
            mode: *mode,
            kernels: mode_tally.kernels(),
            targets: targets.to_vec(),
            stats: mode_tally.per_target.clone(),
        })
        .collect()
}

/// Runs one shard of a (multi-)mode campaign (Table 4 submits all six
/// modes as one job space) with an optional resumable journal.
///
/// The job space is mode-major: job `g` is kernel `g % kernels` of mode
/// `g / kernels`, seeded `job_seed(options.seed_offset, g % kernels)` —
/// exactly the seed each kernel had under the historical per-mode
/// campaigns, so sharded, resumed and merged runs reproduce their tallies
/// bit for bit.
pub fn run_modes_campaign_sharded(
    scheduler: &Scheduler,
    modes: &[GenMode],
    configs: &[Configuration],
    options: &CampaignOptions,
    select: ShardSelect,
    journal: Option<&JournalOptions>,
) -> Result<ShardedModeCampaign, JournalError> {
    let targets = Arc::new(targets_for(configs));
    let kernels = options.kernels;
    let descriptor = mode_campaign_descriptor(modes, kernels, &options.generator, &targets);
    let total_jobs = (modes.len() * kernels) as u64;
    let spec = ShardSpec::select(options.seed_offset, total_jobs, select);
    let run = run_sharded::<KernelJob, _>(scheduler, &spec, &descriptor, journal, |g| {
        mode_campaign_job(g, modes, options, &targets)
    })?;
    let mut tally = MultiModeTally::new(modes.len(), targets.len());
    for (g, verdicts) in &run.outputs {
        tally.per_mode[(g / kernels as u64) as usize].record(verdicts);
    }
    Ok(ShardedModeCampaign {
        results: mode_results_from_tally(modes, &targets, &tally),
        tally,
        metrics: run.metrics,
        pipeline: run.pipeline,
    })
}

/// Job `g` of a (multi-)mode campaign's mode-major job space: kernel
/// `g % kernels` of mode `g / kernels`, with the historical per-mode seed
/// derivation (see [`run_modes_campaign_sharded`]).
fn mode_campaign_job(
    g: u64,
    modes: &[GenMode],
    options: &CampaignOptions,
    targets: &Arc<Vec<TestTarget>>,
) -> (u64, KernelJob) {
    let kernels = options.kernels as u64;
    let mode = modes[(g / kernels) as usize];
    let seed = job_seed(options.seed_offset, g % kernels);
    (
        seed,
        KernelJob {
            mode,
            seed,
            generator: options.generator.clone(),
            exec: options.exec.clone(),
            prefilter: options.prefilter,
            targets: Arc::clone(targets),
        },
    )
}

/// One lease's worth of a (multi-)mode campaign, executed by a fleet
/// worker: jobs `[range.start, range.end)` of the same mode-major job
/// space as [`run_modes_campaign_sharded`], run through the fold-based
/// checkpointing executor under a lease journal header.  Seeds, job order
/// and the tally fold are identical to the sharded form, so any partition
/// of the space into leases merges bit-identically.
#[allow(clippy::too_many_arguments)]
pub fn run_modes_campaign_range(
    scheduler: &Scheduler,
    modes: &[GenMode],
    configs: &[Configuration],
    options: &CampaignOptions,
    lease: u32,
    range: Range<u64>,
    journal: Option<&JournalOptions>,
    checkpoint: Option<CheckpointPolicy>,
    stop_before: Option<u64>,
) -> Result<FoldRun<MultiModeTally>, JournalError> {
    let targets = Arc::new(targets_for(configs));
    let kernels = options.kernels;
    let descriptor = mode_campaign_descriptor(modes, kernels, &options.generator, &targets);
    let total_jobs = (modes.len() * kernels) as u64;
    let header = lease_header(&descriptor, options.seed_offset, total_jobs, lease, range);
    let (modes_len, targets_len) = (modes.len(), targets.len());
    run_range_fold::<KernelJob, MultiModeTally, _, _>(
        scheduler,
        &header,
        journal,
        checkpoint,
        stop_before,
        |g| mode_campaign_job(g, modes, options, &targets),
        || MultiModeTally::new(modes_len, targets_len),
        |tally, g, verdicts| {
            tally.per_mode[(g / kernels as u64) as usize].record(&verdicts);
        },
    )
}

/// Merges any subset of a mode campaign's shard journals back into per-mode
/// results — the full Table 4 when the journals cover the whole job space,
/// a partial one otherwise.
pub fn merge_mode_campaign_journals(
    paths: &[PathBuf],
    configs: &[Configuration],
) -> Result<(Vec<CampaignResult>, RefoldSummary), JournalError> {
    let targets = targets_for(configs);
    let first = paths.first().ok_or_else(|| {
        JournalError::Mismatch("no journals to merge (expected at least one path)".into())
    })?;
    let header = crate::journal::load_journal(first)?.header;
    let (modes, kernels) = parse_mode_campaign_descriptor(&header.campaign, &targets)?;
    let (tally, summary) = refold_journals::<Vec<Verdict>, MultiModeTally>(
        paths,
        |campaign| campaign == header.campaign,
        |_| Ok(MultiModeTally::new(modes.len(), targets.len())),
        |tally, g, verdicts| {
            tally.per_mode[(g / kernels as u64) as usize].record(&verdicts);
        },
    )?;
    Ok((mode_results_from_tally(&modes, &targets, &tally), summary))
}

/// Runs a CLsmith campaign for one mode against the given configurations
/// (both optimisation levels), reproducing one row block of Table 4.
///
/// Parallelised over the default scheduler; see [`run_mode_campaign_with`].
pub fn run_mode_campaign(
    mode: GenMode,
    configs: &[Configuration],
    options: &CampaignOptions,
) -> CampaignResult {
    run_mode_campaign_with(&Scheduler::from_env(), mode, configs, options)
}

/// [`run_mode_campaign`] on an explicit scheduler — a thin fold over the
/// shard executor ([`run_modes_campaign_sharded`]) covering the whole job
/// space with no journal.
///
/// Every kernel is an independent [`KernelJob`] seeded from
/// `(options.seed_offset, kernel index)`, and per-kernel verdict shards are
/// folded into [`TargetStats`] in job-index order, so the result is
/// bit-identical at any worker count.
pub fn run_mode_campaign_with(
    scheduler: &Scheduler,
    mode: GenMode,
    configs: &[Configuration],
    options: &CampaignOptions,
) -> CampaignResult {
    let sharded = run_modes_campaign_sharded(
        scheduler,
        &[mode],
        configs,
        options,
        ShardSelect::whole(),
        None,
    )
    .expect("journal-less campaigns cannot fail");
    let mut result = sharded
        .results
        .into_iter()
        .next()
        .expect("one mode was submitted");
    // Historical signature: the result reports the requested batch size
    // even for the degenerate zero-target case.
    result.kernels = options.kernels;
    result
}

/// Outcome of the §7.1 initial classification for one configuration.
#[derive(Debug, Clone)]
pub struct ReliabilityRow {
    /// The configuration.
    pub config: Configuration,
    /// Failure fraction over the initial kernel set (both optimisation
    /// levels pooled, as in §7.1).
    pub failure_fraction: f64,
    /// Whether the configuration lies above the reliability threshold.
    pub above_threshold: bool,
    /// How many results were tallied for this configuration (0 in a
    /// partial table that has not reached it yet — rendered as `–`).
    pub kernels: usize,
}

/// The §7.1 reliability threshold: at most 25 % of the initial tests may be
/// build failures, runtime crashes or wrong-code results.
pub const RELIABILITY_THRESHOLD: f64 = 0.25;

/// Classifies every configuration against the reliability threshold using
/// `kernels_per_mode` kernels from each of the six modes (the paper uses 100
/// per mode, i.e. 600 in total).
///
/// Parallelised over the default scheduler; see
/// [`classify_configurations_with`].
pub fn classify_configurations(
    configs: &[Configuration],
    kernels_per_mode: usize,
    options: &CampaignOptions,
) -> Vec<ReliabilityRow> {
    classify_configurations_with(&Scheduler::from_env(), configs, kernels_per_mode, options)
}

/// [`classify_configurations`] on an explicit scheduler — a thin fold over
/// the shard executor ([`classify_configurations_sharded`]) covering the
/// whole job space with no journal.
///
/// All six modes' kernel jobs are submitted as **one** scheduler batch
/// (mode-major job order), so the pool drains a single queue instead of
/// barriering five times between per-mode campaigns.  Each job keeps the
/// exact seed it had under the historical per-mode submission
/// (`job_seed(seed_offset + mode_index * 100_000, kernel_index)`), and
/// verdicts are folded in job-index — i.e. mode — order, so the pooled
/// per-configuration tallies are bit-identical to the barriered form at any
/// worker count.
pub fn classify_configurations_with(
    scheduler: &Scheduler,
    configs: &[Configuration],
    kernels_per_mode: usize,
    options: &CampaignOptions,
) -> Vec<ReliabilityRow> {
    classify_configurations_sharded(
        scheduler,
        configs,
        kernels_per_mode,
        options,
        ShardSelect::whole(),
        None,
    )
    .expect("journal-less campaigns cannot fail")
    .rows
}

/// The aggregation state of the §7.1 reliability classification: one pooled
/// [`TargetStats`] per configuration (both optimisation levels folded
/// together, as the paper does).  Counts sum elementwise, so shard merges
/// are associative and commutative.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassificationTally {
    /// Pooled tallies per configuration, in configuration order.
    pub per_config: Vec<TargetStats>,
}

impl ClassificationTally {
    /// An empty tally over `configs` configurations.
    pub fn new(configs: usize) -> ClassificationTally {
        ClassificationTally {
            per_config: vec![TargetStats::default(); configs],
        }
    }

    /// Folds one kernel's per-target verdict row in, pooling the two
    /// optimisation levels of each configuration (target column `2k` is
    /// configuration `k` at `-`, column `2k+1` at `+`).
    pub fn record(&mut self, verdicts: &[Verdict]) {
        assert_eq!(verdicts.len(), self.per_config.len() * OptLevel::BOTH.len());
        for (column, verdict) in verdicts.iter().enumerate() {
            self.per_config[column / OptLevel::BOTH.len()].record(*verdict);
        }
    }
}

impl Mergeable for ClassificationTally {
    fn merge(&mut self, other: ClassificationTally) {
        merge_stats_rows(&mut self.per_config, &other.per_config);
    }

    fn serialize(&self) -> String {
        stats_row_token(&self.per_config)
    }

    fn deserialize(text: &str) -> Result<ClassificationTally, JournalError> {
        Ok(ClassificationTally {
            per_config: stats_row_from_token(text)?,
        })
    }
}

/// Derives the §7.1 reliability rows from a classification tally — shared
/// by live runs and journal merges so both render identically.
pub fn reliability_rows(
    configs: &[Configuration],
    tally: &ClassificationTally,
) -> Vec<ReliabilityRow> {
    configs
        .iter()
        .zip(&tally.per_config)
        .map(|(config, stats)| {
            let failure_fraction = stats.failure_fraction();
            // The paper additionally demotes the Xeon Phi (configuration 18)
            // because of its prohibitively slow compilation; timeouts caused
            // by compile hangs are counted against the threshold here so the
            // same judgement falls out of the data.
            let hang_fraction = stats.timeouts as f64 / stats.total().max(1) as f64;
            let above_threshold =
                failure_fraction <= RELIABILITY_THRESHOLD && hang_fraction <= RELIABILITY_THRESHOLD;
            ReliabilityRow {
                config: config.clone(),
                failure_fraction,
                above_threshold,
                kernels: stats.total(),
            }
        })
        .collect()
}

/// The self-describing campaign descriptor of a classification journal.
pub fn classification_descriptor(
    kernels_per_mode: usize,
    generator: &GeneratorOptions,
    targets: &[TestTarget],
) -> String {
    format!(
        "classify:k{kernels_per_mode}:gen{:016x}:cfg{:016x}",
        generator_fingerprint(generator),
        target_fingerprint(targets)
    )
}

fn validate_classification_descriptor(
    descriptor: &str,
    targets: &[TestTarget],
) -> Result<usize, JournalError> {
    let fields: Vec<&str> = descriptor.split(':').collect();
    let bad = || JournalError::Format(format!("bad classification descriptor {descriptor:?}"));
    if fields.len() != 4 || fields[0] != "classify" || !fields[2].starts_with("gen") {
        return Err(bad());
    }
    let kernels: usize = fields[1]
        .strip_prefix('k')
        .ok_or_else(bad)?
        .parse()
        .map_err(|_| bad())?;
    let expected = format!("cfg{:016x}", target_fingerprint(targets));
    if fields[3] != expected {
        return Err(JournalError::Mismatch(format!(
            "journal was recorded over a different configuration set ({} vs {expected})",
            fields[3]
        )));
    }
    Ok(kernels)
}

/// A sharded classification run: partial rows over this shard's slice, the
/// mergeable tally behind them, and resume/journal metrics.
#[derive(Debug)]
pub struct ShardedClassification {
    /// Reliability rows derived from this shard's (partial) tally.
    pub rows: Vec<ReliabilityRow>,
    /// The underlying aggregation state.
    pub tally: ClassificationTally,
    /// Shard/resume metrics.
    pub metrics: ShardMetrics,
    /// Stage timing/hand-off metrics of the underlying staged run.
    pub pipeline: PipelineMetrics,
}

/// Runs one shard of the §7.1 classification with an optional resumable
/// journal.  The job space is mode-major over all six modes
/// (`GenMode::ALL.len() * kernels_per_mode` jobs); seeds keep the
/// historical derivation `job_seed(seed_offset + mode_index * 100_000,
/// kernel_index)`.
pub fn classify_configurations_sharded(
    scheduler: &Scheduler,
    configs: &[Configuration],
    kernels_per_mode: usize,
    options: &CampaignOptions,
    select: ShardSelect,
    journal: Option<&JournalOptions>,
) -> Result<ShardedClassification, JournalError> {
    let targets = Arc::new(targets_for(configs));
    let descriptor = classification_descriptor(kernels_per_mode, &options.generator, &targets);
    let total_jobs = (GenMode::ALL.len() * kernels_per_mode) as u64;
    let spec = ShardSpec::select(options.seed_offset, total_jobs, select);
    let run = run_sharded::<KernelJob, _>(scheduler, &spec, &descriptor, journal, |g| {
        classification_job(g, kernels_per_mode, options, &targets)
    })?;
    let mut tally = ClassificationTally::new(configs.len());
    for (_, verdicts) in &run.outputs {
        tally.record(verdicts);
    }
    Ok(ShardedClassification {
        rows: reliability_rows(configs, &tally),
        tally,
        metrics: run.metrics,
        pipeline: run.pipeline,
    })
}

/// Job `g` of the §7.1 classification's mode-major job space, with the
/// historical seed derivation
/// `job_seed(seed_offset + mode_index * 100_000, kernel_index)`.
fn classification_job(
    g: u64,
    kernels_per_mode: usize,
    options: &CampaignOptions,
    targets: &Arc<Vec<TestTarget>>,
) -> (u64, KernelJob) {
    let mode_index = (g / kernels_per_mode as u64) as usize;
    let seed_offset = options.seed_offset + (mode_index as u64) * 100_000;
    let seed = job_seed(seed_offset, g % kernels_per_mode as u64);
    (
        seed,
        KernelJob {
            mode: GenMode::ALL[mode_index],
            seed,
            generator: options.generator.clone(),
            exec: options.exec.clone(),
            prefilter: options.prefilter,
            targets: Arc::clone(targets),
        },
    )
}

/// One lease's worth of the §7.1 classification, executed by a fleet
/// worker: jobs `[range.start, range.end)` of the same mode-major job space
/// as [`classify_configurations_sharded`], run through the fold-based
/// checkpointing executor under a lease journal header.  Seeds, job order
/// and the tally fold are identical to the sharded form, so any partition
/// of the space into leases merges bit-identically.
#[allow(clippy::too_many_arguments)]
pub fn classify_configurations_range(
    scheduler: &Scheduler,
    configs: &[Configuration],
    kernels_per_mode: usize,
    options: &CampaignOptions,
    lease: u32,
    range: Range<u64>,
    journal: Option<&JournalOptions>,
    checkpoint: Option<CheckpointPolicy>,
    stop_before: Option<u64>,
) -> Result<FoldRun<ClassificationTally>, JournalError> {
    let targets = Arc::new(targets_for(configs));
    let descriptor = classification_descriptor(kernels_per_mode, &options.generator, &targets);
    let total_jobs = (GenMode::ALL.len() * kernels_per_mode) as u64;
    let header = lease_header(&descriptor, options.seed_offset, total_jobs, lease, range);
    let configs_len = configs.len();
    run_range_fold::<KernelJob, ClassificationTally, _, _>(
        scheduler,
        &header,
        journal,
        checkpoint,
        stop_before,
        |g| classification_job(g, kernels_per_mode, options, &targets),
        || ClassificationTally::new(configs_len),
        |tally, _, verdicts| tally.record(&verdicts),
    )
}

/// Merges any subset of a classification campaign's shard journals back
/// into reliability rows.
pub fn merge_classification_journals(
    paths: &[PathBuf],
    configs: &[Configuration],
) -> Result<(Vec<ReliabilityRow>, RefoldSummary), JournalError> {
    let targets = targets_for(configs);
    let (tally, summary) = refold_journals::<Vec<Verdict>, ClassificationTally>(
        paths,
        |campaign| campaign.starts_with("classify:"),
        |header| {
            validate_classification_descriptor(&header.campaign, &targets)?;
            Ok(ClassificationTally::new(configs.len()))
        },
        |tally, _, verdicts| tally.record(&verdicts),
    )?;
    Ok((reliability_rows(configs, &tally), summary))
}

/// Runs one kernel across the above-threshold targets and returns both raw
/// outcomes and verdicts (useful to examples and tests).
pub fn quick_differential(
    program: &clc::Program,
) -> (Vec<TestTarget>, Vec<TestOutcome>, Vec<Verdict>) {
    let configs = opencl_sim::above_threshold_configurations();
    let targets = targets_for(&configs);
    let outcomes = run_on_targets(program, &targets, &ExecOptions::default());
    let verdicts = classify(&outcomes);
    (targets, outcomes, verdicts)
}

/// Returns `OptLevel::BOTH` targets for a single configuration (used by the
/// EMI campaign, which does not compare across configurations).
pub fn single_config_targets(config: &Configuration) -> Vec<TestTarget> {
    OptLevel::BOTH
        .iter()
        .map(|opt| TestTarget::new(config.clone(), *opt))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate_and_derive_percentages() {
        let mut s = TargetStats::default();
        for v in [
            Verdict::Ok,
            Verdict::Ok,
            Verdict::WrongCode,
            Verdict::Crash,
            Verdict::Timeout,
        ] {
            s.record(v);
        }
        assert_eq!(s.total(), 5);
        assert!((s.wrong_code_percentage() - 100.0 / 3.0).abs() < 1e-9);
        assert!((s.failure_fraction() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn small_campaign_runs_and_finds_wrong_code_somewhere() {
        let configs = vec![
            opencl_sim::configuration(1),
            opencl_sim::configuration(3),
            opencl_sim::configuration(9),
            opencl_sim::configuration(19),
        ];
        let options = CampaignOptions {
            kernels: 6,
            generator: GeneratorOptions {
                min_threads: 16,
                max_threads: 48,
                ..GeneratorOptions::default()
            },
            ..CampaignOptions::default()
        };
        let result = run_mode_campaign(GenMode::Basic, &configs, &options);
        assert_eq!(result.stats.len(), 8);
        assert!(result.stats.iter().all(|s| s.total() == 6));
        assert!(result.stats_for("9+").is_some());
        assert!(result.stats_for("99+").is_none());
    }

    #[test]
    fn verdict_rows_and_tallies_round_trip_through_the_journal_forms() {
        let row = vec![
            Verdict::Ok,
            Verdict::WrongCode,
            Verdict::BuildFailure,
            Verdict::Crash,
            Verdict::Timeout,
            Verdict::Skipped,
        ];
        assert_eq!(row.encode(), "kwbcts");
        assert_eq!(Vec::<Verdict>::decode("kwbcts").unwrap(), row);
        assert_eq!(Vec::<Verdict>::decode("-").unwrap(), Vec::new());
        assert!(Vec::<Verdict>::decode("kxz").is_err());

        // TargetStats tokens: the 6-count form round-trips, and the
        // pre-prefilter 5-count form still decodes (skipped = 0).
        let mut stats = TargetStats::default();
        stats.record(Verdict::WrongCode);
        stats.record(Verdict::Skipped);
        stats.record(Verdict::Ok);
        let token = stats.to_token();
        assert_eq!(TargetStats::from_token(&token).unwrap(), stats);
        let legacy = TargetStats::from_token("1,0,0,0,1").unwrap();
        assert_eq!(legacy.skipped, 0);
        assert_eq!(legacy.wrong, 1);

        let mut tally = ModeTally::new(6);
        tally.record(&row);
        tally.record(&row);
        let round = ModeTally::deserialize(&tally.serialize()).unwrap();
        assert_eq!(round, tally);
        assert_eq!(round.kernels(), 2);

        let mut multi = MultiModeTally::new(2, 6);
        multi.per_mode[0].record(&row);
        multi.per_mode[1].record(&row);
        let round = MultiModeTally::deserialize(&multi.serialize()).unwrap();
        assert_eq!(round, multi);
    }

    #[test]
    fn tally_merge_is_associative_and_matches_a_single_fold() {
        let rows: Vec<Vec<Verdict>> = (0..12)
            .map(|i| {
                vec![
                    if i % 3 == 0 {
                        Verdict::WrongCode
                    } else {
                        Verdict::Ok
                    },
                    if i % 4 == 0 {
                        Verdict::Crash
                    } else {
                        Verdict::Timeout
                    },
                ]
            })
            .collect();
        let mut whole = ModeTally::new(2);
        for row in &rows {
            whole.record(row);
        }
        // Fold the same rows in three shards, merge in two groupings.
        let shard = |range: std::ops::Range<usize>| {
            let mut t = ModeTally::new(2);
            for row in &rows[range] {
                t.record(row);
            }
            t
        };
        let (a, b, c) = (shard(0..5), shard(5..8), shard(8..12));
        let mut left = a.clone();
        left.merge(b.clone());
        left.merge(c.clone());
        let mut right = b;
        right.merge(c);
        let mut right_first = a;
        right_first.merge(right);
        assert_eq!(left, whole);
        assert_eq!(right_first, whole);
    }

    #[test]
    fn mode_campaign_descriptor_round_trips_and_pins_the_target_set() {
        let targets = targets_for(&[opencl_sim::configuration(1), opencl_sim::configuration(9)]);
        let generator = GeneratorOptions::default();
        let descriptor = mode_campaign_descriptor(&GenMode::ALL, 20, &generator, &targets);
        let (modes, kernels) = parse_mode_campaign_descriptor(&descriptor, &targets).unwrap();
        assert_eq!(modes, GenMode::ALL.to_vec());
        assert_eq!(kernels, 20);
        // A different target set refuses the descriptor.
        let other = targets_for(&[opencl_sim::configuration(1)]);
        assert!(parse_mode_campaign_descriptor(&descriptor, &other).is_err());
        // Different generator options change the descriptor (so resumes
        // across e.g. --paper-scale runs refuse to combine).
        let paper = GeneratorOptions::paper_scale(GenMode::All, 0);
        assert_ne!(
            descriptor,
            mode_campaign_descriptor(&GenMode::ALL, 20, &paper, &targets)
        );
    }

    #[test]
    fn sharded_mode_campaign_merges_to_the_single_run() {
        let configs = vec![opencl_sim::configuration(1), opencl_sim::configuration(9)];
        let options = CampaignOptions {
            kernels: 7,
            generator: GeneratorOptions {
                min_threads: 16,
                max_threads: 32,
                ..GeneratorOptions::default()
            },
            seed_offset: 0xABCD,
            ..CampaignOptions::default()
        };
        let scheduler = Scheduler::new(2);
        let single = run_mode_campaign_with(&scheduler, GenMode::Basic, &configs, &options);
        let mut merged: Option<MultiModeTally> = None;
        for index in 0..3u32 {
            let shard = run_modes_campaign_sharded(
                &scheduler,
                &[GenMode::Basic],
                &configs,
                &options,
                crate::shard::ShardSelect { index, count: 3 },
                None,
            )
            .unwrap();
            match &mut merged {
                None => merged = Some(shard.tally),
                Some(t) => t.merge(shard.tally),
            }
        }
        let merged = merged.unwrap();
        assert_eq!(merged.per_mode[0].per_target, single.stats);
    }

    #[test]
    fn classification_separates_reliable_from_unreliable_configs() {
        // Use a tiny kernel budget: the rates are strong enough that the
        // Altera FPGA lands below the threshold while NVIDIA stays above.
        let configs = vec![opencl_sim::configuration(1), opencl_sim::configuration(21)];
        let options = CampaignOptions {
            kernels: 0, // overridden by kernels_per_mode argument
            generator: GeneratorOptions {
                min_threads: 16,
                max_threads: 48,
                ..GeneratorOptions::default()
            },
            ..CampaignOptions::default()
        };
        let rows = classify_configurations(&configs, 3, &options);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[0].above_threshold,
            "NVIDIA should be above the threshold"
        );
        assert!(
            !rows[1].above_threshold,
            "the Altera FPGA should fall below the threshold"
        );
    }
}
