//! The shard/merge layer: every campaign driver runs as a set of **shards**
//! over an explicit, serializable job index space, with an optional
//! resumable journal ([`crate::journal`]) and deterministic merge.
//!
//! Three pieces:
//!
//! * [`ShardSpec`] / [`ShardSelect`] — a campaign's job space is
//!   `0..total_jobs`; a spec names one contiguous slice of it (shard `i` of
//!   `n`).  Because every job's seed is a pure function of the campaign
//!   seed and the job *index* (`campaign_seed → splitmix → job_seed`), any
//!   slice is independently computable on any machine.
//! * [`run_sharded`] — the shared shard executor the drivers' `*_with`
//!   forms are thin folds over: it resolves which jobs in the slice still
//!   need to run (skipping journaled ones on `--resume`), executes them on
//!   a [`Scheduler`], streams each completed record to the journal's writer
//!   thread in completion order, and hands back every (index, output) pair
//!   of the slice in job-index order.
//! * [`Mergeable`] + [`refold_journals`] — aggregation states
//!   (`ModeTally`, classification tables, EMI verdicts, benchmark rows)
//!   serialize, deserialize and merge associatively, and any subset of
//!   shard journals refolds into one aggregate for full or partial tables.
//!
//! The invariant the `shard_equivalence` integration test pins: for a fixed
//! campaign seed, *(single process)* ≡ *(N shards merged)* ≡ *(killed at
//! any job boundary, then resumed)* — bit-identical rendered tables.

use std::collections::BTreeMap;
use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::exec::{JobResult, PipelineMetrics, Scheduler, StagedJob};
use crate::journal::{
    compact_journal, load_journal, Checkpoint, JournalError, JournalHeader, JournalRecord,
    JournalWriter, LoadedJournal,
};

/// A shard's slice of a campaign: the campaign seed, the size of the global
/// job index space, and which contiguous slice of it this shard covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// The campaign seed every job seed derives from.
    pub campaign_seed: u64,
    /// Size of the global job index space.
    pub total_jobs: u64,
    /// Index of this shard.
    pub shard_index: u32,
    /// Total number of shards the job space is partitioned into.
    pub shard_count: u32,
}

impl ShardSpec {
    /// The whole job space as a single shard.
    pub fn full(campaign_seed: u64, total_jobs: u64) -> ShardSpec {
        ShardSpec {
            campaign_seed,
            total_jobs,
            shard_index: 0,
            shard_count: 1,
        }
    }

    /// Shard `select.index` of `select.count` over `0..total_jobs`.
    pub fn select(campaign_seed: u64, total_jobs: u64, select: ShardSelect) -> ShardSpec {
        ShardSpec {
            campaign_seed,
            total_jobs,
            shard_index: select.index,
            shard_count: select.count,
        }
    }

    /// The contiguous job-index slice this shard covers.  The partition is
    /// exact: consecutive shards tile `0..total_jobs` without gaps or
    /// overlaps, and sizes differ by at most one job.
    pub fn job_range(&self) -> Range<u64> {
        let total = self.total_jobs as u128;
        let count = self.shard_count.max(1) as u128;
        let index = (self.shard_index as u128).min(count - 1);
        let start = (total * index / count) as u64;
        let end = (total * (index + 1) / count) as u64;
        start..end
    }

    /// Number of jobs in this shard's slice.
    pub fn jobs(&self) -> u64 {
        let range = self.job_range();
        range.end - range.start
    }

    /// The header a journal for this shard carries.
    pub fn header(&self, campaign: &str) -> JournalHeader {
        let range = self.job_range();
        JournalHeader {
            campaign: campaign.to_string(),
            campaign_seed: self.campaign_seed,
            total_jobs: self.total_jobs,
            shard_index: self.shard_index,
            shard_count: self.shard_count,
            range: (range.start, range.end),
        }
    }
}

/// The header a fleet lease journal carries: the shard field is
/// `lease/0` — count `0` is the "not an I-of-N shard" sentinel — and the
/// journal's coverage is the explicit `[start, end)` range of the lease.
pub fn lease_header(
    campaign: &str,
    campaign_seed: u64,
    total_jobs: u64,
    lease: u32,
    range: Range<u64>,
) -> JournalHeader {
    JournalHeader {
        campaign: campaign.to_string(),
        campaign_seed,
        total_jobs,
        shard_index: lease,
        shard_count: 0,
        range: (range.start, range.end),
    }
}

/// Which shard of how many — the `--shard I/N` selector of the table
/// binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSelect {
    /// Shard index, `0 <= index < count`.
    pub index: u32,
    /// Total shard count, at least 1.
    pub count: u32,
}

impl ShardSelect {
    /// The degenerate selector covering the whole job space.
    pub fn whole() -> ShardSelect {
        ShardSelect { index: 0, count: 1 }
    }

    /// Parses `"I/N"` (e.g. `"0/3"`), validating `I < N` and `N >= 1`.
    pub fn parse(text: &str) -> Result<ShardSelect, String> {
        let invalid = || format!("expected --shard I/N with I < N, got {text:?}");
        let (index, count) = text.split_once('/').ok_or_else(invalid)?;
        let index: u32 = index.parse().map_err(|_| invalid())?;
        let count: u32 = count.parse().map_err(|_| invalid())?;
        if count == 0 || index >= count {
            return Err(invalid());
        }
        Ok(ShardSelect { index, count })
    }
}

impl std::fmt::Display for ShardSelect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// An aggregation state that campaign shards fold into: it serializes to a
/// single whitespace-free token, deserializes back, and merges
/// **associatively** (merging per-shard aggregates in any grouping yields
/// the same state as folding every job into one aggregate).
pub trait Mergeable: Sized {
    /// Folds `other` into `self`.
    fn merge(&mut self, other: Self);
    /// Serializes to a single whitespace-free token.
    fn serialize(&self) -> String;
    /// Parses a token produced by [`Mergeable::serialize`].
    fn deserialize(text: &str) -> Result<Self, JournalError>;
}

/// A per-job output that can be journaled: encodes to a single
/// whitespace-free token and decodes back to an identical value, so a
/// resumed campaign folds journaled jobs bit-identically to executed ones.
pub trait JournalPayload: Sized {
    /// Encodes to a single whitespace-free token.
    fn encode(&self) -> String;
    /// Parses a token produced by [`JournalPayload::encode`].
    fn decode(text: &str) -> Result<Self, JournalError>;
}

/// Where (and whether) a sharded run journals its progress.
#[derive(Debug, Clone)]
pub struct JournalOptions {
    /// Journal file path.
    pub path: PathBuf,
    /// Resume: load the journal first, skip its jobs, and append; without
    /// it the journal is created afresh (truncating any existing file).
    pub resume: bool,
}

impl JournalOptions {
    /// A fresh journal at `path`.
    pub fn create(path: impl Into<PathBuf>) -> JournalOptions {
        JournalOptions {
            path: path.into(),
            resume: false,
        }
    }

    /// Resume from (and append to) the journal at `path`.
    pub fn resume(path: impl Into<PathBuf>) -> JournalOptions {
        JournalOptions {
            path: path.into(),
            resume: true,
        }
    }
}

/// What a sharded run did: how much came from the journal, how much ran,
/// and how big the journal grew.  Surfaced in the throughput bench JSON
/// next to the `dedupe_*` axes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Jobs restored from the journal instead of executed.
    pub jobs_resumed: u64,
    /// Jobs executed by this run (after any resume skip).
    pub jobs_replayed: u64,
    /// Final size of the journal file in bytes (0 without a journal).
    pub journal_bytes: u64,
    /// Corrupt tail bytes dropped on resume (a mid-write kill's residue).
    pub dropped_bytes: u64,
    /// Shard count of the spec the run executed under.
    pub shard_count: u32,
}

/// Output of [`run_sharded`]: every (job index, output) pair of the
/// shard's slice in job-index order, plus run metrics.
#[derive(Debug)]
pub struct ShardRun<T> {
    /// (global job index, job output) in ascending index order.
    pub outputs: Vec<(u64, T)>,
    /// Resume/journal metrics.
    pub metrics: ShardMetrics,
    /// What the staged run measured about itself: per-stage busy time in
    /// both scheduler modes, hand-off queue depth in the pipelined mode.
    pub pipeline: PipelineMetrics,
}

/// Validates that a loaded journal belongs to the campaign and shard the
/// caller is about to run.
fn validate_header(
    loaded: &JournalHeader,
    expected: &JournalHeader,
    path: &Path,
) -> Result<(), JournalError> {
    if loaded != expected {
        return Err(JournalError::Mismatch(format!(
            "{} was written by campaign {:?} (seed {:016x}, {} jobs, shard {}/{}), \
             expected {:?} (seed {:016x}, {} jobs, shard {}/{})",
            path.display(),
            loaded.campaign,
            loaded.campaign_seed,
            loaded.total_jobs,
            loaded.shard_index,
            loaded.shard_count,
            expected.campaign,
            expected.campaign_seed,
            expected.total_jobs,
            expected.shard_index,
            expected.shard_count,
        )));
    }
    Ok(())
}

/// The shared shard executor (see the module docs).
///
/// `make_job` maps a global job index to its derived seed and job; it is
/// called once per job the shard still needs to execute.  Jobs are
/// [`StagedJob`]s, so the scheduler's [mode](crate::exec::SchedulerMode)
/// decides whether each runs whole on one worker or as pipelined
/// generate → execute → judge stages — journaling, resume and the caller's
/// fold are oblivious to the choice, because completed jobs stream to the
/// journal writer thread in completion order either way and outputs are
/// returned in job-index order.
///
/// A panicking job is re-raised deterministically (lowest failed index)
/// *after* every completed job of the batch has been journaled — so even a
/// campaign aborted by a poisoned job resumes from everything that
/// finished.
pub fn run_sharded<J, F>(
    scheduler: &Scheduler,
    spec: &ShardSpec,
    campaign: &str,
    journal: Option<&JournalOptions>,
    make_job: F,
) -> Result<ShardRun<J::Output>, JournalError>
where
    J: StagedJob,
    J::Output: JournalPayload,
    F: Fn(u64) -> (u64, J),
{
    let range = spec.job_range();
    let expected_header = spec.header(campaign);

    // Phase 1: restore journaled outputs on resume.
    let mut resumed: BTreeMap<u64, J::Output> = BTreeMap::new();
    let mut dropped_bytes = 0u64;
    let mut resume_from: Option<u64> = None;
    if let Some(options) = journal {
        if options.resume && options.path.exists() {
            let LoadedJournal {
                header,
                records,
                checkpoint,
                valid_bytes,
                dropped_bytes: dropped,
            } = load_journal(&options.path)?;
            validate_header(&header, &expected_header, &options.path)?;
            if checkpoint.is_some() {
                // A checkpoint folds covered jobs into one aggregate; the
                // per-output resume below cannot reconstruct them.  Such
                // journals belong to the fold-based executor.
                return Err(JournalError::Mismatch(format!(
                    "{} carries a checkpoint; resume it with a fold-based \
                     (checkpointing) run, not a per-output shard run",
                    options.path.display()
                )));
            }
            dropped_bytes = dropped;
            resume_from = Some(valid_bytes);
            for record in records {
                if !range.contains(&record.job_index) {
                    return Err(JournalError::Mismatch(format!(
                        "{} contains job {} outside shard range {}..{}",
                        options.path.display(),
                        record.job_index,
                        range.start,
                        range.end
                    )));
                }
                resumed.insert(record.job_index, J::Output::decode(&record.payload)?);
            }
        }
    }

    // Phase 2: build the jobs the shard still needs.
    let mut pending: Vec<(u64, u64, J)> = Vec::new();
    for index in range.clone() {
        if !resumed.contains_key(&index) {
            let (seed, job) = make_job(index);
            pending.push((index, seed, job));
        }
    }

    // Phase 3: execute, streaming completed records to the writer thread.
    let writer = match journal {
        Some(options) => Some(match resume_from {
            Some(valid_bytes) => JournalWriter::append(&options.path, valid_bytes)?,
            None => JournalWriter::create(&options.path, &expected_header)?,
        }),
        None => None,
    };
    let meta: Vec<(u64, u64)> = pending.iter().map(|(i, s, _)| (*i, *s)).collect();
    let jobs: Vec<J> = pending.into_iter().map(|(_, _, job)| job).collect();
    let (results, pipeline) = scheduler.run_staged_metrics(jobs, |batch_index, result| {
        if let (Some(writer), JobResult::Completed(output)) = (&writer, result) {
            let (index, seed) = meta[batch_index];
            writer.record(JournalRecord::new(index, seed, output.encode()));
        }
    });
    let journal_bytes = match writer {
        Some(writer) => writer.finish()?,
        None => 0,
    };

    // Phase 4: re-raise contained panics (after journaling), then merge
    // fresh and resumed outputs in job-index order.
    let fresh = crate::exec::expect_completed(results);
    let jobs_resumed = resumed.len() as u64;
    let jobs_replayed = fresh.len() as u64;
    let mut outputs: BTreeMap<u64, J::Output> = resumed;
    for ((index, _), output) in meta.into_iter().zip(fresh) {
        outputs.insert(index, output);
    }
    Ok(ShardRun {
        outputs: outputs.into_iter().collect(),
        metrics: ShardMetrics {
            jobs_resumed,
            jobs_replayed,
            journal_bytes,
            dropped_bytes,
            shard_count: spec.shard_count,
        },
        pipeline,
    })
}

/// How often a fold-based run emits journal checkpoints: one `K` line per
/// `every` newly folded jobs (plus a final one at the end of the run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Jobs folded between checkpoints (at least 1).
    pub every: u64,
}

impl Default for CheckpointPolicy {
    fn default() -> CheckpointPolicy {
        CheckpointPolicy { every: 32 }
    }
}

/// Output of [`run_range_fold`]: the folded aggregate of the journal's
/// range, plus run metrics.
#[derive(Debug)]
pub struct FoldRun<A> {
    /// Every covered job's contribution folded in ascending index order.
    pub aggregate: A,
    /// Jobs the aggregate covers (resumed + executed).
    pub jobs: u64,
    /// Resume/journal metrics.
    pub metrics: ShardMetrics,
    /// Stage-scheduler self-measurement.
    pub pipeline: PipelineMetrics,
}

/// The fold-based range executor behind checkpointing journals and the
/// fleet's lease workers.
///
/// Unlike [`run_sharded`] it never materializes per-job outputs: completed
/// jobs are folded into a running aggregate as soon as the **contiguous
/// completed prefix** of the range advances past them (a watermark — jobs
/// finish out of order under a parallel scheduler, the fold stays in
/// ascending index order regardless).  With a [`CheckpointPolicy`] the
/// running aggregate is serialized into the journal as a `K` line every
/// `every` folded jobs, and the journal is compacted after the run — resume
/// cost is then O(tail since last checkpoint), not O(run).
///
/// `fold` must agree with the journal payload round-trip: an executed
/// output is folded via `decode(encode(output))`, exactly the value a
/// resumed run would fold, so the two are bit-identical by construction.
/// The aggregate's [`Mergeable::merge`] must be commutative as well as
/// associative (every tally in this codebase is a vector of counters).
///
/// `stop_before` truncates execution to `[range.0, stop_before)` while
/// keeping the journal's declared range intact — the fault-injection layer
/// uses it to abandon a lease at a chosen job index; a later resume of the
/// same journal completes the rest.
#[allow(clippy::too_many_arguments)]
pub fn run_range_fold<J, A, F, G>(
    scheduler: &Scheduler,
    header: &JournalHeader,
    journal: Option<&JournalOptions>,
    checkpoint: Option<CheckpointPolicy>,
    stop_before: Option<u64>,
    make_job: F,
    init: impl FnOnce() -> A,
    mut fold: G,
) -> Result<FoldRun<A>, JournalError>
where
    J: StagedJob,
    J::Output: JournalPayload,
    A: Mergeable,
    F: Fn(u64) -> (u64, J),
    G: FnMut(&mut A, u64, J::Output),
{
    let range = header.range.0..header.range.1;
    let limit = stop_before
        .unwrap_or(range.end)
        .clamp(range.start, range.end);

    // Phase 1: resume — seed the aggregate from the checkpoint, restore the
    // uncovered records, and advance the watermark over both.
    let mut aggregate = init();
    let mut watermark = range.start;
    let mut staged: BTreeMap<u64, J::Output> = BTreeMap::new();
    let mut jobs_resumed = 0u64;
    let mut dropped_bytes = 0u64;
    let mut resume_from: Option<u64> = None;
    if let Some(options) = journal {
        if options.resume && options.path.exists() {
            let loaded = load_journal(&options.path)?;
            validate_header(&loaded.header, header, &options.path)?;
            dropped_bytes = loaded.dropped_bytes;
            resume_from = Some(loaded.valid_bytes);
            if let Some(cp) = &loaded.checkpoint {
                aggregate.merge(A::deserialize(&cp.aggregate)?);
                watermark = cp.upto;
                jobs_resumed += cp.jobs;
            }
            for record in loaded.records {
                if !range.contains(&record.job_index) {
                    return Err(JournalError::Mismatch(format!(
                        "{} contains job {} outside range {}..{}",
                        options.path.display(),
                        record.job_index,
                        range.start,
                        range.end
                    )));
                }
                staged.insert(record.job_index, J::Output::decode(&record.payload)?);
                jobs_resumed += 1;
            }
            while let Some(output) = staged.remove(&watermark) {
                fold(&mut aggregate, watermark, output);
                watermark += 1;
            }
        }
    }

    // Phase 2: the jobs still missing below the execution limit.
    let mut pending: Vec<(u64, u64, J)> = Vec::new();
    for index in watermark..limit {
        if !staged.contains_key(&index) {
            let (seed, job) = make_job(index);
            pending.push((index, seed, job));
        }
    }

    // Phase 3: execute, folding at the watermark and checkpointing as the
    // contiguous completed prefix grows.
    let writer = match journal {
        Some(options) => Some(match resume_from {
            Some(valid_bytes) => JournalWriter::append(&options.path, valid_bytes)?,
            None => JournalWriter::create(&options.path, header)?,
        }),
        None => None,
    };
    let meta: Vec<(u64, u64)> = pending.iter().map(|(i, s, _)| (*i, *s)).collect();
    let jobs: Vec<J> = pending.into_iter().map(|(_, _, job)| job).collect();
    let jobs_replayed = jobs.len() as u64;
    let mut checkpointed_upto = watermark;
    let mut since_checkpoint = 0u64;
    let mut fold_error: Option<JournalError> = None;
    let (results, pipeline) = scheduler.run_staged_metrics(jobs, |batch_index, result| {
        let JobResult::Completed(output) = result else {
            return;
        };
        if fold_error.is_some() {
            return;
        }
        let (index, seed) = meta[batch_index];
        let token = output.encode();
        if let Some(writer) = &writer {
            writer.record(JournalRecord::new(index, seed, token.clone()));
        }
        // Fold through the journal token round-trip so an executed job
        // contributes bit-identically to a resumed one.
        match J::Output::decode(&token) {
            Ok(decoded) => {
                staged.insert(index, decoded);
            }
            Err(e) => {
                fold_error = Some(e);
                return;
            }
        }
        while let Some(next) = staged.remove(&watermark) {
            fold(&mut aggregate, watermark, next);
            watermark += 1;
            since_checkpoint += 1;
        }
        if let (Some(policy), Some(writer)) = (&checkpoint, &writer) {
            if since_checkpoint >= policy.every.max(1) && watermark > checkpointed_upto {
                writer.checkpoint(Checkpoint {
                    upto: watermark,
                    jobs: watermark - range.start,
                    aggregate: aggregate.serialize(),
                });
                checkpointed_upto = watermark;
                since_checkpoint = 0;
            }
        }
    });
    if let (Some(_), Some(writer)) = (&checkpoint, &writer) {
        // Final checkpoint: everything folded so far, so the compacted
        // journal is header + one K line (+ any out-of-order residue).
        if watermark > checkpointed_upto {
            writer.checkpoint(Checkpoint {
                upto: watermark,
                jobs: watermark - range.start,
                aggregate: aggregate.serialize(),
            });
        }
    }
    let mut journal_bytes = match writer {
        Some(writer) => writer.finish()?,
        None => 0,
    };
    if let (Some(_), Some(options)) = (&checkpoint, journal) {
        let (_, after) = compact_journal(&options.path)?;
        journal_bytes = after;
    }

    // Phase 4: re-raise contained panics, then surface any fold error.
    crate::exec::expect_completed(results);
    if let Some(error) = fold_error {
        return Err(error);
    }
    debug_assert!(watermark >= limit, "every job below the limit must fold");
    Ok(FoldRun {
        aggregate,
        jobs: jobs_resumed + jobs_replayed,
        metrics: ShardMetrics {
            jobs_resumed,
            jobs_replayed,
            journal_bytes,
            dropped_bytes,
            shard_count: header.shard_count,
        },
        pipeline,
    })
}

/// What a refold over a set of journals covered.
#[derive(Debug, Clone)]
pub struct RefoldSummary {
    /// The campaign header shared by every journal (shard fields taken from
    /// the first journal; they differ across shards by design).
    pub campaign: String,
    /// The campaign seed.
    pub campaign_seed: u64,
    /// Size of the global job space.
    pub total_jobs: u64,
    /// Distinct jobs folded.
    pub jobs_folded: u64,
    /// Whether every job of the space was present (a complete table).
    pub complete: bool,
    /// Total bytes across the journal files.
    pub journal_bytes: u64,
    /// Number of journal files merged.
    pub journals: usize,
}

/// Refolds any subset of a campaign's shard (or fleet lease) journals into
/// one aggregate: loads every journal, validates they belong to the same
/// campaign, sorts all records by job index (duplicate indices must carry
/// identical digests — overlapping shards are fine, conflicting ones are
/// corrupt), and folds each payload in index order.
///
/// A journal carrying a checkpoint contributes its pre-folded aggregate
/// directly (merged via [`Mergeable`]); its segment `[range.0, upto)` must
/// not overlap any other journal's checkpoint segment (there is no per-job
/// digest left to arbitrate a conflict), and plain records duplicated under
/// a checkpoint segment are dropped as redundant.
///
/// `expect_campaign` filters which campaigns the caller can consume (e.g. a
/// `table4` merge rejects `emi:*` journals); `init` builds the empty
/// aggregate from the validated header.
pub fn refold_journals<P, T>(
    paths: &[PathBuf],
    expect_campaign: impl Fn(&str) -> bool,
    init: impl FnOnce(&JournalHeader) -> Result<T, JournalError>,
    fold: impl FnMut(&mut T, u64, P),
) -> Result<(T, RefoldSummary), JournalError>
where
    P: JournalPayload,
    T: Mergeable,
{
    let mut merge = |aggregate: &mut T, token: &str| -> Result<(), JournalError> {
        aggregate.merge(T::deserialize(token)?);
        Ok(())
    };
    refold_journals_with(paths, expect_campaign, init, fold, Some(&mut merge))
}

/// [`refold_journals`] for aggregates that are *not* [`Mergeable`] (e.g. a
/// flat cell grid): folds plain records only, and rejects any journal
/// carrying a checkpoint (whose pre-folded aggregate it could not consume).
pub fn refold_journal_records<P, T>(
    paths: &[PathBuf],
    expect_campaign: impl Fn(&str) -> bool,
    init: impl FnOnce(&JournalHeader) -> Result<T, JournalError>,
    fold: impl FnMut(&mut T, u64, P),
) -> Result<(T, RefoldSummary), JournalError>
where
    P: JournalPayload,
{
    refold_journals_with(paths, expect_campaign, init, fold, None)
}

/// Folds a serialized checkpoint aggregate into the accumulator; `None`
/// means the caller cannot consume checkpoints at all.
type CheckpointMerger<'a, T> = Option<&'a mut dyn FnMut(&mut T, &str) -> Result<(), JournalError>>;

fn refold_journals_with<P, T>(
    paths: &[PathBuf],
    expect_campaign: impl Fn(&str) -> bool,
    init: impl FnOnce(&JournalHeader) -> Result<T, JournalError>,
    mut fold: impl FnMut(&mut T, u64, P),
    mut merge_checkpoint: CheckpointMerger<'_, T>,
) -> Result<(T, RefoldSummary), JournalError>
where
    P: JournalPayload,
{
    if paths.is_empty() {
        return Err(JournalError::Mismatch(
            "no journals to merge (expected at least one path)".into(),
        ));
    }
    let mut reference: Option<JournalHeader> = None;
    let mut records: BTreeMap<u64, JournalRecord> = BTreeMap::new();
    // Checkpoint segments as (start, upto, aggregate token, source path).
    let mut segments: Vec<(u64, u64, String, PathBuf)> = Vec::new();
    let mut journal_bytes = 0u64;
    for path in paths {
        let loaded = load_journal(path)?;
        if !expect_campaign(&loaded.header.campaign) {
            return Err(JournalError::Mismatch(format!(
                "{} holds campaign {:?}, which this merge cannot consume",
                path.display(),
                loaded.header.campaign
            )));
        }
        match &reference {
            None => reference = Some(loaded.header.clone()),
            Some(first) => {
                if loaded.header.campaign != first.campaign
                    || loaded.header.campaign_seed != first.campaign_seed
                    || loaded.header.total_jobs != first.total_jobs
                {
                    return Err(JournalError::Mismatch(format!(
                        "{} belongs to campaign {:?} seed {:016x} ({} jobs); \
                         the first journal holds {:?} seed {:016x} ({} jobs)",
                        path.display(),
                        loaded.header.campaign,
                        loaded.header.campaign_seed,
                        loaded.header.total_jobs,
                        first.campaign,
                        first.campaign_seed,
                        first.total_jobs,
                    )));
                }
            }
        }
        journal_bytes += loaded.valid_bytes;
        if let Some(cp) = &loaded.checkpoint {
            if merge_checkpoint.is_none() {
                return Err(JournalError::Mismatch(format!(
                    "{} carries a checkpoint, which this merge cannot consume \
                     (its aggregate is not mergeable)",
                    path.display()
                )));
            }
            if cp.jobs > 0 {
                segments.push((
                    loaded.header.range.0,
                    cp.upto,
                    cp.aggregate.clone(),
                    path.clone(),
                ));
            }
        }
        for record in loaded.records {
            match records.get(&record.job_index) {
                Some(existing) if existing.digest != record.digest => {
                    return Err(JournalError::Mismatch(format!(
                        "job {} appears with conflicting digests across journals \
                         ({:016x} vs {:016x})",
                        record.job_index, existing.digest, record.digest
                    )));
                }
                Some(_) => {}
                None => {
                    records.insert(record.job_index, record);
                }
            }
        }
    }
    let header = reference.expect("at least one journal was loaded");
    segments.sort_by_key(|(start, _, _, _)| *start);
    for pair in segments.windows(2) {
        let (_, upto, _, prev_path) = &pair[0];
        let (start, _, _, next_path) = &pair[1];
        if upto > start {
            return Err(JournalError::Mismatch(format!(
                "checkpoint segments overlap: {} covers through job {} but {} \
                 starts at job {}",
                prev_path.display(),
                upto,
                next_path.display(),
                start
            )));
        }
    }
    // Records a checkpoint already folded are redundant duplicates.
    records.retain(|index, _| {
        !segments
            .iter()
            .any(|(start, upto, _, _)| (*start..*upto).contains(index))
    });
    let mut aggregate = init(&header)?;
    let mut jobs_folded = 0u64;
    for (start, upto, token, _) in &segments {
        let merge = merge_checkpoint
            .as_mut()
            .expect("checkpointed journals were rejected above");
        merge(&mut aggregate, token)?;
        jobs_folded += upto - start;
    }
    jobs_folded += records.len() as u64;
    for (index, record) in records {
        fold(&mut aggregate, index, P::decode(&record.payload)?);
    }
    Ok((
        aggregate,
        RefoldSummary {
            complete: jobs_folded == header.total_jobs,
            campaign: header.campaign,
            campaign_seed: header.campaign_seed,
            total_jobs: header.total_jobs,
            jobs_folded,
            journal_bytes,
            journals: paths.len(),
        },
    ))
}

/// Splits `value` on `sep` and parses each piece — the small-deserializer
/// helper every [`Mergeable`]/[`JournalPayload`] implementation in the
/// driver modules shares.
pub(crate) fn parse_fields<T: std::str::FromStr>(
    text: &str,
    sep: char,
    what: &str,
) -> Result<Vec<T>, JournalError> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(sep)
        .map(|piece| {
            piece.parse::<T>().map_err(|_| {
                JournalError::Format(format!("bad {what} field {piece:?} in {text:?}"))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{SchedulerMode, StagedJob};

    #[test]
    fn shard_ranges_tile_the_job_space_exactly() {
        for total in [0u64, 1, 2, 7, 97, 1000] {
            for count in [1u32, 2, 3, 5, 8, 13] {
                let mut covered = 0u64;
                let mut next = 0u64;
                for index in 0..count {
                    let spec = ShardSpec {
                        campaign_seed: 0,
                        total_jobs: total,
                        shard_index: index,
                        shard_count: count,
                    };
                    let range = spec.job_range();
                    assert_eq!(range.start, next, "gap/overlap at shard {index}/{count}");
                    next = range.end;
                    covered += spec.jobs();
                    // Balanced partition: sizes differ by at most one.
                    let ideal = total / count as u64;
                    assert!(spec.jobs() == ideal || spec.jobs() == ideal + 1);
                }
                assert_eq!(next, total);
                assert_eq!(covered, total);
            }
        }
    }

    #[test]
    fn shard_select_parses_and_validates() {
        assert_eq!(
            ShardSelect::parse("0/3").unwrap(),
            ShardSelect { index: 0, count: 3 }
        );
        assert_eq!(ShardSelect::parse("2/3").unwrap().to_string(), "2/3");
        for bad in ["3/3", "1/0", "x/2", "1", "", "1/2/3", "-1/2"] {
            assert!(ShardSelect::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    /// A trivial journalable staged job for executor tests.
    #[derive(Debug)]
    struct Double(u64);

    impl StagedJob for Double {
        type Generated = u64;
        type Executed = u64;
        type Output = u64;
        fn generate(self) -> u64 {
            self.0
        }
        fn execute(generated: u64) -> u64 {
            generated * 2
        }
        fn judge(executed: u64) -> u64 {
            executed
        }
    }

    impl JournalPayload for u64 {
        fn encode(&self) -> String {
            self.to_string()
        }
        fn decode(text: &str) -> Result<Self, JournalError> {
            text.parse()
                .map_err(|_| JournalError::Format(format!("bad u64 payload {text:?}")))
        }
    }

    impl Mergeable for u64 {
        fn merge(&mut self, other: Self) {
            *self += other;
        }
        fn serialize(&self) -> String {
            self.to_string()
        }
        fn deserialize(text: &str) -> Result<Self, JournalError> {
            text.parse()
                .map_err(|_| JournalError::Format(format!("bad u64 aggregate {text:?}")))
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "clfuzz-shard-test-{}-{name}.log",
            std::process::id()
        ))
    }

    fn make_job(index: u64) -> (u64, Double) {
        (1000 + index, Double(index))
    }

    #[test]
    fn sharded_outputs_cover_the_slice_in_index_order() {
        let scheduler = Scheduler::new(4);
        let spec = ShardSpec::select(9, 20, ShardSelect { index: 1, count: 3 });
        let run = run_sharded(&scheduler, &spec, "test:exec", None, make_job).unwrap();
        let range = spec.job_range();
        assert_eq!(run.outputs.len(), spec.jobs() as usize);
        for (offset, (index, output)) in run.outputs.iter().enumerate() {
            assert_eq!(*index, range.start + offset as u64);
            assert_eq!(*output, index * 2);
        }
        assert_eq!(run.metrics.jobs_resumed, 0);
        assert_eq!(run.metrics.jobs_replayed, spec.jobs());
        assert_eq!(run.metrics.shard_count, 3);
    }

    #[test]
    fn pipelined_shard_outputs_and_journals_match_batch_mode() {
        // Journaling and resume must be oblivious to the scheduler mode:
        // same outputs, same journal records, at several worker counts.
        let spec = ShardSpec::full(11, 16);
        let batch_path = temp_path("mode-batch");
        let batch = run_sharded::<Double, _>(
            &Scheduler::new(2),
            &spec,
            "test:mode",
            Some(&JournalOptions::create(&batch_path)),
            make_job,
        )
        .unwrap();
        for threads in [1usize, 3, 8] {
            let path = temp_path(&format!("mode-pipe-{threads}"));
            let pipelined = run_sharded::<Double, _>(
                &Scheduler::new(threads).with_mode(SchedulerMode::Pipelined),
                &spec,
                "test:mode",
                Some(&JournalOptions::create(&path)),
                make_job,
            )
            .unwrap();
            assert_eq!(pipelined.outputs, batch.outputs, "{threads} workers");
            // Journals hold the same record set (byte order differs only by
            // completion order, which the loader sorts out).
            let a = load_journal(&batch_path).unwrap();
            let b = load_journal(&path).unwrap();
            let key = |r: &JournalRecord| (r.job_index, r.job_seed, r.digest, r.payload.clone());
            let mut ra: Vec<_> = a.records.iter().map(key).collect();
            let mut rb: Vec<_> = b.records.iter().map(key).collect();
            ra.sort();
            rb.sort();
            assert_eq!(ra, rb, "{threads} workers");
            let _ = std::fs::remove_file(&path);
        }
        let _ = std::fs::remove_file(&batch_path);
    }

    #[test]
    fn journal_then_resume_skips_completed_jobs() {
        let path = temp_path("resume");
        let scheduler = Scheduler::new(2);
        let spec = ShardSpec::full(5, 10);
        let first = run_sharded::<Double, _>(
            &scheduler,
            &spec,
            "test:resume",
            Some(&JournalOptions::create(&path)),
            make_job,
        )
        .unwrap();
        assert_eq!(first.metrics.jobs_replayed, 10);
        assert!(first.metrics.journal_bytes > 0);

        // Chop the journal down to its first 4 records plus half of the
        // fifth (a mid-write kill).
        let text = std::fs::read_to_string(&path).unwrap();
        let keep: usize = text
            .lines()
            .take(5) // header + 4 records
            .map(|l| l.len() + 1)
            .sum();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len((keep + 9) as u64)
            .unwrap();

        let resumed = run_sharded::<Double, _>(
            &scheduler,
            &spec,
            "test:resume",
            Some(&JournalOptions::resume(&path)),
            make_job,
        )
        .unwrap();
        assert_eq!(resumed.metrics.jobs_resumed, 4);
        assert_eq!(resumed.metrics.jobs_replayed, 6);
        assert!(resumed.metrics.dropped_bytes > 0);
        assert_eq!(resumed.outputs, first.outputs);

        // The healed journal now covers the full job space.
        let loaded = load_journal(&path).unwrap();
        assert_eq!(loaded.records.len(), 10);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_a_journal_from_another_campaign() {
        let path = temp_path("mismatch");
        let scheduler = Scheduler::sequential();
        let spec = ShardSpec::full(5, 4);
        run_sharded::<Double, _>(
            &scheduler,
            &spec,
            "test:a",
            Some(&JournalOptions::create(&path)),
            make_job,
        )
        .unwrap();
        let err = run_sharded::<Double, _>(
            &scheduler,
            &spec,
            "test:b",
            Some(&JournalOptions::resume(&path)),
            make_job,
        )
        .unwrap_err();
        assert!(matches!(err, JournalError::Mismatch(_)), "{err}");
        // Same campaign but different seed: also rejected.
        let err = run_sharded::<Double, _>(
            &scheduler,
            &ShardSpec::full(6, 4),
            "test:a",
            Some(&JournalOptions::resume(&path)),
            make_job,
        )
        .unwrap_err();
        assert!(matches!(err, JournalError::Mismatch(_)), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn refold_merges_shard_journals_into_one_aggregate() {
        let scheduler = Scheduler::new(3);
        let mut paths = Vec::new();
        for index in 0..3u32 {
            let path = temp_path(&format!("merge-{index}"));
            let spec = ShardSpec::select(7, 11, ShardSelect { index, count: 3 });
            run_sharded::<Double, _>(
                &scheduler,
                &spec,
                "test:merge",
                Some(&JournalOptions::create(&path)),
                make_job,
            )
            .unwrap();
            paths.push(path);
        }
        let (sum, summary) = refold_journals::<u64, u64>(
            &paths,
            |c| c == "test:merge",
            |_| Ok(0u64),
            |acc, _, payload| *acc += payload,
        )
        .unwrap();
        assert_eq!(sum, (0..11u64).map(|i| i * 2).sum::<u64>());
        assert!(summary.complete);
        assert_eq!(summary.jobs_folded, 11);
        assert_eq!(summary.journals, 3);

        // A subset of shards refolds too — partial, not complete.
        let (partial_sum, summary) = refold_journals::<u64, u64>(
            &paths[..2],
            |c| c == "test:merge",
            |_| Ok(0u64),
            |acc, _, payload| *acc += payload,
        )
        .unwrap();
        assert!(!summary.complete);
        assert!(partial_sum < sum);
        for path in &paths {
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn range_fold_checkpoints_compact_and_resume() {
        // A checkpointing fold run over a lease range: the compacted journal
        // must be tiny (header + one K line), an interrupted attempt
        // (stop_before) must resume from the checkpoint, and the final
        // aggregate must equal the plain fold.
        let path = temp_path("rangefold");
        let header = lease_header("test:fold", 5, 40, 2, 10..30);
        let expected: u64 = (10..30u64).map(|i| i * 2).sum();

        // Attempt 1: stop before job 21 (fault-injection style truncation).
        let journal = JournalOptions::create(&path);
        let partial = run_range_fold::<Double, u64, _, _>(
            &Scheduler::new(3),
            &header,
            Some(&journal),
            Some(CheckpointPolicy { every: 4 }),
            Some(21),
            make_job,
            || 0u64,
            |acc, _, out| *acc += out,
        )
        .unwrap();
        assert_eq!(partial.jobs, 11);
        let loaded = load_journal(&path).unwrap();
        let cp = loaded.checkpoint.as_ref().unwrap();
        assert_eq!(cp.upto, 21);
        assert_eq!(cp.jobs, 11);
        assert!(
            loaded.records.is_empty(),
            "compaction folds all records into the final checkpoint"
        );

        // Attempt 2: resume to completion.
        let journal = JournalOptions::resume(&path);
        let run = run_range_fold::<Double, u64, _, _>(
            &Scheduler::new(3),
            &header,
            Some(&journal),
            Some(CheckpointPolicy { every: 4 }),
            None,
            make_job,
            || 0u64,
            |acc, _, out| *acc += out,
        )
        .unwrap();
        assert_eq!(run.aggregate, expected);
        assert_eq!(run.metrics.jobs_resumed, 11);
        assert_eq!(run.metrics.jobs_replayed, 9);
        assert_eq!(run.jobs, 20);

        // The compacted journal refolds (checkpoint consumed, no records).
        let (sum, summary) = refold_journals::<u64, u64>(
            std::slice::from_ref(&path),
            |c| c == "test:fold",
            |_| Ok(0u64),
            |acc, _, p| *acc += p,
        )
        .unwrap();
        assert_eq!(sum, expected);
        assert_eq!(summary.jobs_folded, 20);
        assert!(!summary.complete, "a 20-job lease of a 40-job space");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn refold_mixes_checkpointed_and_plain_journals() {
        // Lease 0 journals [0, 6) with checkpoints; shard 1/2 journals
        // [6, 12) as plain records.  The refold must consume both forms and
        // match the whole-space fold.
        let lease_path = temp_path("mix-lease");
        let shard_path = temp_path("mix-shard");
        let header = lease_header("test:mix", 3, 12, 0, 0..6);
        run_range_fold::<Double, u64, _, _>(
            &Scheduler::sequential(),
            &header,
            Some(&JournalOptions::create(&lease_path)),
            Some(CheckpointPolicy { every: 2 }),
            None,
            make_job,
            || 0u64,
            |acc, _, out| *acc += out,
        )
        .unwrap();
        let spec = ShardSpec::select(3, 12, ShardSelect { index: 1, count: 2 });
        run_sharded::<Double, _>(
            &Scheduler::sequential(),
            &spec,
            "test:mix",
            Some(&JournalOptions::create(&shard_path)),
            make_job,
        )
        .unwrap();
        let (sum, summary) = refold_journals::<u64, u64>(
            &[lease_path.clone(), shard_path.clone()],
            |c| c == "test:mix",
            |_| Ok(0u64),
            |acc, _, p| *acc += p,
        )
        .unwrap();
        assert_eq!(sum, (0..12u64).map(|i| i * 2).sum::<u64>());
        assert_eq!(summary.jobs_folded, 12);
        assert!(summary.complete);
        let _ = std::fs::remove_file(&lease_path);
        let _ = std::fs::remove_file(&shard_path);
    }

    #[test]
    fn refold_rejects_overlapping_checkpoint_segments() {
        // Two checkpointed journals over overlapping ranges cannot be
        // arbitrated (no per-job digests under a checkpoint) — refold must
        // refuse rather than double-count.
        let a = temp_path("overlap-a");
        let b = temp_path("overlap-b");
        for (path, lease, range) in [(&a, 0u32, 0..6u64), (&b, 1, 4..10)] {
            let header = lease_header("test:overlap", 9, 10, lease, range);
            run_range_fold::<Double, u64, _, _>(
                &Scheduler::sequential(),
                &header,
                Some(&JournalOptions::create(path)),
                Some(CheckpointPolicy { every: 2 }),
                None,
                make_job,
                || 0u64,
                |acc, _, out| *acc += out,
            )
            .unwrap();
        }
        let err = refold_journals::<u64, u64>(
            &[a.clone(), b.clone()],
            |_| true,
            |_| Ok(0u64),
            |acc, _, p| *acc += p,
        )
        .unwrap_err();
        assert!(matches!(err, JournalError::Mismatch(_)), "{err}");
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn refold_rejects_foreign_and_mixed_campaigns() {
        let scheduler = Scheduler::sequential();
        let a = temp_path("mixed-a");
        let b = temp_path("mixed-b");
        run_sharded::<Double, _>(
            &scheduler,
            &ShardSpec::full(1, 3),
            "test:one",
            Some(&JournalOptions::create(&a)),
            make_job,
        )
        .unwrap();
        run_sharded::<Double, _>(
            &scheduler,
            &ShardSpec::full(1, 3),
            "test:two",
            Some(&JournalOptions::create(&b)),
            make_job,
        )
        .unwrap();
        let err = refold_journals::<u64, u64>(
            &[a.clone(), b.clone()],
            |_| true,
            |_| Ok(0u64),
            |acc, _, p| *acc += p,
        )
        .unwrap_err();
        assert!(matches!(err, JournalError::Mismatch(_)));
        let err = refold_journals::<u64, u64>(
            std::slice::from_ref(&a),
            |c| c == "test:two",
            |_| Ok(0u64),
            |acc, _, p| *acc += p,
        )
        .unwrap_err();
        assert!(matches!(err, JournalError::Mismatch(_)));
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }
}
