//! # fuzz-harness — differential and EMI testing campaigns
//!
//! Orchestration of the paper's testing campaigns over the simulated OpenCL
//! platform:
//!
//! * [`differential`] — run one kernel across many (configuration,
//!   optimisation level) targets and vote on the results (§3.2); each
//!   kernel's fan-out goes through a per-kernel `opencl_sim::Session`, so
//!   targets that compile the kernel to a bit-identical AST share one
//!   emulator launch;
//! * [`campaign`] — batch CLsmith campaigns per mode (Table 4) and the
//!   initial reliability classification (Table 1, §7.1);
//! * [`emi_campaign`] — CLsmith+EMI campaigns over base programs and their
//!   pruning variants (Table 5, §7.4);
//! * [`benchmark_emi`] — EMI testing of existing kernels such as the
//!   Parboil/Rodinia miniatures (Table 3, §7.2);
//! * [`corpus`] — feedback-guided corpus campaigns: lineages of seeded
//!   mutation chains whose acceptance is driven by the platform's
//!   [`opencl_sim::CoverageMap`], compared against a blind ablation at the
//!   same kernel budget;
//! * [`report`] — plain-text table rendering used by the reproduction
//!   binaries in the `bench` crate;
//! * [`exec`] — the parallel campaign engine every driver above runs on: a
//!   bounded-queue worker pool with per-job deterministic seeding and
//!   index-ordered aggregation, so that for a fixed campaign seed the
//!   rendered tables are bit-identical at any thread count — and, since
//!   every driver job is a [`StagedJob`] (generate → execute → judge), in
//!   either scheduler mode: whole-job batches or the pipelined stage
//!   hand-off ([`SchedulerMode::Pipelined`], `--pipeline`).
//!
//! Every driver comes in two forms: the historical signature (e.g.
//! [`run_mode_campaign`]), which fans out over [`exec::Scheduler::from_env`]
//! (`FUZZ_THREADS` or the machine's available parallelism), and an explicit
//! `*_with(&Scheduler, ...)` form for callers that manage their own worker
//! pool.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod benchmark_emi;
pub mod campaign;
pub mod corpus;
pub mod differential;
pub mod emi_campaign;
pub mod exec;
pub mod faults;
pub mod fleet;
pub mod journal;
pub mod report;
pub mod shard;

pub use benchmark_emi::{
    evaluate_benchmark, evaluate_benchmark_with, BenchmarkBodyJob, BenchmarkCell, BodyOutcomes,
    BodyShard, CellOutcome, CellTally, EmiBenchmark, InjectedVariants,
};
pub use campaign::{
    classification_descriptor, classify_configurations, classify_configurations_range,
    classify_configurations_sharded, classify_configurations_with, merge_classification_journals,
    merge_mode_campaign_journals, mode_campaign_descriptor, quick_differential, reliability_rows,
    run_mode_campaign, run_mode_campaign_with, run_modes_campaign_range,
    run_modes_campaign_sharded, CampaignOptions, CampaignResult, ClassificationTally,
    GeneratedKernel, KernelJob, ModeTally, MultiModeTally, ReliabilityRow, ShardedClassification,
    ShardedModeCampaign, TargetStats, RELIABILITY_THRESHOLD,
};
pub use corpus::{
    corpus_campaign_descriptor, merge_corpus_campaign_journals, run_corpus_campaign,
    run_corpus_campaign_range, run_corpus_campaign_sharded, run_corpus_campaign_with,
    CorpusCampaignResult, CorpusJob, CorpusOptions, CorpusRecord, CorpusStrategy, CorpusTally,
    ShardedCorpusCampaign, StrategyTally,
};
pub use differential::{
    classify, differential_test, run_on_targets, run_on_targets_session, targets_for, TestTarget,
    Verdict,
};
pub use emi_campaign::{
    emi_campaign_descriptor, generate_live_bases, generate_live_bases_with, judge_base,
    judge_base_sessions, judge_outcomes, merge_emi_campaign_journals, pruning_grid,
    run_emi_campaign, run_emi_campaign_sharded, run_emi_campaign_with, EmiBaseJob,
    EmiCampaignOptions, EmiCampaignResult, EmiOutcomeGrid, EmiStats, EmiTally, EmiVariantGrid,
    LivenessCandidate, LivenessOutcomes, LivenessProbeJob, ShardedEmiCampaign,
};
pub use exec::{
    expect_completed, job_seed, Job, JobFailure, JobResult, PipelineMetrics, Scheduler,
    SchedulerMode, Stage, StagedJob,
};
pub use faults::{tear_journal_tail, FaultKind, FaultPlan, FaultSpec, LeaseFault};
pub use fleet::{
    run_worker, Coordinator, DeadLetter, FleetCommand, FleetOptions, FleetOutcome, FleetReply,
    LeaseRecord, ProcessWorker, WorkerLink,
};
pub use journal::{
    checksum, compact_journal, load_journal, partition_range, Checkpoint, JournalError,
    JournalHeader, JournalRecord, JournalWriter, LoadedJournal, JOURNAL_FORMAT_VERSION,
    JOURNAL_MAGIC,
};
pub use opencl_sim::ExecutionTier;
pub use report::{
    percent, render_campaign_table, render_corpus_table, render_emi_table,
    render_reliability_table, render_table, EMPTY_CELL,
};
pub use shard::{
    lease_header, refold_journal_records, refold_journals, run_range_fold, run_sharded,
    CheckpointPolicy, FoldRun, JournalOptions, JournalPayload, Mergeable, RefoldSummary,
    ShardMetrics, ShardRun, ShardSelect, ShardSpec,
};
