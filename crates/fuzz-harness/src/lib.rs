//! # fuzz-harness — differential and EMI testing campaigns
//!
//! Orchestration of the paper's testing campaigns over the simulated OpenCL
//! platform:
//!
//! * [`differential`] — run one kernel across many (configuration,
//!   optimisation level) targets and vote on the results (§3.2);
//! * [`campaign`] — batch CLsmith campaigns per mode (Table 4) and the
//!   initial reliability classification (Table 1, §7.1);
//! * [`emi_campaign`] — CLsmith+EMI campaigns over base programs and their
//!   pruning variants (Table 5, §7.4);
//! * [`benchmark_emi`] — EMI testing of existing kernels such as the
//!   Parboil/Rodinia miniatures (Table 3, §7.2);
//! * [`report`] — plain-text table rendering used by the reproduction
//!   binaries in the `bench` crate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod benchmark_emi;
pub mod campaign;
pub mod differential;
pub mod emi_campaign;
pub mod report;

pub use benchmark_emi::{evaluate_benchmark, BenchmarkCell, CellOutcome, EmiBenchmark};
pub use campaign::{
    classify_configurations, quick_differential, run_mode_campaign, CampaignOptions,
    CampaignResult, ReliabilityRow, TargetStats, RELIABILITY_THRESHOLD,
};
pub use differential::{classify, differential_test, run_on_targets, targets_for, TestTarget, Verdict};
pub use emi_campaign::{
    generate_live_bases, judge_base, pruning_grid, run_emi_campaign, EmiCampaignOptions,
    EmiCampaignResult, EmiStats,
};
pub use report::{percent, render_table};
