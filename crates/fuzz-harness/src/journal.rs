//! The resumable on-disk campaign journal.
//!
//! A journal is an append-only text file recording, for one shard of one
//! campaign, the outcome of every completed job.  It is the persistence
//! substrate of the shard layer ([`crate::shard`]): kill a campaign at any
//! point and the journal holds everything completed so far; point a resumed
//! run (or the `merge` subcommand of a table binary) at it and the campaign
//! continues — or renders a partial table — without re-executing a single
//! journaled job.
//!
//! ## Format (version [`JOURNAL_FORMAT_VERSION`])
//!
//! One line per entry, space-separated single-token fields, every line
//! carrying its own checksum ([`checksum`], FNV-1a 64):
//!
//! ```text
//! CLFUZZ-JOURNAL 1 <campaign> <seed:016x> <total_jobs> <shard>/<of> <crc:016x>
//! R <job_index> <job_seed:016x> <digest:016x> <payload> <crc:016x>
//! R ...
//! ```
//!
//! * The header is self-describing: format version, a campaign descriptor
//!   (a single token encoding the driver and its scale parameters, used to
//!   reject resumes/merges against the wrong campaign), the campaign seed,
//!   the size of the job index space, and which shard of it this journal
//!   covers.
//! * Each record names its job index, the job's derived RNG seed, a digest
//!   of the payload (the job's outcome digest, checked again on load), the
//!   serialized per-job tally contribution, and the line checksum.
//! * Payloads are produced by [`crate::shard::JournalPayload`] encoders and
//!   must not contain whitespace or newlines; the writer enforces this.
//!
//! ## Robustness at the edges
//!
//! A process killed mid-write leaves a truncated final line.  [`load_journal`]
//! verifies every line's checksum and **stops at the first invalid line**,
//! reporting the byte offset of the last valid record so a resumed run can
//! truncate the corrupt tail and append from there — a half-written record
//! is dropped (and its job re-executed), never allowed to poison the
//! campaign.
//!
//! ## Writer thread
//!
//! [`JournalWriter`] owns the file on a dedicated thread fed over an
//! unbounded channel: the scheduler's collector hands completed records over
//! as they arrive (completion order — the journal is an unordered set, the
//! fold re-sorts by job index) and no worker ever blocks on journal IO.
//! Each record is flushed as it is written, so a kill loses at most the
//! few jobs still in flight (one per worker, plus whatever sits in the
//! writer's channel and the line being written); everything already
//! collected is on disk and a resumed run skips it.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::thread::JoinHandle;

/// Version tag of the on-disk journal format.  Bump when the line format
/// changes; [`load_journal`] rejects journals written by other versions.
pub const JOURNAL_FORMAT_VERSION: u32 = 1;

/// Magic token opening every journal header line.
pub const JOURNAL_MAGIC: &str = "CLFUZZ-JOURNAL";

/// The checksum protecting every journal line: FNV-1a 64 over the line's
/// bytes up to (and excluding) the trailing checksum field.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Errors surfaced by the journal and shard layer.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// A malformed header, record or payload.
    Format(String),
    /// A structurally valid journal that belongs to a different campaign,
    /// shard or format version than the caller expected.
    Mismatch(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal IO error: {e}"),
            JournalError::Format(msg) => write!(f, "malformed journal: {msg}"),
            JournalError::Mismatch(msg) => write!(f, "journal mismatch: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// The self-describing first line of a journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Single-token campaign descriptor (driver kind + scale parameters,
    /// e.g. `modes:BARRIER:k20:cfg1a2b3c4d`).  Resume and merge reject
    /// journals whose descriptor does not match.
    pub campaign: String,
    /// The campaign seed every job seed derives from.
    pub campaign_seed: u64,
    /// Size of the campaign's job index space (across *all* shards).
    pub total_jobs: u64,
    /// Which shard of the job space this journal covers.
    pub shard_index: u32,
    /// How many shards the job space was partitioned into.
    pub shard_count: u32,
}

impl JournalHeader {
    fn render(&self) -> Result<String, JournalError> {
        require_token("campaign descriptor", &self.campaign)?;
        let body = format!(
            "{JOURNAL_MAGIC} {JOURNAL_FORMAT_VERSION} {} {:016x} {} {}/{}",
            self.campaign, self.campaign_seed, self.total_jobs, self.shard_index, self.shard_count
        );
        Ok(format!("{body} {:016x}", checksum(body.as_bytes())))
    }

    fn parse(line: &str) -> Option<JournalHeader> {
        let body = verify_line_checksum(line)?;
        let fields: Vec<&str> = body.split(' ').collect();
        if fields.len() != 6 || fields[0] != JOURNAL_MAGIC {
            return None;
        }
        if fields[1].parse::<u32>().ok()? != JOURNAL_FORMAT_VERSION {
            return None;
        }
        let (shard_index, shard_count) = fields[5].split_once('/')?;
        Some(JournalHeader {
            campaign: fields[2].to_string(),
            campaign_seed: u64::from_str_radix(fields[3], 16).ok()?,
            total_jobs: fields[4].parse().ok()?,
            shard_index: shard_index.parse().ok()?,
            shard_count: shard_count.parse().ok()?,
        })
    }
}

/// One journaled job: its index in the campaign's job space, its derived
/// RNG seed, the digest of its payload, and the serialized per-job tally
/// contribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Index of the job in the campaign's global job space.
    pub job_index: u64,
    /// The job's derived RNG seed (`job_seed(campaign_seed, index)` or the
    /// driver's historical derivation), recorded for post-hoc analysis.
    pub job_seed: u64,
    /// Outcome digest: [`checksum`] of the payload bytes, stored separately
    /// from the line checksum so merges can cross-check duplicate records.
    pub digest: u64,
    /// The serialized per-job contribution (a single whitespace-free token).
    pub payload: String,
}

impl JournalRecord {
    /// Builds a record for a payload, computing its outcome digest.
    pub fn new(job_index: u64, job_seed: u64, payload: String) -> JournalRecord {
        let digest = checksum(payload.as_bytes());
        JournalRecord {
            job_index,
            job_seed,
            digest,
            payload,
        }
    }

    fn render(&self) -> Result<String, JournalError> {
        require_token("record payload", &self.payload)?;
        let body = format!(
            "R {} {:016x} {:016x} {}",
            self.job_index, self.job_seed, self.digest, self.payload
        );
        Ok(format!("{body} {:016x}", checksum(body.as_bytes())))
    }

    fn parse(line: &str) -> Option<JournalRecord> {
        let body = verify_line_checksum(line)?;
        let fields: Vec<&str> = body.split(' ').collect();
        if fields.len() != 5 || fields[0] != "R" {
            return None;
        }
        let record = JournalRecord {
            job_index: fields[1].parse().ok()?,
            job_seed: u64::from_str_radix(fields[2], 16).ok()?,
            digest: u64::from_str_radix(fields[3], 16).ok()?,
            payload: fields[4].to_string(),
        };
        // The digest is an independent check on the payload itself (the line
        // checksum already covered it, but merges compare digests across
        // journals, so a record whose digest lies about its payload is
        // corrupt).
        (checksum(record.payload.as_bytes()) == record.digest).then_some(record)
    }
}

/// Rejects tokens that would break the space-separated line format.
fn require_token(what: &str, token: &str) -> Result<(), JournalError> {
    if token.is_empty() || token.contains(char::is_whitespace) {
        return Err(JournalError::Format(format!(
            "{what} must be a non-empty whitespace-free token, got {token:?}"
        )));
    }
    Ok(())
}

/// Splits `line` into (body, crc) and verifies the checksum; returns the
/// body on success.
fn verify_line_checksum(line: &str) -> Option<&str> {
    let (body, crc) = line.rsplit_once(' ')?;
    let crc = u64::from_str_radix(crc, 16).ok()?;
    (checksum(body.as_bytes()) == crc).then_some(body)
}

/// A journal read back from disk: the header, every valid record, and how
/// much of the file they account for.
#[derive(Debug)]
pub struct LoadedJournal {
    /// The parsed header.
    pub header: JournalHeader,
    /// Every record whose checksum verified, in file order.
    pub records: Vec<JournalRecord>,
    /// Byte offset just past the last valid line — a resumed writer
    /// truncates the file here before appending.
    pub valid_bytes: u64,
    /// Bytes past `valid_bytes` (a truncated or corrupt tail, dropped).
    pub dropped_bytes: u64,
}

/// Reads a journal, verifying every line's checksum and dropping the
/// corrupt tail a mid-write kill leaves behind (see the module docs).
///
/// Returns `Format` if the header itself is missing or invalid — an empty
/// or headerless file is not a journal.
pub fn load_journal(path: &Path) -> Result<LoadedJournal, JournalError> {
    let mut file = File::open(path)?;
    let mut raw = Vec::new();
    file.read_to_end(&mut raw)?;
    let mut offset = 0usize;
    let mut header: Option<JournalHeader> = None;
    let mut records = Vec::new();
    let mut valid_bytes = 0usize;
    while offset < raw.len() {
        // A line is only complete (and only checksummed) once its newline
        // is on disk; anything after the last newline is in-flight tail.
        let Some(nl) = raw[offset..].iter().position(|&b| b == b'\n') else {
            break;
        };
        let Ok(line) = std::str::from_utf8(&raw[offset..offset + nl]) else {
            break;
        };
        if header.is_none() {
            match JournalHeader::parse(line) {
                Some(h) => header = Some(h),
                None => break,
            }
        } else {
            match JournalRecord::parse(line) {
                Some(r) => records.push(r),
                None => break,
            }
        }
        offset += nl + 1;
        valid_bytes = offset;
    }
    let header = header.ok_or_else(|| {
        JournalError::Format(format!("{} has no valid journal header", path.display()))
    })?;
    Ok(LoadedJournal {
        header,
        records,
        valid_bytes: valid_bytes as u64,
        dropped_bytes: (raw.len() - valid_bytes) as u64,
    })
}

/// Message protocol between the shard executor and the writer thread.
enum WriterMessage {
    Record(JournalRecord),
    Finish,
}

/// The journal writer: a dedicated IO thread owning the file, fed over an
/// unbounded channel so the scheduler (and its workers) never block on disk.
#[derive(Debug)]
pub struct JournalWriter {
    tx: mpsc::Sender<WriterMessage>,
    handle: Option<JoinHandle<Result<u64, JournalError>>>,
    path: PathBuf,
}

impl JournalWriter {
    /// Creates (or truncates) the journal at `path` and writes the header.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<JournalWriter, JournalError> {
        let header_line = header.render()?;
        let mut file = File::create(path)?;
        file.write_all(header_line.as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()?;
        Ok(JournalWriter::spawn(path, file))
    }

    /// Reopens an existing journal for appending, first truncating it to
    /// `valid_bytes` (dropping the corrupt tail reported by
    /// [`load_journal`]).
    pub fn append(path: &Path, valid_bytes: u64) -> Result<JournalWriter, JournalError> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_bytes)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(JournalWriter::spawn(path, file))
    }

    fn spawn(path: &Path, file: File) -> JournalWriter {
        let (tx, rx) = mpsc::channel::<WriterMessage>();
        let handle = std::thread::spawn(move || -> Result<u64, JournalError> {
            let mut out = BufWriter::new(file);
            while let Ok(WriterMessage::Record(record)) = rx.recv() {
                out.write_all(record.render()?.as_bytes())?;
                out.write_all(b"\n")?;
                // Flush per record: a kill at any job boundary then loses at
                // most the (incomplete, checksummed-out) line in flight.
                out.flush()?;
            }
            let mut file = out.into_inner().map_err(|e| JournalError::Io(e.into()))?;
            file.flush()?;
            Ok(file.seek(SeekFrom::End(0))?)
        });
        JournalWriter {
            tx,
            handle: Some(handle),
            path: path.to_path_buf(),
        }
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Queues one record for writing.  Never blocks on IO; the write happens
    /// on the writer thread.
    pub fn record(&self, record: JournalRecord) {
        // A send can only fail if the writer thread died (e.g. disk full);
        // the error surfaces from `finish`, which owns the thread's result.
        let _ = self.tx.send(WriterMessage::Record(record));
    }

    /// Stops the writer thread, flushes, and returns the final file size in
    /// bytes.
    pub fn finish(mut self) -> Result<u64, JournalError> {
        let _ = self.tx.send(WriterMessage::Finish);
        let handle = self.handle.take().expect("journal writer already finished");
        handle
            .join()
            .unwrap_or_else(|_| Err(JournalError::Format("journal writer panicked".into())))
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        let _ = self.tx.send(WriterMessage::Finish);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "clfuzz-journal-test-{}-{}-{name}.log",
            std::process::id(),
            // Distinct per test invocation within a process.
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "-"),
        ))
    }

    fn header() -> JournalHeader {
        JournalHeader {
            campaign: "test:k4".into(),
            campaign_seed: 0xC0FFEE,
            total_jobs: 4,
            shard_index: 0,
            shard_count: 1,
        }
    }

    fn write_journal(path: &Path, records: usize) {
        let writer = JournalWriter::create(path, &header()).unwrap();
        for i in 0..records {
            writer.record(JournalRecord::new(
                i as u64,
                100 + i as u64,
                format!("p{i}"),
            ));
        }
        writer.finish().unwrap();
    }

    #[test]
    fn header_and_records_round_trip() {
        let path = temp_path("roundtrip");
        write_journal(&path, 4);
        let loaded = load_journal(&path).unwrap();
        assert_eq!(loaded.header, header());
        assert_eq!(loaded.records.len(), 4);
        assert_eq!(loaded.dropped_bytes, 0);
        for (i, r) in loaded.records.iter().enumerate() {
            assert_eq!(r.job_index, i as u64);
            assert_eq!(r.job_seed, 100 + i as u64);
            assert_eq!(r.payload, format!("p{i}"));
            assert_eq!(r.digest, checksum(r.payload.as_bytes()));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_final_record_is_detected_and_dropped() {
        // Simulate a mid-write kill: chop the file inside its last record.
        let path = temp_path("truncated");
        write_journal(&path, 4);
        let full = std::fs::metadata(&path).unwrap().len();
        let loaded = load_journal(&path).unwrap();
        assert_eq!(loaded.valid_bytes, full);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(full - 7)
            .unwrap();
        let loaded = load_journal(&path).unwrap();
        assert_eq!(
            loaded.records.len(),
            3,
            "the half-written record must be dropped"
        );
        assert!(loaded.dropped_bytes > 0);
        // The reported valid prefix ends exactly after record 3's newline, so
        // a resumed writer can truncate there and append record 3 afresh.
        let writer = JournalWriter::append(&path, loaded.valid_bytes).unwrap();
        writer.record(JournalRecord::new(3, 103, "p3".into()));
        writer.finish().unwrap();
        let healed = load_journal(&path).unwrap();
        assert_eq!(healed.records.len(), 4);
        assert_eq!(healed.records[3].payload, "p3");
        assert_eq!(healed.dropped_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_byte_invalidates_the_checksum() {
        // Flip one payload byte in the middle of the file: that record and
        // everything after it are dropped (an append-only journal is only
        // ever trusted up to its first bad line).
        let path = temp_path("bitflip");
        write_journal(&path, 4);
        let mut bytes = std::fs::read(&path).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        let target = text.find("p2").unwrap();
        bytes[target + 1] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        let loaded = load_journal(&path).unwrap();
        assert_eq!(loaded.records.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_or_invalid_header_is_an_error() {
        let path = temp_path("noheader");
        std::fs::write(&path, "not a journal\n").unwrap();
        assert!(matches!(load_journal(&path), Err(JournalError::Format(_))));
        std::fs::write(&path, "").unwrap();
        assert!(matches!(load_journal(&path), Err(JournalError::Format(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn payload_tokens_are_validated() {
        assert!(JournalRecord::new(0, 0, "a b".into()).render().is_err());
        assert!(JournalRecord::new(0, 0, String::new()).render().is_err());
        assert!(JournalRecord::new(0, 0, "ok".into()).render().is_ok());
    }

    #[test]
    fn wrong_format_version_is_rejected() {
        let path = temp_path("version");
        // Hand-craft a header claiming version 999 with a valid checksum.
        let body = format!("{JOURNAL_MAGIC} 999 c:1 {:016x} 4 0/1", 7u64);
        let line = format!("{body} {:016x}\n", checksum(body.as_bytes()));
        std::fs::write(&path, line).unwrap();
        assert!(load_journal(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
