//! The resumable on-disk campaign journal.
//!
//! A journal is an append-only text file recording, for one contiguous range
//! of one campaign's job index space, the outcome of every completed job.
//! It is the persistence substrate of the shard layer ([`crate::shard`]) and
//! the fleet coordinator ([`crate::fleet`]): kill a campaign at any point and
//! the journal holds everything completed so far; point a resumed run (or
//! the `merge` subcommand of a table binary) at it and the campaign
//! continues — or renders a partial table — without re-executing a single
//! journaled job.
//!
//! ## Format (version [`JOURNAL_FORMAT_VERSION`])
//!
//! One line per entry, space-separated single-token fields, every line
//! carrying its own checksum ([`checksum`], FNV-1a 64):
//!
//! ```text
//! CLFUZZ-JOURNAL 2 <campaign> <seed:016x> <total_jobs> <shard>/<of> <start>-<end> <crc:016x>
//! R <job_index> <job_seed:016x> <digest:016x> <payload> <crc:016x>
//! K <upto> <jobs> <aggregate> <crc:016x>
//! R ...
//! ```
//!
//! * The header is self-describing: format version, a campaign descriptor
//!   (a single token encoding the driver and its scale parameters, used to
//!   reject resumes/merges against the wrong campaign), the campaign seed,
//!   the size of the job index space, which shard of it this journal covers,
//!   and the explicit `[start, end)` job index range.  Fleet lease journals
//!   use the shard field `L/0` (`L` = lease ordinal, count `0` as the
//!   "not an I-of-N shard" sentinel) with the range carrying the lease.
//! * Each `R` record names its job index, the job's derived RNG seed, a
//!   digest of the payload (checked again on load), the serialized per-job
//!   tally contribution, and the line checksum.
//! * Each `K` checkpoint asserts that **every** job index in
//!   `[start, upto)` is complete and that their contributions fold to
//!   `aggregate` (a [`crate::shard::Mergeable`] token); `jobs` repeats
//!   `upto - start` as a cross-check.  A loader seeds its tally from the
//!   last valid checkpoint and replays only the records past it, making
//!   resume O(tail) instead of O(run); [`compact_journal`] rewrites the
//!   file down to header + checkpoint + uncovered records.
//! * Payloads are produced by [`crate::shard::JournalPayload`] encoders and
//!   must not contain whitespace or newlines; the writer enforces this.
//!
//! Version 1 journals (no range field, no checkpoints) still load: the
//! reader synthesizes the range from the shard fields using the same exact
//! integer partition as `ShardSpec::job_range`.
//!
//! ## Robustness at the edges
//!
//! A process killed mid-write leaves a truncated final line.  [`load_journal`]
//! verifies every line's checksum and **stops at the first invalid line**,
//! reporting the byte offset of the last valid record so a resumed run can
//! truncate the corrupt tail and append from there — a half-written record
//! (or checkpoint) is dropped, degrading to the last good checkpoint plus
//! the records after it, never allowed to poison the campaign.
//!
//! ## Writer thread
//!
//! [`JournalWriter`] owns the file on a dedicated thread fed over an
//! unbounded channel: the scheduler's collector hands completed records over
//! as they arrive (completion order — the journal is an unordered set, the
//! fold re-sorts by job index) and no worker ever blocks on journal IO.
//! Each line is flushed as it is written, so a kill loses at most the few
//! jobs still in flight.  A failed write is retried once after truncating
//! back to the last good line boundary (transient errors — EINTR, brief
//! ENOSPC — heal); a persistent failure is surfaced from
//! [`JournalWriter::finish`] as [`JournalError::WriterFailed`] with a count
//! of the records that never reached disk.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Version tag of the on-disk journal format.  Bump when the line format
/// changes; [`load_journal`] accepts this version and the backward-compatible
/// set in [`JOURNAL_COMPAT_VERSIONS`].
pub const JOURNAL_FORMAT_VERSION: u32 = 2;

/// Older format versions [`load_journal`] still reads.
pub const JOURNAL_COMPAT_VERSIONS: &[u32] = &[1];

/// Magic token opening every journal header line.
pub const JOURNAL_MAGIC: &str = "CLFUZZ-JOURNAL";

/// Backoff before the writer thread's single retry of a failed write.
const WRITE_RETRY_BACKOFF: Duration = Duration::from_millis(2);

/// The checksum protecting every journal line: FNV-1a 64 over the line's
/// bytes up to (and excluding) the trailing checksum field.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Errors surfaced by the journal and shard layer.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// A malformed header, record or payload.
    Format(String),
    /// A structurally valid journal that belongs to a different campaign,
    /// shard or format version than the caller expected.
    Mismatch(String),
    /// The writer thread hit a persistent I/O failure (one bounded retry
    /// already attempted).  The on-disk prefix up to the failure is still a
    /// valid, resumable journal.
    WriterFailed {
        /// The first unrecoverable write error, rendered.
        error: String,
        /// Queued lines that never reached disk.
        dropped: u64,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal IO error: {e}"),
            JournalError::Format(msg) => write!(f, "malformed journal: {msg}"),
            JournalError::Mismatch(msg) => write!(f, "journal mismatch: {msg}"),
            JournalError::WriterFailed { error, dropped } => write!(
                f,
                "journal writer failed after retry ({error}); {dropped} queued line(s) lost"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// The self-describing first line of a journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Single-token campaign descriptor (driver kind + scale parameters,
    /// e.g. `modes:BARRIER:k20:cfg1a2b3c4d`).  Resume and merge reject
    /// journals whose descriptor does not match.
    pub campaign: String,
    /// The campaign seed every job seed derives from.
    pub campaign_seed: u64,
    /// Size of the campaign's job index space (across *all* shards).
    pub total_jobs: u64,
    /// Which shard of the job space this journal covers; for fleet lease
    /// journals this is the lease ordinal.
    pub shard_index: u32,
    /// How many shards the job space was partitioned into; `0` marks a
    /// fleet lease journal whose coverage is the explicit `range` alone.
    pub shard_count: u32,
    /// The contiguous `[start, end)` job index range this journal covers.
    pub range: (u64, u64),
}

/// The exact integer partition `shard I/N` covers — shared with
/// `ShardSpec::job_range` so v1 journals (which carried no explicit range)
/// reconstruct the identical bounds.
pub fn partition_range(total_jobs: u64, index: u32, count: u32) -> (u64, u64) {
    let count = count.max(1) as u128;
    let index = (index as u128).min(count - 1);
    let total = total_jobs as u128;
    let start = (total * index / count) as u64;
    let end = (total * (index + 1) / count) as u64;
    (start, end)
}

impl JournalHeader {
    fn render(&self) -> Result<String, JournalError> {
        require_token("campaign descriptor", &self.campaign)?;
        let body = format!(
            "{JOURNAL_MAGIC} {JOURNAL_FORMAT_VERSION} {} {:016x} {} {}/{} {}-{}",
            self.campaign,
            self.campaign_seed,
            self.total_jobs,
            self.shard_index,
            self.shard_count,
            self.range.0,
            self.range.1
        );
        Ok(format!("{body} {:016x}", checksum(body.as_bytes())))
    }

    fn parse(line: &str) -> Option<JournalHeader> {
        let body = verify_line_checksum(line)?;
        let fields: Vec<&str> = body.split(' ').collect();
        if fields.len() < 6 || fields[0] != JOURNAL_MAGIC {
            return None;
        }
        let version = fields[1].parse::<u32>().ok()?;
        let v2 = version == JOURNAL_FORMAT_VERSION;
        if !v2 && !JOURNAL_COMPAT_VERSIONS.contains(&version) {
            return None;
        }
        if fields.len() != if v2 { 7 } else { 6 } {
            return None;
        }
        let (shard_index, shard_count) = fields[5].split_once('/')?;
        let shard_index: u32 = shard_index.parse().ok()?;
        let shard_count: u32 = shard_count.parse().ok()?;
        let total_jobs: u64 = fields[4].parse().ok()?;
        let range = if v2 {
            let (start, end) = fields[6].split_once('-')?;
            let (start, end) = (start.parse().ok()?, end.parse().ok()?);
            (start <= end).then_some((start, end))?
        } else {
            // v1 carried no range field; reconstruct it from the shard
            // arithmetic it was written under.
            partition_range(total_jobs, shard_index, shard_count)
        };
        Some(JournalHeader {
            campaign: fields[2].to_string(),
            campaign_seed: u64::from_str_radix(fields[3], 16).ok()?,
            total_jobs,
            shard_index,
            shard_count,
            range,
        })
    }
}

/// One journaled job: its index in the campaign's job space, its derived
/// RNG seed, the digest of its payload, and the serialized per-job tally
/// contribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Index of the job in the campaign's global job space.
    pub job_index: u64,
    /// The job's derived RNG seed (`job_seed(campaign_seed, index)` or the
    /// driver's historical derivation), recorded for post-hoc analysis.
    pub job_seed: u64,
    /// Outcome digest: [`checksum`] of the payload bytes, stored separately
    /// from the line checksum so merges can cross-check duplicate records.
    pub digest: u64,
    /// The serialized per-job contribution (a single whitespace-free token).
    pub payload: String,
}

impl JournalRecord {
    /// Builds a record for a payload, computing its outcome digest.
    pub fn new(job_index: u64, job_seed: u64, payload: String) -> JournalRecord {
        let digest = checksum(payload.as_bytes());
        JournalRecord {
            job_index,
            job_seed,
            digest,
            payload,
        }
    }

    fn render(&self) -> Result<String, JournalError> {
        require_token("record payload", &self.payload)?;
        let body = format!(
            "R {} {:016x} {:016x} {}",
            self.job_index, self.job_seed, self.digest, self.payload
        );
        Ok(format!("{body} {:016x}", checksum(body.as_bytes())))
    }

    fn parse(line: &str) -> Option<JournalRecord> {
        let body = verify_line_checksum(line)?;
        let fields: Vec<&str> = body.split(' ').collect();
        if fields.len() != 5 || fields[0] != "R" {
            return None;
        }
        let record = JournalRecord {
            job_index: fields[1].parse().ok()?,
            job_seed: u64::from_str_radix(fields[2], 16).ok()?,
            digest: u64::from_str_radix(fields[3], 16).ok()?,
            payload: fields[4].to_string(),
        };
        // The digest is an independent check on the payload itself (the line
        // checksum already covered it, but merges compare digests across
        // journals, so a record whose digest lies about its payload is
        // corrupt).
        (checksum(record.payload.as_bytes()) == record.digest).then_some(record)
    }
}

/// A checkpoint record: every job index in `[header.range.0, upto)` is
/// complete and their contributions fold to `aggregate`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Exclusive upper bound of the contiguous completed prefix.
    pub upto: u64,
    /// Number of jobs the checkpoint covers (`upto - range.0`), stored as a
    /// cross-check against the header's range.
    pub jobs: u64,
    /// The folded contribution of the covered jobs, serialized with
    /// [`crate::shard::Mergeable::serialize`] (a single token).
    pub aggregate: String,
}

impl Checkpoint {
    fn render(&self) -> Result<String, JournalError> {
        require_token("checkpoint aggregate", &self.aggregate)?;
        let body = format!("K {} {} {}", self.upto, self.jobs, self.aggregate);
        Ok(format!("{body} {:016x}", checksum(body.as_bytes())))
    }

    fn parse(line: &str) -> Option<Checkpoint> {
        let body = verify_line_checksum(line)?;
        let fields: Vec<&str> = body.split(' ').collect();
        if fields.len() != 4 || fields[0] != "K" {
            return None;
        }
        Some(Checkpoint {
            upto: fields[1].parse().ok()?,
            jobs: fields[2].parse().ok()?,
            aggregate: fields[3].to_string(),
        })
    }

    /// Internal consistency against the journal's declared range: a
    /// checkpoint claiming jobs outside the range (or a job count that
    /// disagrees with its bound) is corrupt.
    fn consistent_with(&self, header: &JournalHeader) -> bool {
        let (start, end) = header.range;
        start <= self.upto && self.upto <= end && self.jobs == self.upto - start
    }
}

/// Rejects tokens that would break the space-separated line format.
fn require_token(what: &str, token: &str) -> Result<(), JournalError> {
    if token.is_empty() || token.contains(char::is_whitespace) {
        return Err(JournalError::Format(format!(
            "{what} must be a non-empty whitespace-free token, got {token:?}"
        )));
    }
    Ok(())
}

/// Splits `line` into (body, crc) and verifies the checksum; returns the
/// body on success.
fn verify_line_checksum(line: &str) -> Option<&str> {
    let (body, crc) = line.rsplit_once(' ')?;
    let crc = u64::from_str_radix(crc, 16).ok()?;
    (checksum(body.as_bytes()) == crc).then_some(body)
}

/// A journal read back from disk: the header, the last valid checkpoint (if
/// any), every valid record past it, and how much of the file they account
/// for.
#[derive(Debug)]
pub struct LoadedJournal {
    /// The parsed header.
    pub header: JournalHeader,
    /// Every record whose checksum verified and that is **not** already
    /// covered by `checkpoint`, in file order.
    pub records: Vec<JournalRecord>,
    /// The last valid checkpoint, covering `[header.range.0, upto)`.
    /// Records with `job_index < upto` were folded into its aggregate when
    /// it was written and are dropped from `records`.
    pub checkpoint: Option<Checkpoint>,
    /// Byte offset just past the last valid line — a resumed writer
    /// truncates the file here before appending.
    pub valid_bytes: u64,
    /// Bytes past `valid_bytes` (a truncated or corrupt tail, dropped).
    pub dropped_bytes: u64,
}

impl LoadedJournal {
    /// Number of completed jobs the journal accounts for: checkpoint
    /// coverage plus the uncovered records.
    pub fn jobs_completed(&self) -> u64 {
        self.checkpoint.as_ref().map_or(0, |c| c.jobs) + self.records.len() as u64
    }
}

/// Reads a journal, verifying every line's checksum and dropping the
/// corrupt tail a mid-write kill leaves behind (see the module docs).
///
/// A torn or corrupt checkpoint line stops the scan like any other bad
/// line: the journal degrades to the last *good* checkpoint plus the valid
/// records before the tear.
///
/// Returns `Format` if the header itself is missing or invalid — an empty
/// or headerless file is not a journal.
pub fn load_journal(path: &Path) -> Result<LoadedJournal, JournalError> {
    let mut file = File::open(path)?;
    let mut raw = Vec::new();
    file.read_to_end(&mut raw)?;
    let mut offset = 0usize;
    let mut header: Option<JournalHeader> = None;
    let mut records: Vec<JournalRecord> = Vec::new();
    let mut checkpoint: Option<Checkpoint> = None;
    let mut valid_bytes = 0usize;
    while offset < raw.len() {
        // A line is only complete (and only checksummed) once its newline
        // is on disk; anything after the last newline is in-flight tail.
        let Some(nl) = raw[offset..].iter().position(|&b| b == b'\n') else {
            break;
        };
        let Ok(line) = std::str::from_utf8(&raw[offset..offset + nl]) else {
            break;
        };
        match &header {
            None => match JournalHeader::parse(line) {
                Some(h) => header = Some(h),
                None => break,
            },
            Some(h) if line.starts_with("K ") => {
                match Checkpoint::parse(line).filter(|c| c.consistent_with(h)) {
                    Some(c) => {
                        // The new checkpoint covers everything the previous
                        // one did plus the records folded since.
                        records.retain(|r| r.job_index >= c.upto);
                        checkpoint = Some(c);
                    }
                    None => break,
                }
            }
            Some(_) => match JournalRecord::parse(line) {
                Some(r) => records.push(r),
                None => break,
            },
        }
        offset += nl + 1;
        valid_bytes = offset;
    }
    let header = header.ok_or_else(|| {
        JournalError::Format(format!("{} has no valid journal header", path.display()))
    })?;
    if let Some(c) = &checkpoint {
        records.retain(|r| r.job_index >= c.upto);
    }
    Ok(LoadedJournal {
        header,
        records,
        checkpoint,
        valid_bytes: valid_bytes as u64,
        dropped_bytes: (raw.len() - valid_bytes) as u64,
    })
}

/// Rewrites a journal down to its canonical minimum: header, the last
/// checkpoint (if any), and the records it does not cover.  Also heals a
/// corrupt tail (the rewrite only carries valid lines).  Atomic: the new
/// content is staged in a sibling temp file and renamed over the original.
///
/// Returns `(bytes_before, bytes_after)`.
pub fn compact_journal(path: &Path) -> Result<(u64, u64), JournalError> {
    let loaded = load_journal(path)?;
    let bytes_before = loaded.valid_bytes + loaded.dropped_bytes;
    let mut text = loaded.header.render()?;
    text.push('\n');
    if let Some(c) = &loaded.checkpoint {
        text.push_str(&c.render()?);
        text.push('\n');
    }
    for r in &loaded.records {
        text.push_str(&r.render()?);
        text.push('\n');
    }
    let tmp = path.with_extension(format!("compact.{}", std::process::id()));
    std::fs::write(&tmp, &text)?;
    std::fs::rename(&tmp, path)?;
    Ok((bytes_before, text.len() as u64))
}

/// Message protocol between the shard executor and the writer thread.
enum WriterMessage {
    Record(JournalRecord),
    Checkpoint(Checkpoint),
    Finish,
}

/// Per-write fault hook for the writer thread, used by tests to exercise
/// the retry path: called once per write *attempt* with a running attempt
/// ordinal; returning an error makes that attempt fail before touching the
/// file.
type WriteFaultHook = Box<dyn FnMut(u64) -> Option<std::io::Error> + Send>;

/// The file half of the writer thread: tracks the byte offset of the last
/// completed line so a failed write can be rolled back to a clean boundary
/// and retried exactly once.
struct FileSink {
    file: File,
    offset: u64,
    attempts: u64,
    faults: Option<WriteFaultHook>,
}

impl FileSink {
    fn attempt(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let ordinal = self.attempts;
        self.attempts += 1;
        if let Some(hook) = &mut self.faults {
            if let Some(err) = hook(ordinal) {
                return Err(err);
            }
        }
        self.file.write_all(bytes)?;
        self.file.flush()
    }

    /// Writes one full line (with newline), retrying once on failure after
    /// truncating back to the last good line boundary.
    fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        if let Err(first) = self.attempt(&bytes) {
            // A transient failure may have left a partial prefix; roll the
            // file back to the line boundary so the journal stays valid no
            // matter how the retry goes, then try once more.
            std::thread::sleep(WRITE_RETRY_BACKOFF);
            self.file.set_len(self.offset).map_err(|_| first)?;
            self.file.seek(SeekFrom::Start(self.offset))?;
            self.attempt(&bytes)?;
        }
        self.offset += bytes.len() as u64;
        Ok(())
    }
}

/// The journal writer: a dedicated IO thread owning the file, fed over an
/// unbounded channel so the scheduler (and its workers) never block on disk.
#[derive(Debug)]
pub struct JournalWriter {
    tx: mpsc::Sender<WriterMessage>,
    handle: Option<JoinHandle<Result<u64, JournalError>>>,
    path: PathBuf,
}

impl JournalWriter {
    /// Creates (or truncates) the journal at `path` and writes the header.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<JournalWriter, JournalError> {
        JournalWriter::create_with_faults(path, header, None)
    }

    fn create_with_faults(
        path: &Path,
        header: &JournalHeader,
        faults: Option<WriteFaultHook>,
    ) -> Result<JournalWriter, JournalError> {
        let header_line = header.render()?;
        let mut file = File::create(path)?;
        file.write_all(header_line.as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()?;
        let offset = header_line.len() as u64 + 1;
        Ok(JournalWriter::spawn(path, file, offset, faults))
    }

    /// Reopens an existing journal for appending, first truncating it to
    /// `valid_bytes` (dropping the corrupt tail reported by
    /// [`load_journal`]).
    pub fn append(path: &Path, valid_bytes: u64) -> Result<JournalWriter, JournalError> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_bytes)?;
        let mut file = file;
        file.seek(SeekFrom::Start(valid_bytes))?;
        Ok(JournalWriter::spawn(path, file, valid_bytes, None))
    }

    fn spawn(
        path: &Path,
        file: File,
        offset: u64,
        faults: Option<WriteFaultHook>,
    ) -> JournalWriter {
        let (tx, rx) = mpsc::channel::<WriterMessage>();
        let handle = std::thread::spawn(move || -> Result<u64, JournalError> {
            let mut sink = FileSink {
                file,
                offset,
                attempts: 0,
                faults,
            };
            let mut failure: Option<std::io::Error> = None;
            let mut dropped = 0u64;
            loop {
                let line = match rx.recv() {
                    Ok(WriterMessage::Record(record)) => record.render()?,
                    Ok(WriterMessage::Checkpoint(checkpoint)) => checkpoint.render()?,
                    Ok(WriterMessage::Finish) | Err(_) => break,
                };
                if failure.is_some() {
                    // Past the first persistent failure, drain and count so
                    // senders never block and the loss is reported exactly.
                    dropped += 1;
                    continue;
                }
                if let Err(e) = sink.write_line(&line) {
                    failure = Some(e);
                    dropped += 1;
                }
            }
            match failure {
                Some(error) => Err(JournalError::WriterFailed {
                    error: error.to_string(),
                    dropped,
                }),
                None => Ok(sink.offset),
            }
        });
        JournalWriter {
            tx,
            handle: Some(handle),
            path: path.to_path_buf(),
        }
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Queues one record for writing.  Never blocks on IO; the write happens
    /// on the writer thread.
    pub fn record(&self, record: JournalRecord) {
        // A send can only fail if the writer thread died (e.g. disk full);
        // the error surfaces from `finish`, which owns the thread's result.
        let _ = self.tx.send(WriterMessage::Record(record));
    }

    /// Queues one checkpoint line for writing.
    pub fn checkpoint(&self, checkpoint: Checkpoint) {
        let _ = self.tx.send(WriterMessage::Checkpoint(checkpoint));
    }

    /// Stops the writer thread, flushes, and returns the final file size in
    /// bytes.  A persistent write failure (after the bounded retry)
    /// surfaces here as [`JournalError::WriterFailed`].
    pub fn finish(mut self) -> Result<u64, JournalError> {
        let _ = self.tx.send(WriterMessage::Finish);
        match self.handle.take() {
            Some(handle) => handle
                .join()
                .unwrap_or_else(|_| Err(JournalError::Format("journal writer panicked".into()))),
            None => Err(JournalError::Format(
                "journal writer already finished".into(),
            )),
        }
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        let _ = self.tx.send(WriterMessage::Finish);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "clfuzz-journal-test-{}-{}-{name}.log",
            std::process::id(),
            // Distinct per test invocation within a process.
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "-"),
        ))
    }

    fn header() -> JournalHeader {
        JournalHeader {
            campaign: "test:k4".into(),
            campaign_seed: 0xC0FFEE,
            total_jobs: 4,
            shard_index: 0,
            shard_count: 1,
            range: (0, 4),
        }
    }

    fn write_journal(path: &Path, records: usize) {
        let writer = JournalWriter::create(path, &header()).unwrap();
        for i in 0..records {
            writer.record(JournalRecord::new(
                i as u64,
                100 + i as u64,
                format!("p{i}"),
            ));
        }
        writer.finish().unwrap();
    }

    #[test]
    fn header_and_records_round_trip() {
        let path = temp_path("roundtrip");
        write_journal(&path, 4);
        let loaded = load_journal(&path).unwrap();
        assert_eq!(loaded.header, header());
        assert_eq!(loaded.records.len(), 4);
        assert_eq!(loaded.dropped_bytes, 0);
        for (i, r) in loaded.records.iter().enumerate() {
            assert_eq!(r.job_index, i as u64);
            assert_eq!(r.job_seed, 100 + i as u64);
            assert_eq!(r.payload, format!("p{i}"));
            assert_eq!(r.digest, checksum(r.payload.as_bytes()));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_final_record_is_detected_and_dropped() {
        // Simulate a mid-write kill: chop the file inside its last record.
        let path = temp_path("truncated");
        write_journal(&path, 4);
        let full = std::fs::metadata(&path).unwrap().len();
        let loaded = load_journal(&path).unwrap();
        assert_eq!(loaded.valid_bytes, full);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(full - 7)
            .unwrap();
        let loaded = load_journal(&path).unwrap();
        assert_eq!(
            loaded.records.len(),
            3,
            "the half-written record must be dropped"
        );
        assert!(loaded.dropped_bytes > 0);
        // The reported valid prefix ends exactly after record 3's newline, so
        // a resumed writer can truncate there and append record 3 afresh.
        let writer = JournalWriter::append(&path, loaded.valid_bytes).unwrap();
        writer.record(JournalRecord::new(3, 103, "p3".into()));
        writer.finish().unwrap();
        let healed = load_journal(&path).unwrap();
        assert_eq!(healed.records.len(), 4);
        assert_eq!(healed.records[3].payload, "p3");
        assert_eq!(healed.dropped_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_byte_invalidates_the_checksum() {
        // Flip one payload byte in the middle of the file: that record and
        // everything after it are dropped (an append-only journal is only
        // ever trusted up to its first bad line).
        let path = temp_path("bitflip");
        write_journal(&path, 4);
        let mut bytes = std::fs::read(&path).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        let target = text.find("p2").unwrap();
        bytes[target + 1] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        let loaded = load_journal(&path).unwrap();
        assert_eq!(loaded.records.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_or_invalid_header_is_an_error() {
        let path = temp_path("noheader");
        std::fs::write(&path, "not a journal\n").unwrap();
        assert!(matches!(load_journal(&path), Err(JournalError::Format(_))));
        std::fs::write(&path, "").unwrap();
        assert!(matches!(load_journal(&path), Err(JournalError::Format(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn payload_tokens_are_validated() {
        assert!(JournalRecord::new(0, 0, "a b".into()).render().is_err());
        assert!(JournalRecord::new(0, 0, String::new()).render().is_err());
        assert!(JournalRecord::new(0, 0, "ok".into()).render().is_ok());
    }

    #[test]
    fn wrong_format_version_is_rejected() {
        let path = temp_path("version");
        // Hand-craft a header claiming version 999 with a valid checksum.
        let body = format!("{JOURNAL_MAGIC} 999 c:1 {:016x} 4 0/1 0-4", 7u64);
        let line = format!("{body} {:016x}\n", checksum(body.as_bytes()));
        std::fs::write(&path, line).unwrap();
        assert!(load_journal(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v1_journals_still_load_with_synthesized_range() {
        // A hand-crafted v1 journal (6-field header, no checkpoints): the
        // reader must accept it and reconstruct the shard's range from the
        // same partition math the v1 writer used.
        let path = temp_path("v1compat");
        let body = format!("{JOURNAL_MAGIC} 1 legacy:k10 {:016x} 10 1/3", 0xBEEFu64);
        let mut text = format!("{body} {:016x}\n", checksum(body.as_bytes()));
        for (idx, payload) in [(3u64, "a"), (4, "b"), (5, "c")] {
            let digest = checksum(payload.as_bytes());
            let rbody = format!("R {idx} {:016x} {digest:016x} {payload}", 100 + idx);
            text.push_str(&format!("{rbody} {:016x}\n", checksum(rbody.as_bytes())));
        }
        std::fs::write(&path, &text).unwrap();
        let loaded = load_journal(&path).unwrap();
        // Shard 1/3 of 10 jobs covers [3, 6) under the exact partition.
        assert_eq!(loaded.header.range, (3, 6));
        assert_eq!(loaded.header.total_jobs, 10);
        assert_eq!(loaded.records.len(), 3);
        assert!(loaded.checkpoint.is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_supersedes_covered_records() {
        let path = temp_path("checkpoint");
        let writer = JournalWriter::create(&path, &header()).unwrap();
        writer.record(JournalRecord::new(0, 100, "p0".into()));
        writer.record(JournalRecord::new(1, 101, "p1".into()));
        writer.checkpoint(Checkpoint {
            upto: 2,
            jobs: 2,
            aggregate: "agg2".into(),
        });
        writer.record(JournalRecord::new(2, 102, "p2".into()));
        writer.finish().unwrap();
        let loaded = load_journal(&path).unwrap();
        let cp = loaded.checkpoint.as_ref().unwrap();
        assert_eq!((cp.upto, cp.jobs, cp.aggregate.as_str()), (2, 2, "agg2"));
        assert_eq!(
            loaded
                .records
                .iter()
                .map(|r| r.job_index)
                .collect::<Vec<_>>(),
            vec![2],
            "records covered by the checkpoint must be dropped"
        );
        assert_eq!(loaded.jobs_completed(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn later_checkpoint_wins_and_compaction_round_trips() {
        let path = temp_path("compact");
        let writer = JournalWriter::create(&path, &header()).unwrap();
        writer.record(JournalRecord::new(0, 100, "p0".into()));
        writer.checkpoint(Checkpoint {
            upto: 1,
            jobs: 1,
            aggregate: "agg1".into(),
        });
        writer.record(JournalRecord::new(1, 101, "p1".into()));
        writer.record(JournalRecord::new(2, 102, "p2".into()));
        writer.checkpoint(Checkpoint {
            upto: 3,
            jobs: 3,
            aggregate: "agg3".into(),
        });
        writer.record(JournalRecord::new(3, 103, "p3".into()));
        writer.finish().unwrap();

        let before = load_journal(&path).unwrap();
        assert_eq!(before.checkpoint.as_ref().unwrap().aggregate, "agg3");
        assert_eq!(before.records.len(), 1);

        let (bytes_before, bytes_after) = compact_journal(&path).unwrap();
        assert!(
            bytes_after < bytes_before,
            "compaction must shrink a journal with superseded lines \
             ({bytes_after} !< {bytes_before})"
        );
        let after = load_journal(&path).unwrap();
        assert_eq!(after.header, before.header);
        assert_eq!(after.checkpoint, before.checkpoint);
        assert_eq!(after.records, before.records);
        assert_eq!(after.jobs_completed(), 4);
        assert_eq!(after.dropped_bytes, 0);
        // Compacting an already-canonical journal is a fixpoint.
        let (b2, a2) = compact_journal(&path).unwrap();
        assert_eq!(b2, a2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_checkpoint_degrades_to_last_good_checkpoint() {
        let path = temp_path("torncp");
        let writer = JournalWriter::create(&path, &header()).unwrap();
        writer.record(JournalRecord::new(0, 100, "p0".into()));
        writer.checkpoint(Checkpoint {
            upto: 1,
            jobs: 1,
            aggregate: "agg1".into(),
        });
        writer.record(JournalRecord::new(1, 101, "p1".into()));
        writer.checkpoint(Checkpoint {
            upto: 2,
            jobs: 2,
            aggregate: "agg2".into(),
        });
        writer.finish().unwrap();
        // Tear the file inside the *second* checkpoint line.
        let full = std::fs::metadata(&path).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(full - 5)
            .unwrap();
        let loaded = load_journal(&path).unwrap();
        let cp = loaded.checkpoint.as_ref().unwrap();
        assert_eq!(
            cp.aggregate, "agg1",
            "a torn checkpoint must fall back to the previous good one"
        );
        assert_eq!(
            loaded
                .records
                .iter()
                .map(|r| r.job_index)
                .collect::<Vec<_>>(),
            vec![1],
            "records after the good checkpoint survive"
        );
        assert!(loaded.dropped_bytes > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn inconsistent_checkpoint_stops_the_scan() {
        // A checkpoint whose bounds contradict the header range is treated
        // as corruption, not trusted.
        let path = temp_path("badcp");
        let h = header();
        let mut text = h.render().unwrap();
        text.push('\n');
        let body = "K 9 9 bogus"; // upto=9 outside range (0,4)
        text.push_str(&format!("{body} {:016x}\n", checksum(body.as_bytes())));
        std::fs::write(&path, &text).unwrap();
        let loaded = load_journal(&path).unwrap();
        assert!(loaded.checkpoint.is_none());
        assert!(loaded.dropped_bytes > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn transient_write_failure_is_retried_and_heals() {
        // Fail exactly one write attempt (the hook sees attempt ordinals):
        // the retry must succeed and the journal must be fully intact, with
        // no error from finish().
        let path = temp_path("retryok");
        let mut failed = false;
        let hook: WriteFaultHook = Box::new(move |ordinal| {
            if ordinal == 1 && !failed {
                failed = true;
                Some(std::io::Error::other("injected transient failure"))
            } else {
                None
            }
        });
        let writer = JournalWriter::create_with_faults(&path, &header(), Some(hook)).unwrap();
        for i in 0..4 {
            writer.record(JournalRecord::new(i, 100 + i, format!("p{i}")));
        }
        writer.finish().unwrap();
        let loaded = load_journal(&path).unwrap();
        assert_eq!(loaded.records.len(), 4);
        assert_eq!(loaded.dropped_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persistent_write_failure_surfaces_from_finish() {
        // Every attempt for line 2 onward fails: finish() must report the
        // typed writer error with the exact number of lost lines, and the
        // on-disk prefix must still be a valid journal.
        let path = temp_path("retryfail");
        let hook: WriteFaultHook = Box::new(|ordinal| {
            (ordinal >= 2).then(|| std::io::Error::other("injected persistent failure"))
        });
        let writer = JournalWriter::create_with_faults(&path, &header(), Some(hook)).unwrap();
        for i in 0..4 {
            writer.record(JournalRecord::new(i, 100 + i, format!("p{i}")));
        }
        match writer.finish() {
            Err(JournalError::WriterFailed { dropped, error }) => {
                assert_eq!(dropped, 2, "records 2 and 3 were lost ({error})");
            }
            other => panic!("expected WriterFailed, got {other:?}"),
        }
        let loaded = load_journal(&path).unwrap();
        assert_eq!(
            loaded.records.len(),
            2,
            "the prefix before the failure stays valid and resumable"
        );
        let _ = std::fs::remove_file(&path);
    }
}
