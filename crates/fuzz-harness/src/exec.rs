//! The parallel campaign engine: a deterministic work scheduler that every
//! fuzzing driver in this crate runs on.
//!
//! The paper's campaigns are embarrassingly parallel at the test-case level —
//! each kernel (or EMI base, or benchmark variant) is generated, compiled and
//! executed independently — but naive parallelisation destroys the property
//! that makes fuzzing campaigns debuggable: reproducibility.  The scheduler
//! therefore enforces three invariants:
//!
//! 1. **Per-job seeding** — every job derives its RNG seed as
//!    `campaign_seed → splitmix → job_seed` ([`job_seed`]), a pure function
//!    of the campaign seed and the job *index*, never of the worker thread
//!    or completion order.
//! 2. **Index-ordered aggregation** — results are merged in job-index order
//!    ([`Scheduler::run`] returns them that way), so any fold over them is
//!    oblivious to scheduling.
//! 3. **Contained failures** — a panicking job is caught on the worker,
//!    surfaced as [`JobResult::Failed`], and never wedges the queue; the
//!    remaining jobs still complete.
//!
//! Together these guarantee the headline property (exercised by the
//! `scheduler_determinism` integration tests): for a fixed campaign seed the
//! rendered tables are **bit-identical at any thread count**.
//!
//! Mechanically this is a bounded-queue thread pool: jobs are fed through an
//! [`mpsc::sync_channel`] whose capacity bounds the number of in-flight
//! jobs, workers created with [`std::thread::scope`] pull from the shared
//! receiver whenever they go idle (the channel acts as the work-distribution
//! deque), and results flow back over an unbounded channel tagged with their
//! job index.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

pub use clsmith::rng::job_seed;

/// A unit of campaign work: owns everything it needs (inputs by value,
/// shared read-only state behind [`Arc`]) and produces a result shard that
/// the driver merges in job-index order.
pub trait Job: Send {
    /// The per-job result shard.
    type Output: Send;

    /// Executes the job.  Runs on a worker thread; panics are contained and
    /// reported as [`JobResult::Failed`].
    fn run(self) -> Self::Output;
}

/// What became of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobResult<T> {
    /// The job ran to completion.
    Completed(T),
    /// The job panicked on its worker; the queue kept draining.
    Failed(JobFailure),
}

impl<T> JobResult<T> {
    /// The completed value, or `None` for a failed job.
    pub fn completed(self) -> Option<T> {
        match self {
            JobResult::Completed(v) => Some(v),
            JobResult::Failed(_) => None,
        }
    }
}

/// Description of a contained job panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Index of the failed job in the submitted batch.
    pub index: usize,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

/// Unwraps a batch of results, panicking (deterministically, on the lowest
/// failed job index) if any job failed.
///
/// The campaign drivers use this to preserve their historical semantics:
/// a panic inside kernel generation or execution still aborts the campaign,
/// but it does so identically at every thread count instead of tearing down
/// whichever worker happened to run the job.
pub fn expect_completed<T>(results: Vec<JobResult<T>>) -> Vec<T> {
    results
        .into_iter()
        .map(|r| match r {
            JobResult::Completed(v) => v,
            JobResult::Failed(failure) => panic!("{failure}"),
        })
        .collect()
}

/// A fixed-size worker pool with a bounded work queue and index-ordered
/// result aggregation.
///
/// `Scheduler` is cheap to construct and carries no OS resources: threads
/// are scoped to each [`Scheduler::run`] call, so a sequential fallback
/// (`threads == 1`) spawns nothing at all.
#[derive(Debug, Clone)]
pub struct Scheduler {
    threads: usize,
    queue_capacity: usize,
}

impl Scheduler {
    /// A scheduler with `threads` workers (clamped to at least 1).  The
    /// work queue is bounded at four jobs per worker, enough to keep
    /// workers busy without materialising a whole campaign up front.
    pub fn new(threads: usize) -> Scheduler {
        let threads = threads.max(1);
        Scheduler {
            threads,
            queue_capacity: threads * 4,
        }
    }

    /// A single-worker scheduler that runs every job inline, in order.
    pub fn sequential() -> Scheduler {
        Scheduler::new(1)
    }

    /// The default scheduler: `FUZZ_THREADS` from the environment if set,
    /// otherwise the machine's available parallelism.  Campaign results do
    /// not depend on the choice — only wall-clock time does.
    pub fn from_env() -> Scheduler {
        let threads = std::env::var("FUZZ_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Scheduler::new(threads)
    }

    /// Overrides the bound on in-flight jobs (clamped to at least 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Scheduler {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs a batch of jobs and returns one [`JobResult`] per job, **in
    /// job-index order**, regardless of which workers ran what and in which
    /// order they finished.
    pub fn run<J: Job>(&self, jobs: Vec<J>) -> Vec<JobResult<J::Output>> {
        self.run_streaming(jobs, |_, _| {})
    }

    /// [`Scheduler::run`] with a completion-order observer: `on_result` is
    /// invoked on the collecting thread for every job **as it finishes**
    /// (not in index order), before the batch-wide index-ordered result
    /// vector is assembled.
    ///
    /// This is the seam the shard layer's journal hangs off: the observer
    /// forwards each completed record to the journal writer thread while
    /// the batch is still executing (feeding and collection overlap on
    /// separate threads), so a process killed mid-batch has journaled
    /// everything that finished more than a moment earlier — and workers
    /// never touch IO.
    pub fn run_streaming<J: Job>(
        &self,
        jobs: Vec<J>,
        mut on_result: impl FnMut(usize, &JobResult<J::Output>),
    ) -> Vec<JobResult<J::Output>> {
        let count = jobs.len();
        if self.threads == 1 || count <= 1 {
            return jobs
                .into_iter()
                .enumerate()
                .map(|(i, job)| {
                    let result = run_one(i, job);
                    on_result(i, &result);
                    result
                })
                .collect();
        }

        let workers = self.threads.min(count);
        let (job_tx, job_rx) = mpsc::sync_channel::<(usize, J)>(self.queue_capacity);
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = mpsc::channel::<(usize, JobResult<J::Output>)>();

        let mut slots: Vec<Option<JobResult<J::Output>>> = Vec::with_capacity(count);
        slots.resize_with(count, || None);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = Arc::clone(&job_rx);
                let tx = result_tx.clone();
                scope.spawn(move || loop {
                    // Hold the lock only to pull the next job; execution is
                    // fully concurrent.  `recv` returning Err means the
                    // sender is gone and the queue is drained.
                    let next = rx.lock().expect("job queue lock poisoned").recv();
                    match next {
                        Ok((index, job)) => {
                            if tx.send((index, run_one(index, job))).is_err() {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                });
            }
            drop(result_tx);

            // Feed the bounded queue from its own thread (back-pressure
            // blocks the send when all workers are busy and the queue is
            // full) so that this thread collects — and hands to
            // `on_result` — each result as it completes.  Feeding and
            // collecting must overlap: a journal observer that only ran
            // after the whole batch was enqueued would leave every
            // already-finished result stranded in memory until the end of
            // the campaign, exactly what the journal exists to prevent.
            scope.spawn(move || {
                for item in jobs.into_iter().enumerate() {
                    job_tx
                        .send(item)
                        .expect("all workers exited with jobs pending");
                }
            });

            // Collect exactly `count` results.  Every job sends exactly one
            // result — even a panicking job, because the panic is caught
            // around `Job::run` — so this cannot hang.
            for (index, result) in result_rx.iter() {
                debug_assert!(slots[index].is_none(), "job {index} reported twice");
                on_result(index, &result);
                slots[index] = Some(result);
            }
        });

        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("job {i} produced no result")))
            .collect()
    }

    /// Runs a batch and unwraps every result (see [`expect_completed`]).
    pub fn run_all<J: Job>(&self, jobs: Vec<J>) -> Vec<J::Output> {
        expect_completed(self.run(jobs))
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::from_env()
    }
}

/// Executes one job with panic containment.
fn run_one<J: Job>(index: usize, job: J) -> JobResult<J::Output> {
    match catch_unwind(AssertUnwindSafe(move || job.run())) {
        Ok(value) => JobResult::Completed(value),
        Err(payload) => {
            // `&*payload` reborrows the payload itself; a plain `&payload`
            // would coerce the `Box` into the trait object and defeat the
            // downcasts below.
            JobResult::Failed(JobFailure {
                index,
                message: panic_message(&*payload),
            })
        }
    }
}

/// Best-effort stringification of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial job for exercising the pool.
    struct Square(u64);

    impl Job for Square {
        type Output = u64;
        fn run(self) -> u64 {
            if self.0 == u64::MAX {
                panic!("poisoned job");
            }
            self.0 * self.0
        }
    }

    /// The platform/AST types that jobs move across threads must be
    /// thread-safe; this is the compile-time audit the `opencl-sim` and
    /// `core` layers are held to.
    #[test]
    fn shared_state_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<clc::Program>();
        assert_send_sync::<clsmith::GeneratorOptions>();
        assert_send_sync::<clsmith::Rng>();
        assert_send_sync::<opencl_sim::Configuration>();
        assert_send_sync::<opencl_sim::ExecOptions>();
        assert_send_sync::<opencl_sim::TestOutcome>();
        assert_send_sync::<crate::TestTarget>();
        assert_send_sync::<Scheduler>();
    }

    #[test]
    fn results_come_back_in_job_index_order_at_any_thread_count() {
        let jobs = |n: u64| (0..n).map(Square).collect::<Vec<_>>();
        let expected: Vec<u64> = (0..97).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            let scheduler = Scheduler::new(threads);
            assert_eq!(scheduler.run_all(jobs(97)), expected, "{threads} threads");
        }
    }

    #[test]
    fn run_streaming_observes_every_result_exactly_once() {
        // The observer fires in completion order (any order), on the
        // collecting thread, once per job — the contract the campaign
        // journal relies on.
        for threads in [1usize, 4] {
            let scheduler = Scheduler::new(threads);
            let mut seen = Vec::new();
            let results =
                scheduler.run_streaming((0..32).map(Square).collect::<Vec<_>>(), |i, r| {
                    assert_eq!(*r, JobResult::Completed((i * i) as u64));
                    seen.push(i);
                });
            let mut sorted = seen.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..32).collect::<Vec<_>>(), "{threads} threads");
            assert_eq!(results.len(), 32);
        }
    }

    #[test]
    fn empty_and_single_batches_work() {
        let scheduler = Scheduler::new(4);
        assert_eq!(scheduler.run_all(Vec::<Square>::new()), Vec::<u64>::new());
        assert_eq!(scheduler.run_all(vec![Square(3)]), vec![9]);
    }

    #[test]
    fn panics_are_contained_and_surfaced_as_job_failures() {
        // A panicking job must neither hang the queue nor take down its
        // worker pool: all other jobs still complete, and the failure
        // reports the correct index and message.
        for threads in [1, 4] {
            let scheduler = Scheduler::new(threads);
            let mut jobs: Vec<Square> = (0..16).map(Square).collect();
            jobs[5] = Square(u64::MAX);
            let results = scheduler.run(jobs);
            assert_eq!(results.len(), 16);
            for (i, result) in results.iter().enumerate() {
                if i == 5 {
                    assert_eq!(
                        *result,
                        JobResult::Failed(JobFailure {
                            index: 5,
                            message: "poisoned job".to_string()
                        })
                    );
                } else {
                    assert_eq!(*result, JobResult::Completed((i * i) as u64), "job {i}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "job 2 panicked: poisoned job")]
    fn expect_completed_reraises_the_failure_deterministically() {
        let scheduler = Scheduler::new(4);
        let jobs = vec![Square(1), Square(2), Square(u64::MAX), Square(4)];
        scheduler.run_all(jobs);
    }

    #[test]
    fn queue_capacity_is_respected_without_deadlock() {
        // A queue bound smaller than the batch exercises back-pressure.
        let scheduler = Scheduler::new(2).with_queue_capacity(1);
        let got = scheduler.run_all((0..64).map(Square).collect::<Vec<_>>());
        assert_eq!(got.len(), 64);
    }

    /// A fixed-latency job (wall-clock cost, no CPU cost).
    struct Sleep(std::time::Duration);

    impl Job for Sleep {
        type Output = ();
        fn run(self) {
            std::thread::sleep(self.0);
        }
    }

    #[test]
    fn run_streaming_delivers_results_while_the_batch_is_still_running() {
        // The journal's crash guarantee rests on results reaching the
        // observer as they finish, not after the whole batch is enqueued:
        // with 8 × 30ms jobs on 2 workers (queue bound 1), the first
        // callback must arrive well before the ~120ms total — if feeding
        // and collection were sequential, every callback would fire at the
        // very end.
        let jobs: Vec<Sleep> = (0..8)
            .map(|_| Sleep(std::time::Duration::from_millis(30)))
            .collect();
        let scheduler = Scheduler::new(2).with_queue_capacity(1);
        let start = std::time::Instant::now();
        let mut first_callback = None;
        scheduler.run_streaming(jobs, |_, _| {
            first_callback.get_or_insert_with(|| start.elapsed());
        });
        let total = start.elapsed();
        let first = first_callback.expect("observer ran");
        assert!(
            first.as_secs_f64() <= 0.5 * total.as_secs_f64(),
            "first result reached the observer only at {first:?} of {total:?} — \
             collection is not overlapping execution"
        );
    }

    #[test]
    fn workers_overlap_job_execution() {
        // 8 jobs × 30ms: one worker needs ≥240ms, four workers ≥60ms.  The
        // ≥2× margin keeps this robust on loaded machines while still
        // proving jobs run concurrently (this holds even on a single core,
        // because the cost here is latency, not CPU).
        let jobs = || {
            (0..8)
                .map(|_| Sleep(std::time::Duration::from_millis(30)))
                .collect()
        };
        let start = std::time::Instant::now();
        Scheduler::new(1).run_all(jobs());
        let sequential = start.elapsed();
        let start = std::time::Instant::now();
        Scheduler::new(4).run_all(jobs());
        let parallel = start.elapsed();
        assert!(
            sequential.as_secs_f64() >= 2.0 * parallel.as_secs_f64(),
            "4 workers did not overlap: sequential {sequential:?}, parallel {parallel:?}"
        );
    }

    #[test]
    fn from_env_and_default_produce_at_least_one_worker() {
        assert!(Scheduler::from_env().threads() >= 1);
        assert!(Scheduler::default().threads() >= 1);
        assert_eq!(Scheduler::sequential().threads(), 1);
        assert_eq!(Scheduler::new(0).threads(), 1);
    }
}
