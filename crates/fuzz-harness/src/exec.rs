//! The parallel campaign engine: a deterministic work scheduler that every
//! fuzzing driver in this crate runs on.
//!
//! The paper's campaigns are embarrassingly parallel at the test-case level —
//! each kernel (or EMI base, or benchmark variant) is generated, compiled and
//! executed independently — but naive parallelisation destroys the property
//! that makes fuzzing campaigns debuggable: reproducibility.  The scheduler
//! therefore enforces three invariants:
//!
//! 1. **Per-job seeding** — every job derives its RNG seed as
//!    `campaign_seed → splitmix → job_seed` ([`job_seed`]), a pure function
//!    of the campaign seed and the job *index*, never of the worker thread
//!    or completion order.
//! 2. **Index-ordered aggregation** — results are merged in job-index order
//!    ([`Scheduler::run`] returns them that way), so any fold over them is
//!    oblivious to scheduling.
//! 3. **Contained failures** — a panicking job is caught on the worker,
//!    surfaced as [`JobResult::Failed`], and never wedges the queue; the
//!    remaining jobs still complete.
//!
//! Together these guarantee the headline property (exercised by the
//! `scheduler_determinism` integration tests): for a fixed campaign seed the
//! rendered tables are **bit-identical at any thread count**.
//!
//! Mechanically this is a bounded-queue thread pool: jobs are fed through an
//! [`mpsc::sync_channel`] whose capacity bounds the number of in-flight
//! jobs, workers created with [`std::thread::scope`] pull from the shared
//! receiver whenever they go idle (the channel acts as the work-distribution
//! deque), and results flow back over an unbounded channel tagged with their
//! job index.
//!
//! ## Staged jobs and the pipelined mode
//!
//! Campaign jobs are not opaque: each one is *generate a test case → execute
//! it → judge the outcomes*.  The [`StagedJob`] trait makes those boundaries
//! explicit, and [`SchedulerMode::Pipelined`] runs them as a bounded
//! hand-off pipeline instead of whole-job batches: every worker pulls the
//! most-advanced task available (judging before executing before
//! generating), so one worker can execute kernel *k* while another generates
//! kernel *k+1*, admission control bounds how many jobs are in flight across
//! all stages, and the stage-granular queue shortens the ragged drain at the
//! end of a batch (a worker never sits idle behind one last whole job).
//! Stage functions are pure per job and results are still keyed by job
//! index, so the two modes are **bit-identical** for any fixed campaign
//! seed, at any worker count — the `scheduler_determinism` tests pin Tables
//! 1/4/5 across modes, worker counts and interpreter tiers.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

pub use clsmith::rng::job_seed;

/// A unit of campaign work: owns everything it needs (inputs by value,
/// shared read-only state behind [`Arc`]) and produces a result shard that
/// the driver merges in job-index order.
pub trait Job: Send {
    /// The per-job result shard.
    type Output: Send;

    /// Executes the job.  Runs on a worker thread; panics are contained and
    /// reported as [`JobResult::Failed`].
    fn run(self) -> Self::Output;
}

/// A campaign job with explicit *generate → execute → judge* stage
/// boundaries.
///
/// Stage one consumes the job description and produces the test case; stage
/// two runs it; stage three turns raw outcomes into the job's result shard.
/// The intermediate types carry everything the later stages need (they are
/// associated functions, not methods, so a stage can run on a different
/// worker than the one that produced its input — which is the whole point).
/// Each stage must be a pure function of its input: the scheduler guarantees
/// bit-identical results between [batch](SchedulerMode::Batch) and
/// [pipelined](SchedulerMode::Pipelined) execution only under that contract.
pub trait StagedJob: Send {
    /// The generated test case (plus whatever execution context it needs).
    type Generated: Send;
    /// The raw execution outcomes (plus whatever judging context they need).
    type Executed: Send;
    /// The per-job result shard.
    type Output: Send;

    /// Stage 1: generate the test case from the job description.
    fn generate(self) -> Self::Generated;
    /// Stage 2: execute the generated test case.
    fn execute(generated: Self::Generated) -> Self::Executed;
    /// Stage 3: judge the execution outcomes.
    fn judge(executed: Self::Executed) -> Self::Output;
}

/// How a scheduler turns a batch of [`StagedJob`]s into results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerMode {
    /// Each job runs generate → execute → judge back to back on one worker
    /// (the historical behaviour; plain [`Job`]s always run this way).
    #[default]
    Batch,
    /// Stages run as a bounded hand-off pipeline: any worker picks up the
    /// most-advanced pending stage of any in-flight job, so generator-bound
    /// and emulator-bound work overlap across jobs.
    Pipelined,
}

impl SchedulerMode {
    /// The mode selected by the environment: [`SchedulerMode::Pipelined`]
    /// when `FUZZ_PIPELINE` is `1`/`true`/`yes`, batch otherwise.
    pub fn from_env() -> SchedulerMode {
        SchedulerMode::from_value(std::env::var("FUZZ_PIPELINE").ok().as_deref())
    }

    /// [`SchedulerMode::from_env`]'s parsing rule on an explicit value
    /// (testable without touching the process environment).
    pub fn from_value(value: Option<&str>) -> SchedulerMode {
        match value {
            Some("1") | Some("true") | Some("yes") => SchedulerMode::Pipelined,
            _ => SchedulerMode::Batch,
        }
    }

    /// Human-readable name (bench/table output).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerMode::Batch => "batch",
            SchedulerMode::Pipelined => "pipelined",
        }
    }
}

/// The pipeline stages, in hand-off order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Test-case generation.
    Generate,
    /// Emulator execution.
    Execute,
    /// Outcome judging.
    Judge,
}

impl Stage {
    /// All stages in hand-off order.
    pub const ALL: [Stage; 3] = [Stage::Generate, Stage::Execute, Stage::Judge];

    /// Stable lowercase name (bench JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Generate => "generate",
            Stage::Execute => "execute",
            Stage::Judge => "judge",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Generate => 0,
            Stage::Execute => 1,
            Stage::Judge => 2,
        }
    }
}

/// What a staged run measured about itself: per-stage busy time (summed over
/// workers), wall-clock, and the depth of the stage hand-off queue.  The
/// throughput bench surfaces these as the `pipeline_*` JSON axes.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineMetrics {
    /// Total busy time per stage, summed across workers.
    pub stage_busy: [Duration; 3],
    /// Wall-clock time of the whole staged run.
    pub wall: Duration,
    /// Number of workers that ran the batch.
    pub workers: usize,
    /// Maximum observed depth of the stage hand-off queue (0 in batch mode,
    /// where stages never cross workers).
    pub handoff_depth_max: usize,
    /// Sum of observed hand-off queue depths (one sample per hand-off).
    pub handoff_depth_sum: u64,
    /// Number of hand-off depth samples.
    pub handoff_samples: u64,
}

impl PipelineMetrics {
    /// Fraction of total worker capacity (`wall × workers`) spent busy in
    /// `stage` — the stage-occupancy axis of the throughput bench.
    pub fn occupancy(&self, stage: Stage) -> f64 {
        let capacity = self.wall.as_secs_f64() * self.workers.max(1) as f64;
        if capacity <= 0.0 {
            0.0
        } else {
            self.stage_busy[stage.index()].as_secs_f64() / capacity
        }
    }

    /// Mean depth of the hand-off queue over all hand-offs.
    pub fn mean_handoff_depth(&self) -> f64 {
        if self.handoff_samples == 0 {
            0.0
        } else {
            self.handoff_depth_sum as f64 / self.handoff_samples as f64
        }
    }
}

/// What became of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobResult<T> {
    /// The job ran to completion.
    Completed(T),
    /// The job panicked on its worker; the queue kept draining.
    Failed(JobFailure),
}

impl<T> JobResult<T> {
    /// The completed value, or `None` for a failed job.
    pub fn completed(self) -> Option<T> {
        match self {
            JobResult::Completed(v) => Some(v),
            JobResult::Failed(_) => None,
        }
    }
}

/// Description of a contained job panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Index of the failed job in the submitted batch.
    pub index: usize,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

/// Unwraps a batch of results, panicking (deterministically, on the lowest
/// failed job index) if any job failed.
///
/// The campaign drivers use this to preserve their historical semantics:
/// a panic inside kernel generation or execution still aborts the campaign,
/// but it does so identically at every thread count instead of tearing down
/// whichever worker happened to run the job.
pub fn expect_completed<T>(results: Vec<JobResult<T>>) -> Vec<T> {
    results
        .into_iter()
        .map(|r| match r {
            JobResult::Completed(v) => v,
            JobResult::Failed(failure) => panic!("{failure}"),
        })
        .collect()
}

/// A fixed-size worker pool with a bounded work queue and index-ordered
/// result aggregation.
///
/// `Scheduler` is cheap to construct and carries no OS resources: threads
/// are scoped to each [`Scheduler::run`] call, so a sequential fallback
/// (`threads == 1`) spawns nothing at all.
#[derive(Debug, Clone)]
pub struct Scheduler {
    threads: usize,
    queue_capacity: usize,
    mode: SchedulerMode,
}

impl Scheduler {
    /// A scheduler with `threads` workers (clamped to at least 1 — a
    /// zero-worker pool could never drain its queue, so `0` means "the
    /// sequential fallback", not "no workers").  The work queue is bounded
    /// at four jobs per worker, enough to keep workers busy without
    /// materialising a whole campaign up front.
    pub fn new(threads: usize) -> Scheduler {
        let threads = threads.max(1);
        Scheduler {
            threads,
            queue_capacity: threads * 4,
            mode: SchedulerMode::Batch,
        }
    }

    /// A single-worker scheduler that runs every job inline, in order.
    pub fn sequential() -> Scheduler {
        Scheduler::new(1)
    }

    /// The default scheduler: `FUZZ_THREADS` from the environment if set
    /// (`FUZZ_THREADS=0` clamps to the sequential fallback via
    /// [`Scheduler::new`]), otherwise the machine's available parallelism;
    /// `FUZZ_PIPELINE=1` selects the pipelined mode.  Campaign results do
    /// not depend on either choice — only wall-clock time does.
    pub fn from_env() -> Scheduler {
        Scheduler::from_env_values(
            std::env::var("FUZZ_THREADS").ok().as_deref(),
            std::env::var("FUZZ_PIPELINE").ok().as_deref(),
        )
    }

    /// [`Scheduler::from_env`]'s construction rule on explicit
    /// `FUZZ_THREADS`/`FUZZ_PIPELINE` values — factored out so tests can
    /// pin the parsing (including the `FUZZ_THREADS=0` clamp) without
    /// mutating the process environment, which is undefined behaviour to
    /// race against concurrent readers.
    fn from_env_values(threads: Option<&str>, pipeline: Option<&str>) -> Scheduler {
        let threads = threads
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Scheduler::new(threads).with_mode(SchedulerMode::from_value(pipeline))
    }

    /// Overrides the bound on in-flight jobs (clamped to at least 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Scheduler {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Selects how [`StagedJob`] batches run (plain [`Job`] batches always
    /// run whole).  Results are bit-identical across modes.
    pub fn with_mode(mut self, mode: SchedulerMode) -> Scheduler {
        self.mode = mode;
        self
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The staged-execution mode.
    pub fn mode(&self) -> SchedulerMode {
        self.mode
    }

    /// Runs a batch of jobs and returns one [`JobResult`] per job, **in
    /// job-index order**, regardless of which workers ran what and in which
    /// order they finished.
    pub fn run<J: Job>(&self, jobs: Vec<J>) -> Vec<JobResult<J::Output>> {
        self.run_streaming(jobs, |_, _| {})
    }

    /// [`Scheduler::run`] with a completion-order observer: `on_result` is
    /// invoked on the collecting thread for every job **as it finishes**
    /// (not in index order), before the batch-wide index-ordered result
    /// vector is assembled.
    ///
    /// This is the seam the shard layer's journal hangs off: the observer
    /// forwards each completed record to the journal writer thread while
    /// the batch is still executing (feeding and collection overlap on
    /// separate threads), so a process killed mid-batch has journaled
    /// everything that finished more than a moment earlier — and workers
    /// never touch IO.
    pub fn run_streaming<J: Job>(
        &self,
        jobs: Vec<J>,
        mut on_result: impl FnMut(usize, &JobResult<J::Output>),
    ) -> Vec<JobResult<J::Output>> {
        let count = jobs.len();
        if self.threads == 1 || count <= 1 {
            return jobs
                .into_iter()
                .enumerate()
                .map(|(i, job)| {
                    let result = run_one(i, job);
                    on_result(i, &result);
                    result
                })
                .collect();
        }

        let workers = self.threads.min(count);
        let (job_tx, job_rx) = mpsc::sync_channel::<(usize, J)>(self.queue_capacity);
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = mpsc::channel::<(usize, JobResult<J::Output>)>();

        let mut slots: Vec<Option<JobResult<J::Output>>> = Vec::with_capacity(count);
        slots.resize_with(count, || None);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = Arc::clone(&job_rx);
                let tx = result_tx.clone();
                scope.spawn(move || loop {
                    // Hold the lock only to pull the next job; execution is
                    // fully concurrent.  `recv` returning Err means the
                    // sender is gone and the queue is drained.
                    let next = rx.lock().expect("job queue lock poisoned").recv();
                    match next {
                        Ok((index, job)) => {
                            if tx.send((index, run_one(index, job))).is_err() {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                });
            }
            drop(result_tx);

            // Feed the bounded queue from its own thread (back-pressure
            // blocks the send when all workers are busy and the queue is
            // full) so that this thread collects — and hands to
            // `on_result` — each result as it completes.  Feeding and
            // collecting must overlap: a journal observer that only ran
            // after the whole batch was enqueued would leave every
            // already-finished result stranded in memory until the end of
            // the campaign, exactly what the journal exists to prevent.
            scope.spawn(move || {
                for item in jobs.into_iter().enumerate() {
                    job_tx
                        .send(item)
                        .expect("all workers exited with jobs pending");
                }
            });

            // Collect exactly `count` results.  Every job sends exactly one
            // result — even a panicking job, because the panic is caught
            // around `Job::run` — so this cannot hang.
            for (index, result) in result_rx.iter() {
                debug_assert!(slots[index].is_none(), "job {index} reported twice");
                on_result(index, &result);
                slots[index] = Some(result);
            }
        });

        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("job {i} produced no result")))
            .collect()
    }

    /// Runs a batch and unwraps every result (see [`expect_completed`]).
    pub fn run_all<J: Job>(&self, jobs: Vec<J>) -> Vec<J::Output> {
        expect_completed(self.run(jobs))
    }

    /// Runs a batch of [`StagedJob`]s under the scheduler's
    /// [mode](SchedulerMode) and returns one [`JobResult`] per job in
    /// job-index order — [`Scheduler::run`] for staged jobs.
    pub fn run_staged<J: StagedJob>(&self, jobs: Vec<J>) -> Vec<JobResult<J::Output>> {
        self.run_staged_streaming(jobs, |_, _| {})
    }

    /// [`Scheduler::run_staged`] with a completion-order observer (the seam
    /// the shard layer's journal hangs off; see
    /// [`Scheduler::run_streaming`]).  The observer contract is identical in
    /// both modes: invoked on the collecting thread, once per job, as each
    /// job's **judge** stage finishes.
    pub fn run_staged_streaming<J: StagedJob>(
        &self,
        jobs: Vec<J>,
        on_result: impl FnMut(usize, &JobResult<J::Output>),
    ) -> Vec<JobResult<J::Output>> {
        self.run_staged_metrics(jobs, on_result).0
    }

    /// [`Scheduler::run_staged_streaming`], additionally reporting what the
    /// run measured about itself ([`PipelineMetrics`]): per-stage busy time
    /// in both modes, hand-off queue depth in the pipelined mode.
    pub fn run_staged_metrics<J: StagedJob>(
        &self,
        jobs: Vec<J>,
        on_result: impl FnMut(usize, &JobResult<J::Output>),
    ) -> (Vec<JobResult<J::Output>>, PipelineMetrics) {
        match self.mode {
            SchedulerMode::Batch => self.run_staged_batch(jobs, on_result),
            SchedulerMode::Pipelined => self.run_staged_pipelined(jobs, on_result),
        }
    }

    /// Runs a staged batch and unwraps every result (see
    /// [`expect_completed`]).
    pub fn run_staged_all<J: StagedJob>(&self, jobs: Vec<J>) -> Vec<J::Output> {
        expect_completed(self.run_staged(jobs))
    }

    /// Batch mode for staged jobs: wrap each job so its three stages run
    /// back to back on one worker (timing each stage into shared counters),
    /// then reuse the plain bounded-queue pool.
    fn run_staged_batch<J: StagedJob>(
        &self,
        jobs: Vec<J>,
        on_result: impl FnMut(usize, &JobResult<J::Output>),
    ) -> (Vec<JobResult<J::Output>>, PipelineMetrics) {
        let count = jobs.len();
        let busy: Arc<[AtomicU64; 3]> = Arc::new(Default::default());
        let wrapped: Vec<WholeStagedJob<J>> = jobs
            .into_iter()
            .map(|job| WholeStagedJob {
                job,
                busy: Arc::clone(&busy),
            })
            .collect();
        let start = Instant::now();
        let results = self.run_streaming(wrapped, on_result);
        let mut metrics = PipelineMetrics {
            wall: start.elapsed(),
            workers: self.threads.min(count.max(1)),
            ..PipelineMetrics::default()
        };
        for (slot, counter) in metrics.stage_busy.iter_mut().zip(busy.iter()) {
            *slot = Duration::from_nanos(counter.load(Ordering::Relaxed));
        }
        (results, metrics)
    }

    /// The pipelined mode: a shared stage queue under one mutex, workers
    /// preferring the most-advanced pending stage (judge > execute >
    /// generate), and admission control bounding in-flight jobs at the
    /// queue capacity.  See the module docs for why this is deterministic.
    fn run_staged_pipelined<J: StagedJob>(
        &self,
        jobs: Vec<J>,
        mut on_result: impl FnMut(usize, &JobResult<J::Output>),
    ) -> (Vec<JobResult<J::Output>>, PipelineMetrics) {
        let count = jobs.len();
        let start = Instant::now();
        let mut metrics = PipelineMetrics {
            workers: self.threads.min(count.max(1)),
            ..PipelineMetrics::default()
        };

        // Inline fallback: one worker (or a trivial batch) cannot overlap
        // stages, so run each job's stages back to back in index order —
        // exactly the batch sequential path, with stage timing.
        if self.threads == 1 || count <= 1 {
            let results = jobs
                .into_iter()
                .enumerate()
                .map(|(index, job)| {
                    let result = run_stages_inline(index, job, &mut metrics.stage_busy);
                    on_result(index, &result);
                    result
                })
                .collect();
            metrics.wall = start.elapsed();
            return (results, metrics);
        }

        let workers = self.threads.min(count);
        let shared = PipelineShared {
            state: Mutex::new(PipelineState {
                queue: VecDeque::new(),
                jobs: jobs.into_iter().map(Some).collect(),
                next: 0,
                in_flight: 0,
                completed: 0,
                depth_max: 0,
                depth_sum: 0,
                depth_samples: 0,
            }),
            ready: Condvar::new(),
            capacity: self.queue_capacity.max(workers),
            count,
            busy: Default::default(),
        };
        let (result_tx, result_rx) = mpsc::channel::<(usize, JobResult<J::Output>)>();

        let mut slots: Vec<Option<JobResult<J::Output>>> = Vec::with_capacity(count);
        slots.resize_with(count, || None);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let shared = &shared;
                let tx = result_tx.clone();
                scope.spawn(move || pipeline_worker(shared, tx));
            }
            drop(result_tx);

            // Collect exactly `count` results on this thread, in completion
            // order, so the journal observer sees each job as it finishes —
            // the same crash guarantee as the batch collector.
            for (index, result) in result_rx.iter() {
                debug_assert!(slots[index].is_none(), "job {index} reported twice");
                on_result(index, &result);
                slots[index] = Some(result);
            }
        });

        let state = shared.state.into_inner().expect("pipeline lock poisoned");
        metrics.handoff_depth_max = state.depth_max;
        metrics.handoff_depth_sum = state.depth_sum;
        metrics.handoff_samples = state.depth_samples;
        for (slot, counter) in metrics.stage_busy.iter_mut().zip(shared.busy.iter()) {
            *slot = Duration::from_nanos(counter.load(Ordering::Relaxed));
        }
        metrics.wall = start.elapsed();

        let results = slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("job {i} produced no result")))
            .collect();
        (results, metrics)
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::from_env()
    }
}

/// A [`StagedJob`] wrapped to run whole on one worker (batch mode), timing
/// each stage into the shared per-stage counters.
struct WholeStagedJob<J: StagedJob> {
    job: J,
    busy: Arc<[AtomicU64; 3]>,
}

impl<J: StagedJob> Job for WholeStagedJob<J> {
    type Output = J::Output;

    fn run(self) -> J::Output {
        let record = |stage: Stage, start: Instant| {
            self.busy[stage.index()]
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        };
        let start = Instant::now();
        let generated = J::generate(self.job);
        record(Stage::Generate, start);
        let start = Instant::now();
        let executed = J::execute(generated);
        record(Stage::Execute, start);
        let start = Instant::now();
        let output = J::judge(executed);
        record(Stage::Judge, start);
        output
    }
}

/// Runs one job's three stages back to back with panic containment and
/// per-stage timing — the pipelined mode's sequential fallback.
fn run_stages_inline<J: StagedJob>(
    index: usize,
    job: J,
    busy: &mut [Duration; 3],
) -> JobResult<J::Output> {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        let start = Instant::now();
        let generated = J::generate(job);
        busy[Stage::Generate.index()] += start.elapsed();
        let start = Instant::now();
        let executed = J::execute(generated);
        busy[Stage::Execute.index()] += start.elapsed();
        let start = Instant::now();
        let output = J::judge(executed);
        busy[Stage::Judge.index()] += start.elapsed();
        output
    }));
    match caught {
        Ok(value) => JobResult::Completed(value),
        Err(payload) => JobResult::Failed(JobFailure {
            index,
            message: panic_message(&*payload),
        }),
    }
}

/// A pending stage of an in-flight job in the pipelined mode's hand-off
/// queue (generate tasks are synthesised by admission control, so only the
/// later stages appear here).
enum StageTask<J: StagedJob> {
    Execute(usize, J::Generated),
    Judge(usize, J::Executed),
}

/// Mutable pipeline state, guarded by [`PipelineShared::state`].
struct PipelineState<J: StagedJob> {
    /// Pending later-stage tasks.  Judge tasks are pushed to the front and
    /// execute tasks to the back, so `pop_front` drains the most-advanced
    /// work first — bounding how much generated-but-unjudged state exists.
    queue: VecDeque<StageTask<J>>,
    /// Unadmitted jobs (`None` once taken), indexed by job index.
    jobs: Vec<Option<J>>,
    /// Next unadmitted job index.
    next: usize,
    /// Jobs admitted but not yet completed (any stage).
    in_flight: usize,
    /// Jobs fully completed (or failed).
    completed: usize,
    /// Hand-off queue depth telemetry.
    depth_max: usize,
    depth_sum: u64,
    depth_samples: u64,
}

/// Everything the pipeline's workers share.
struct PipelineShared<J: StagedJob> {
    state: Mutex<PipelineState<J>>,
    /// Signalled when a task is pushed or a job completes.
    ready: Condvar,
    /// Bound on in-flight jobs (admission control).
    capacity: usize,
    /// Total job count.
    count: usize,
    /// Per-stage busy nanoseconds, summed across workers.
    busy: [AtomicU64; 3],
}

/// What a worker decided to do next while holding the pipeline lock.
enum NextAction<J: StagedJob> {
    Run(StageTask<J>),
    Admit(usize, J),
    Exit,
}

/// One pipeline worker: repeatedly pick the most-advanced pending stage
/// (admitting a fresh job only when nothing later-stage is queued and the
/// in-flight bound allows), run it with panic containment and stage timing,
/// and hand the follow-up task — or the finished result — onward.
fn pipeline_worker<J: StagedJob>(
    shared: &PipelineShared<J>,
    results: mpsc::Sender<(usize, JobResult<J::Output>)>,
) {
    loop {
        let action = {
            let mut state = shared.state.lock().expect("pipeline lock poisoned");
            loop {
                if let Some(task) = state.queue.pop_front() {
                    break NextAction::Run(task);
                }
                if state.next < shared.count && state.in_flight < shared.capacity {
                    let index = state.next;
                    let job = state.jobs[index].take().expect("job admitted once");
                    state.next += 1;
                    state.in_flight += 1;
                    break NextAction::Admit(index, job);
                }
                if state.completed == shared.count {
                    break NextAction::Exit;
                }
                state = shared.ready.wait(state).expect("pipeline lock poisoned");
            }
        };
        match action {
            NextAction::Exit => return,
            NextAction::Admit(index, job) => {
                let start = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    StageTask::Execute(index, J::generate(job))
                }));
                shared.busy[Stage::Generate.index()]
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                hand_off(shared, &results, index, outcome);
            }
            NextAction::Run(StageTask::Execute(index, generated)) => {
                let start = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    StageTask::Judge(index, J::execute(generated))
                }));
                shared.busy[Stage::Execute.index()]
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                hand_off(shared, &results, index, outcome);
            }
            NextAction::Run(StageTask::Judge(index, executed)) => {
                let start = Instant::now();
                let result = match catch_unwind(AssertUnwindSafe(|| J::judge(executed))) {
                    Ok(output) => JobResult::Completed(output),
                    Err(payload) => JobResult::Failed(JobFailure {
                        index,
                        message: panic_message(&*payload),
                    }),
                };
                shared.busy[Stage::Judge.index()]
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                finish_job(shared, &results, index, result);
            }
        }
    }
}

/// Queues a completed stage's follow-up task — or, if the stage panicked,
/// finishes the job as failed.
fn hand_off<J: StagedJob>(
    shared: &PipelineShared<J>,
    results: &mpsc::Sender<(usize, JobResult<J::Output>)>,
    index: usize,
    outcome: Result<StageTask<J>, Box<dyn std::any::Any + Send>>,
) {
    match outcome {
        Ok(task) => {
            let mut state = shared.state.lock().expect("pipeline lock poisoned");
            match &task {
                // Judge tasks jump the queue; execute tasks join the back.
                StageTask::Judge(..) => state.queue.push_front(task),
                StageTask::Execute(..) => state.queue.push_back(task),
            }
            let depth = state.queue.len();
            state.depth_max = state.depth_max.max(depth);
            state.depth_sum += depth as u64;
            state.depth_samples += 1;
            drop(state);
            shared.ready.notify_one();
        }
        Err(payload) => {
            let result = JobResult::Failed(JobFailure {
                index,
                message: panic_message(&*payload),
            });
            finish_job(shared, results, index, result);
        }
    }
}

/// Marks a job finished: report the result, release its in-flight slot and
/// wake every waiting worker (completion can unblock both admission and the
/// exit check).
fn finish_job<J: StagedJob>(
    shared: &PipelineShared<J>,
    results: &mpsc::Sender<(usize, JobResult<J::Output>)>,
    index: usize,
    result: JobResult<J::Output>,
) {
    let _ = results.send((index, result));
    let mut state = shared.state.lock().expect("pipeline lock poisoned");
    state.in_flight -= 1;
    state.completed += 1;
    drop(state);
    shared.ready.notify_all();
}

/// Executes one job with panic containment.
fn run_one<J: Job>(index: usize, job: J) -> JobResult<J::Output> {
    match catch_unwind(AssertUnwindSafe(move || job.run())) {
        Ok(value) => JobResult::Completed(value),
        Err(payload) => {
            // `&*payload` reborrows the payload itself; a plain `&payload`
            // would coerce the `Box` into the trait object and defeat the
            // downcasts below.
            JobResult::Failed(JobFailure {
                index,
                message: panic_message(&*payload),
            })
        }
    }
}

/// Best-effort stringification of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial job for exercising the pool.
    struct Square(u64);

    impl Job for Square {
        type Output = u64;
        fn run(self) -> u64 {
            if self.0 == u64::MAX {
                panic!("poisoned job");
            }
            self.0 * self.0
        }
    }

    /// The platform/AST types that jobs move across threads must be
    /// thread-safe; this is the compile-time audit the `opencl-sim` and
    /// `core` layers are held to.
    #[test]
    fn shared_state_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<clc::Program>();
        assert_send_sync::<clsmith::GeneratorOptions>();
        assert_send_sync::<clsmith::Rng>();
        assert_send_sync::<opencl_sim::Configuration>();
        assert_send_sync::<opencl_sim::ExecOptions>();
        assert_send_sync::<opencl_sim::TestOutcome>();
        assert_send_sync::<crate::TestTarget>();
        assert_send_sync::<Scheduler>();
    }

    #[test]
    fn results_come_back_in_job_index_order_at_any_thread_count() {
        let jobs = |n: u64| (0..n).map(Square).collect::<Vec<_>>();
        let expected: Vec<u64> = (0..97).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            let scheduler = Scheduler::new(threads);
            assert_eq!(scheduler.run_all(jobs(97)), expected, "{threads} threads");
        }
    }

    #[test]
    fn run_streaming_observes_every_result_exactly_once() {
        // The observer fires in completion order (any order), on the
        // collecting thread, once per job — the contract the campaign
        // journal relies on.
        for threads in [1usize, 4] {
            let scheduler = Scheduler::new(threads);
            let mut seen = Vec::new();
            let results =
                scheduler.run_streaming((0..32).map(Square).collect::<Vec<_>>(), |i, r| {
                    assert_eq!(*r, JobResult::Completed((i * i) as u64));
                    seen.push(i);
                });
            let mut sorted = seen.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..32).collect::<Vec<_>>(), "{threads} threads");
            assert_eq!(results.len(), 32);
        }
    }

    #[test]
    fn empty_and_single_batches_work() {
        let scheduler = Scheduler::new(4);
        assert_eq!(scheduler.run_all(Vec::<Square>::new()), Vec::<u64>::new());
        assert_eq!(scheduler.run_all(vec![Square(3)]), vec![9]);
    }

    #[test]
    fn panics_are_contained_and_surfaced_as_job_failures() {
        // A panicking job must neither hang the queue nor take down its
        // worker pool: all other jobs still complete, and the failure
        // reports the correct index and message.
        for threads in [1, 4] {
            let scheduler = Scheduler::new(threads);
            let mut jobs: Vec<Square> = (0..16).map(Square).collect();
            jobs[5] = Square(u64::MAX);
            let results = scheduler.run(jobs);
            assert_eq!(results.len(), 16);
            for (i, result) in results.iter().enumerate() {
                if i == 5 {
                    assert_eq!(
                        *result,
                        JobResult::Failed(JobFailure {
                            index: 5,
                            message: "poisoned job".to_string()
                        })
                    );
                } else {
                    assert_eq!(*result, JobResult::Completed((i * i) as u64), "job {i}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "job 2 panicked: poisoned job")]
    fn expect_completed_reraises_the_failure_deterministically() {
        let scheduler = Scheduler::new(4);
        let jobs = vec![Square(1), Square(2), Square(u64::MAX), Square(4)];
        scheduler.run_all(jobs);
    }

    #[test]
    fn queue_capacity_is_respected_without_deadlock() {
        // A queue bound smaller than the batch exercises back-pressure.
        let scheduler = Scheduler::new(2).with_queue_capacity(1);
        let got = scheduler.run_all((0..64).map(Square).collect::<Vec<_>>());
        assert_eq!(got.len(), 64);
    }

    /// A fixed-latency job (wall-clock cost, no CPU cost).
    struct Sleep(std::time::Duration);

    impl Job for Sleep {
        type Output = ();
        fn run(self) {
            std::thread::sleep(self.0);
        }
    }

    #[test]
    fn run_streaming_delivers_results_while_the_batch_is_still_running() {
        // The journal's crash guarantee rests on results reaching the
        // observer as they finish, not after the whole batch is enqueued:
        // with 8 × 30ms jobs on 2 workers (queue bound 1), the first
        // callback must arrive well before the ~120ms total — if feeding
        // and collection were sequential, every callback would fire at the
        // very end.
        let jobs: Vec<Sleep> = (0..8)
            .map(|_| Sleep(std::time::Duration::from_millis(30)))
            .collect();
        let scheduler = Scheduler::new(2).with_queue_capacity(1);
        let start = std::time::Instant::now();
        let mut first_callback = None;
        scheduler.run_streaming(jobs, |_, _| {
            first_callback.get_or_insert_with(|| start.elapsed());
        });
        let total = start.elapsed();
        let first = first_callback.expect("observer ran");
        assert!(
            first.as_secs_f64() <= 0.5 * total.as_secs_f64(),
            "first result reached the observer only at {first:?} of {total:?} — \
             collection is not overlapping execution"
        );
    }

    #[test]
    fn workers_overlap_job_execution() {
        // 8 jobs × 30ms: one worker needs ≥240ms, four workers ≥60ms.  The
        // ≥2× margin keeps this robust on loaded machines while still
        // proving jobs run concurrently (this holds even on a single core,
        // because the cost here is latency, not CPU).
        let jobs = || {
            (0..8)
                .map(|_| Sleep(std::time::Duration::from_millis(30)))
                .collect()
        };
        let start = std::time::Instant::now();
        Scheduler::new(1).run_all(jobs());
        let sequential = start.elapsed();
        let start = std::time::Instant::now();
        Scheduler::new(4).run_all(jobs());
        let parallel = start.elapsed();
        assert!(
            sequential.as_secs_f64() >= 2.0 * parallel.as_secs_f64(),
            "4 workers did not overlap: sequential {sequential:?}, parallel {parallel:?}"
        );
    }

    #[test]
    fn from_env_and_default_produce_at_least_one_worker() {
        assert!(Scheduler::from_env().threads() >= 1);
        assert!(Scheduler::default().threads() >= 1);
        assert_eq!(Scheduler::sequential().threads(), 1);
        assert_eq!(Scheduler::new(0).threads(), 1);
    }

    #[test]
    fn fuzz_threads_zero_clamps_to_one_worker() {
        // Pins that FUZZ_THREADS=0 reaches Scheduler::new's >= 1 clamp
        // rather than being accepted verbatim (a zero-worker pool could
        // never drain its queue; the table binaries reject --threads 0
        // outright).  Exercised through the value-level constructor:
        // mutating the real environment would race other tests' getenv
        // calls, which is undefined behaviour on glibc.
        assert_eq!(Scheduler::from_env_values(Some("0"), None).threads(), 1);
        assert_eq!(Scheduler::from_env_values(Some("3"), None).threads(), 3);
        assert!(Scheduler::from_env_values(Some("junk"), None).threads() >= 1);
        assert_eq!(
            Scheduler::from_env_values(Some("2"), Some("1")).mode(),
            SchedulerMode::Pipelined
        );
        assert_eq!(
            Scheduler::from_env_values(Some("2"), Some("0")).mode(),
            SchedulerMode::Batch
        );
        assert_eq!(
            SchedulerMode::from_value(Some("yes")),
            SchedulerMode::Pipelined
        );
        assert_eq!(SchedulerMode::from_value(None), SchedulerMode::Batch);
    }

    /// A staged job with observable stage boundaries: generate doubles,
    /// execute adds 1, judge squares.  A seed of `u64::MAX - s` panics in
    /// stage `s`.
    struct StagedSquare(u64);

    impl StagedJob for StagedSquare {
        type Generated = u64;
        type Executed = u64;
        type Output = u64;

        fn generate(self) -> u64 {
            if self.0 == u64::MAX {
                panic!("poisoned generate");
            }
            self.0.wrapping_mul(2)
        }

        fn execute(generated: u64) -> u64 {
            if generated == (u64::MAX - 1).wrapping_mul(2) {
                panic!("poisoned execute");
            }
            generated.wrapping_add(1)
        }

        fn judge(executed: u64) -> u64 {
            if executed == (u64::MAX - 2).wrapping_mul(2).wrapping_add(1) {
                panic!("poisoned judge");
            }
            executed.wrapping_mul(executed)
        }
    }

    fn staged_expected(n: u64) -> Vec<u64> {
        (0..n).map(|i| (2 * i + 1) * (2 * i + 1)).collect()
    }

    #[test]
    fn staged_results_are_identical_across_modes_and_worker_counts() {
        let jobs = |n: u64| (0..n).map(StagedSquare).collect::<Vec<_>>();
        for mode in [SchedulerMode::Batch, SchedulerMode::Pipelined] {
            for threads in [1, 2, 3, 8, 64] {
                let scheduler = Scheduler::new(threads).with_mode(mode);
                assert_eq!(
                    scheduler.run_staged_all(jobs(97)),
                    staged_expected(97),
                    "{threads} threads, {} mode",
                    mode.name()
                );
            }
        }
    }

    #[test]
    fn staged_panics_in_any_stage_are_contained_with_the_batch_message() {
        // A panic in generate, execute or judge must surface as the same
        // JobFailure in both modes (index + payload, no stage prefix), with
        // every other job still completing.
        for mode in [SchedulerMode::Batch, SchedulerMode::Pipelined] {
            for threads in [1, 4] {
                let scheduler = Scheduler::new(threads).with_mode(mode);
                let mut jobs: Vec<StagedSquare> = (0..16).map(StagedSquare).collect();
                jobs[3] = StagedSquare(u64::MAX); // generate panics
                jobs[7] = StagedSquare(u64::MAX - 1); // execute panics
                jobs[11] = StagedSquare(u64::MAX - 2); // judge panics
                let results = scheduler.run_staged(jobs);
                assert_eq!(results.len(), 16);
                for (i, result) in results.iter().enumerate() {
                    let expect_message = match i {
                        3 => Some("poisoned generate"),
                        7 => Some("poisoned execute"),
                        11 => Some("poisoned judge"),
                        _ => None,
                    };
                    match expect_message {
                        Some(message) => assert_eq!(
                            *result,
                            JobResult::Failed(JobFailure {
                                index: i,
                                message: message.to_string()
                            }),
                            "{} mode, {threads} threads",
                            mode.name()
                        ),
                        None => assert_eq!(
                            *result,
                            JobResult::Completed((2 * i as u64 + 1) * (2 * i as u64 + 1)),
                            "{} mode, {threads} threads, job {i}",
                            mode.name()
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn staged_streaming_observes_every_result_exactly_once() {
        for mode in [SchedulerMode::Batch, SchedulerMode::Pipelined] {
            for threads in [1usize, 4] {
                let scheduler = Scheduler::new(threads).with_mode(mode);
                let mut seen = Vec::new();
                let results = scheduler.run_staged_streaming(
                    (0..32).map(StagedSquare).collect::<Vec<_>>(),
                    |i, r| {
                        assert_eq!(*r, JobResult::Completed((2 * i as u64 + 1).pow(2)));
                        seen.push(i);
                    },
                );
                let mut sorted = seen.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..32).collect::<Vec<_>>(), "{threads} threads");
                assert_eq!(results.len(), 32);
            }
        }
    }

    #[test]
    fn staged_metrics_report_stage_occupancy_in_both_modes() {
        struct StageSleep;
        impl StagedJob for StageSleep {
            type Generated = ();
            type Executed = ();
            type Output = ();
            fn generate(self) {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            fn execute(_: ()) {
                std::thread::sleep(std::time::Duration::from_millis(6));
            }
            fn judge(_: ()) {}
        }
        for mode in [SchedulerMode::Batch, SchedulerMode::Pipelined] {
            let scheduler = Scheduler::new(2).with_mode(mode);
            let (results, metrics) =
                scheduler.run_staged_metrics((0..8).map(|_| StageSleep).collect(), |_, _| {});
            assert_eq!(results.len(), 8, "{} mode", mode.name());
            assert!(metrics.wall > Duration::ZERO);
            assert_eq!(metrics.workers, 2);
            // Execute sleeps 3x longer than generate; the busy split must
            // reflect that (with generous slack for timer coarseness).
            assert!(
                metrics.stage_busy[Stage::Execute.index()]
                    > metrics.stage_busy[Stage::Generate.index()],
                "{} mode: {:?}",
                mode.name(),
                metrics.stage_busy
            );
            let total_occupancy: f64 = Stage::ALL.iter().map(|s| metrics.occupancy(*s)).sum();
            assert!(
                total_occupancy <= 1.05,
                "{} mode: occupancy {total_occupancy} exceeds capacity",
                mode.name()
            );
            if mode == SchedulerMode::Batch {
                assert_eq!(metrics.handoff_samples, 0);
                assert_eq!(metrics.mean_handoff_depth(), 0.0);
            } else {
                assert!(
                    metrics.handoff_samples > 0,
                    "pipeline recorded no hand-offs"
                );
                assert!(metrics.handoff_depth_max >= 1);
            }
        }
    }

    #[test]
    fn pipelined_empty_and_single_batches_work() {
        let scheduler = Scheduler::new(4).with_mode(SchedulerMode::Pipelined);
        assert_eq!(
            scheduler.run_staged_all(Vec::<StagedSquare>::new()),
            Vec::<u64>::new()
        );
        assert_eq!(scheduler.run_staged_all(vec![StagedSquare(3)]), vec![49]);
    }

    #[test]
    fn pipelined_mode_overlaps_stages_across_jobs() {
        // 8 jobs whose execute stage sleeps 30ms: 4 pipeline workers must
        // overlap at least 2x over one worker (the latency is in a single
        // stage, so overlap requires executing job k while generating k+1 —
        // the hand-off property itself).
        struct SleepyExec;
        impl StagedJob for SleepyExec {
            type Generated = ();
            type Executed = ();
            type Output = ();
            fn generate(self) {}
            fn execute(_: ()) {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            fn judge(_: ()) {}
        }
        let jobs = || (0..8).map(|_| SleepyExec).collect::<Vec<_>>();
        let start = std::time::Instant::now();
        Scheduler::new(1)
            .with_mode(SchedulerMode::Pipelined)
            .run_staged_all(jobs());
        let sequential = start.elapsed();
        let start = std::time::Instant::now();
        Scheduler::new(4)
            .with_mode(SchedulerMode::Pipelined)
            .run_staged_all(jobs());
        let parallel = start.elapsed();
        assert!(
            sequential.as_secs_f64() >= 2.0 * parallel.as_secs_f64(),
            "pipelined workers did not overlap: sequential {sequential:?}, parallel {parallel:?}"
        );
    }
}
