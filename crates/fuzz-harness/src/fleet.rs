//! Crash-tolerant campaign fleet coordination.
//!
//! A **coordinator** owns a campaign's job index space `0..total_jobs` and
//! leases contiguous ranges of it to **workers** — separate processes in
//! production ([`ProcessWorker`]), scripted stubs in tests — over a
//! zero-dependency line protocol ([`FleetCommand`] / [`FleetReply`]) framed
//! as one ASCII line per message, transport-agnostic by construction
//! (production uses worker stdin/stdout).
//!
//! Every lease writes its own `CLFUZZ-JOURNAL` (see [`crate::journal`]), so
//! the coordinator never trusts a worker's word alone:
//!
//! * **liveness** is observed through journal growth — a lease whose
//!   journal stops growing for longer than the lease timeout is presumed
//!   stuck, its worker is killed, and the range is re-leased;
//! * **crash recovery** is journal resume — a re-leased range picks up
//!   after the last valid record of the previous attempt's journal, so
//!   work done before a crash (even one with a torn final line) is kept;
//! * **poisoned ranges** — ranges that keep failing past the bounded
//!   retry-with-backoff budget — are quarantined as [`DeadLetter`]
//!   records, and the campaign completes around them with explicit gap
//!   accounting ([`FleetOutcome::gaps`]) instead of hanging forever.
//!
//! The merged result of a fleet run is produced by refolding the per-lease
//! journals ([`crate::shard::refold_journals`]); because every lease folds
//! journal-decoded outputs in ascending job order, the merged tables are
//! bit-identical to a fault-free single-process run of the same campaign —
//! the invariant the chaos tests pin.

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// One leased range of the job index space, as granted to a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseRecord {
    /// Stable lease identifier: the range's index in the fixed partition of
    /// the job space, so re-leases of the same range share an id (and a
    /// journal path, which is what makes resume-after-crash work).
    pub id: u32,
    /// First job index of the range.
    pub start: u64,
    /// One past the last job index of the range.
    pub end: u64,
    /// 1-based attempt number for this range.
    pub attempt: u32,
    /// Journal path the worker must write (and resume from when it already
    /// holds a previous attempt's records).
    pub journal: PathBuf,
}

/// Coordinator-to-worker protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetCommand {
    /// Grant a lease; the worker runs it and replies `DONE` or `FAIL`.
    Lease(LeaseRecord),
    /// Orderly shutdown; the worker exits its loop.
    Shutdown,
}

impl FleetCommand {
    /// Renders the message as its single protocol line (no newline).
    pub fn render(&self) -> String {
        match self {
            FleetCommand::Lease(l) => format!(
                "LEASE {} {} {} {} {}",
                l.id,
                l.start,
                l.end,
                l.attempt,
                l.journal.display()
            ),
            FleetCommand::Shutdown => "SHUTDOWN".to_string(),
        }
    }

    /// Parses one protocol line; `None` for anything malformed (workers
    /// skip such lines rather than dying on them).
    pub fn parse(line: &str) -> Option<FleetCommand> {
        let line = line.trim_end();
        if line == "SHUTDOWN" {
            return Some(FleetCommand::Shutdown);
        }
        let rest = line.strip_prefix("LEASE ")?;
        let mut parts = rest.splitn(5, ' ');
        let id = parts.next()?.parse().ok()?;
        let start = parts.next()?.parse().ok()?;
        let end = parts.next()?.parse().ok()?;
        let attempt = parts.next()?.parse().ok()?;
        let journal = PathBuf::from(parts.next()?);
        (start <= end && attempt >= 1).then_some(FleetCommand::Lease(LeaseRecord {
            id,
            start,
            end,
            attempt,
            journal,
        }))
    }
}

/// Worker-to-coordinator protocol messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetReply {
    /// The worker is up and ready for its first lease.
    Ready {
        /// The worker's OS process id (0 for in-process stubs).
        pid: u32,
    },
    /// The lease ran to the end of its range.
    Done {
        /// Lease id being acknowledged.
        id: u32,
        /// Jobs executed *by this attempt* (resumed jobs not re-counted).
        jobs: u64,
    },
    /// The lease failed; the coordinator will retry or quarantine.
    Fail {
        /// Lease id being failed.
        id: u32,
        /// One-line human-readable reason.
        reason: String,
    },
}

impl FleetReply {
    /// Renders the message as its single protocol line (no newline).
    pub fn render(&self) -> String {
        match self {
            FleetReply::Ready { pid } => format!("READY {pid}"),
            FleetReply::Done { id, jobs } => format!("DONE {id} {jobs}"),
            FleetReply::Fail { id, reason } => {
                format!("FAIL {id} {}", reason.replace(['\n', '\r'], "; "))
            }
        }
    }

    /// Parses one protocol line; `None` for anything malformed (the
    /// coordinator ignores such lines — a crashing worker can emit junk).
    pub fn parse(line: &str) -> Option<FleetReply> {
        let line = line.trim_end();
        if let Some(rest) = line.strip_prefix("READY ") {
            return Some(FleetReply::Ready {
                pid: rest.parse().ok()?,
            });
        }
        if let Some(rest) = line.strip_prefix("DONE ") {
            let mut parts = rest.splitn(2, ' ');
            return Some(FleetReply::Done {
                id: parts.next()?.parse().ok()?,
                jobs: parts.next()?.parse().ok()?,
            });
        }
        if let Some(rest) = line.strip_prefix("FAIL ") {
            let mut parts = rest.splitn(2, ' ');
            return Some(FleetReply::Fail {
                id: parts.next()?.parse().ok()?,
                reason: parts.next().unwrap_or("").to_string(),
            });
        }
        None
    }
}

/// A coordinator's handle on one worker, over whatever transport.
///
/// The production implementation is [`ProcessWorker`] (a child process with
/// piped stdio); tests script the trait directly.
pub trait WorkerLink {
    /// Delivers one command; an error means the worker is unreachable and
    /// the coordinator treats it as dead.
    fn send(&mut self, command: &FleetCommand) -> io::Result<()>;
    /// Takes the next pending reply, if one has arrived.
    fn try_recv(&mut self) -> Option<FleetReply>;
    /// Whether the worker still appears to be running.
    fn is_alive(&mut self) -> bool;
    /// Forcibly terminates the worker (idempotent, best effort).
    fn kill(&mut self);
}

/// A worker child process speaking the fleet protocol on its stdio.
///
/// A reader thread drains the child's stdout into a channel so the
/// coordinator's `try_recv` never blocks; stderr is inherited so worker
/// diagnostics (including fault-injection logs) stay visible.
pub struct ProcessWorker {
    child: Child,
    stdin: std::process::ChildStdin,
    replies: mpsc::Receiver<FleetReply>,
}

impl ProcessWorker {
    /// Spawns `command` with piped stdin/stdout and starts the reply
    /// reader thread.
    pub fn spawn(command: &mut Command) -> io::Result<ProcessWorker> {
        command.stdin(Stdio::piped()).stdout(Stdio::piped());
        let mut child = command.spawn()?;
        let stdin = child
            .stdin
            .take()
            .ok_or_else(|| io::Error::other("worker stdin not piped"))?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| io::Error::other("worker stdout not piped"))?;
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if let Some(reply) = FleetReply::parse(&line) {
                    if tx.send(reply).is_err() {
                        break;
                    }
                }
            }
        });
        Ok(ProcessWorker {
            child,
            stdin,
            replies: rx,
        })
    }
}

impl WorkerLink for ProcessWorker {
    fn send(&mut self, command: &FleetCommand) -> io::Result<()> {
        writeln!(self.stdin, "{}", command.render())?;
        self.stdin.flush()
    }

    fn try_recv(&mut self) -> Option<FleetReply> {
        self.replies.try_recv().ok()
    }

    fn is_alive(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ProcessWorker {
    fn drop(&mut self) {
        if matches!(self.child.try_wait(), Ok(None)) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

/// Tuning knobs for a [`Coordinator`] run.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Number of worker slots the coordinator keeps filled.
    pub workers: usize,
    /// Jobs per lease; the job space is partitioned into fixed contiguous
    /// ranges of this size (last one possibly short).
    pub lease_jobs: u64,
    /// How long a lease's journal may stop growing before the lease is
    /// presumed stuck and revoked.
    pub lease_timeout: Duration,
    /// Re-lease attempts after the first before a range is quarantined
    /// (so a range is tried `max_retries + 1` times in total).
    pub max_retries: u32,
    /// Base of the exponential retry backoff: attempt `n` waits
    /// `retry_backoff * 2^(n-1)`, capped at five seconds.
    pub retry_backoff: Duration,
    /// Coordinator poll interval (reply drain + liveness sweep cadence).
    pub poll_interval: Duration,
    /// Directory for per-lease journals, `fleet.log`, and
    /// `dead-letters.log`.
    pub journal_dir: PathBuf,
}

impl Default for FleetOptions {
    fn default() -> FleetOptions {
        FleetOptions {
            workers: 2,
            lease_jobs: 64,
            lease_timeout: Duration::from_secs(10),
            max_retries: 3,
            retry_backoff: Duration::from_millis(50),
            poll_interval: Duration::from_millis(10),
            journal_dir: PathBuf::from("."),
        }
    }
}

/// A quarantined range: retried past its budget and abandoned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetter {
    /// First job index of the poisoned range.
    pub start: u64,
    /// One past the last job index of the poisoned range.
    pub end: u64,
    /// Total attempts spent before quarantine.
    pub attempts: u32,
    /// Reason reported by (or inferred for) the final attempt.
    pub reason: String,
}

impl fmt::Display for DeadLetter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DEAD {}-{} attempts={} reason={}",
            self.start, self.end, self.attempts, self.reason
        )
    }
}

/// What a [`Coordinator`] run produced.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Total jobs in the campaign.
    pub total_jobs: u64,
    /// Jobs covered by completed leases (journal-resumed jobs included).
    pub completed_jobs: u64,
    /// Leases granted, counting every retry.
    pub leases_issued: u64,
    /// Re-lease attempts caused by failures, deaths, or stalls.
    pub retries: u64,
    /// Replacement workers spawned after deaths or kills.
    pub respawns: u64,
    /// Journals of completed leases, in ascending range order — the input
    /// to the merge step.
    pub journals: Vec<PathBuf>,
    /// Quarantined ranges, in ascending range order.
    pub dead_letters: Vec<DeadLetter>,
}

impl FleetOutcome {
    /// Whether every job was covered (no quarantined ranges).
    pub fn is_complete(&self) -> bool {
        self.dead_letters.is_empty()
    }

    /// The uncovered index ranges, for explicit gap accounting in merged
    /// tables.
    pub fn gaps(&self) -> Vec<(u64, u64)> {
        self.dead_letters.iter().map(|d| (d.start, d.end)).collect()
    }
}

/// State of one range of the partitioned job space.
#[derive(Debug)]
enum RangeState {
    /// Waiting (possibly in backoff) to be leased; `ready_at` gates the
    /// next grant, `attempts` counts grants so far.
    Pending { ready_at: Instant, attempts: u32 },
    /// Currently leased to some worker slot (the slot tracks which).
    Active {
        attempts: u32,
        /// Journal length at the last observed growth.
        journal_len: u64,
        /// When the journal last grew (or the lease was granted).
        last_progress: Instant,
    },
    /// Completed: journal is final.
    Done,
    /// Quarantined.
    Dead,
}

/// One worker slot.
struct Slot {
    link: Option<Box<dyn WorkerLink>>,
    /// Range index of the lease this slot is running, if any.
    lease: Option<usize>,
    /// Whether the worker has sent `READY` and finished any prior lease.
    idle: bool,
}

/// The fleet coordinator: owns the job index space, grants leases, watches
/// liveness, retries, quarantines, and reports the merged coverage.
pub struct Coordinator {
    options: FleetOptions,
    total_jobs: u64,
    ranges: Vec<(u64, u64)>,
    log: Option<std::fs::File>,
}

impl Coordinator {
    /// Creates a coordinator for `total_jobs` jobs, partitioned into
    /// `options.lease_jobs`-sized ranges. Creates `journal_dir` (and its
    /// `fleet.log`) eagerly so early failures surface as errors here.
    pub fn new(options: FleetOptions, total_jobs: u64) -> io::Result<Coordinator> {
        std::fs::create_dir_all(&options.journal_dir)?;
        let log = std::fs::File::create(options.journal_dir.join("fleet.log"))?;
        let lease_jobs = options.lease_jobs.max(1);
        let mut ranges = Vec::new();
        let mut start = 0;
        while start < total_jobs {
            let end = (start + lease_jobs).min(total_jobs);
            ranges.push((start, end));
            start = end;
        }
        Ok(Coordinator {
            options,
            total_jobs,
            ranges,
            log: Some(log),
        })
    }

    /// The journal path for range index `id` — stable across attempts so a
    /// re-lease resumes its predecessor's journal.
    pub fn journal_path(&self, id: u32) -> PathBuf {
        self.options
            .journal_dir
            .join(format!("lease-{id:04}.journal"))
    }

    fn log_event(&mut self, observer: &mut Option<&mut dyn FnMut(&str)>, line: &str) {
        if let Some(log) = &mut self.log {
            let _ = writeln!(log, "{line}");
            let _ = log.flush();
        }
        if let Some(observer) = observer {
            observer(line);
        }
    }

    fn backoff(&self, attempts: u32) -> Duration {
        let exp = attempts.saturating_sub(1).min(16);
        let base = self.options.retry_backoff.as_millis() as u64;
        Duration::from_millis((base << exp).min(5_000))
    }

    /// Runs the fleet to completion: every range either completes or is
    /// quarantined. `spawn` fills worker slot `i` (initially and after
    /// deaths); `observer`, when given, receives every event-log line as
    /// it is written (the `--follow` hook).
    pub fn run(
        &mut self,
        spawn: &mut dyn FnMut(usize) -> io::Result<Box<dyn WorkerLink>>,
        mut observer: Option<&mut dyn FnMut(&str)>,
    ) -> io::Result<FleetOutcome> {
        let now = Instant::now();
        let mut states: Vec<RangeState> = self
            .ranges
            .iter()
            .map(|_| RangeState::Pending {
                ready_at: now,
                attempts: 0,
            })
            .collect();
        let mut slots: Vec<Slot> = Vec::new();
        for i in 0..self.options.workers.max(1) {
            slots.push(Slot {
                link: Some(spawn(i)?),
                lease: None,
                idle: false,
            });
        }
        self.log_event(
            &mut observer,
            &format!(
                "FLEET jobs={} ranges={} workers={}",
                self.total_jobs,
                self.ranges.len(),
                slots.len()
            ),
        );

        let mut leases_issued = 0u64;
        let mut retries = 0u64;
        let mut respawns = 0u64;
        let mut dead_letters: Vec<(usize, DeadLetter)> = Vec::new();
        let mut last_reasons: Vec<String> = vec![String::new(); self.ranges.len()];

        loop {
            let mut progressed = false;

            // 1. Drain replies.
            for (slot_index, slot) in slots.iter_mut().enumerate() {
                while let Some(reply) = slot.link.as_mut().and_then(|link| link.try_recv()) {
                    progressed = true;
                    match reply {
                        FleetReply::Ready { pid } => {
                            slot.idle = true;
                            self.log_event(
                                &mut observer,
                                &format!("READY worker={slot_index} pid={pid}"),
                            );
                        }
                        FleetReply::Done { id, jobs } => {
                            let range_index = id as usize;
                            if slot.lease != Some(range_index) {
                                continue; // Stale ack from a revoked lease.
                            }
                            let (start, end) = self.ranges[range_index];
                            states[range_index] = RangeState::Done;
                            slot.lease = None;
                            slot.idle = true;
                            self.log_event(
                                &mut observer,
                                &format!("DONE lease={id} range={start}-{end} jobs={jobs}"),
                            );
                        }
                        FleetReply::Fail { id, reason } => {
                            let range_index = id as usize;
                            if slot.lease != Some(range_index) {
                                continue;
                            }
                            slot.lease = None;
                            slot.idle = true;
                            last_reasons[range_index] = reason.clone();
                            self.requeue(
                                &mut states,
                                range_index,
                                &mut retries,
                                &mut dead_letters,
                                &last_reasons,
                                &mut observer,
                                &format!("FAIL lease={id} reason={reason}"),
                            );
                        }
                    }
                }
            }

            // 2. Liveness: dead workers and stalled journals.
            for (slot_index, slot) in slots.iter_mut().enumerate() {
                let alive = slot.link.as_mut().is_some_and(|link| link.is_alive());
                if !alive {
                    if let Some(range_index) = slot.lease.take() {
                        progressed = true;
                        last_reasons[range_index] = "worker died".to_string();
                        self.requeue(
                            &mut states,
                            range_index,
                            &mut retries,
                            &mut dead_letters,
                            &last_reasons,
                            &mut observer,
                            &format!("LOST lease={range_index} worker={slot_index} (worker died)"),
                        );
                    }
                    slot.link = None;
                    slot.idle = false;
                    continue;
                }
                if let Some(range_index) = slot.lease {
                    if let RangeState::Active {
                        journal_len,
                        last_progress,
                        ..
                    } = &mut states[range_index]
                    {
                        let len = std::fs::metadata(self.journal_path(range_index as u32))
                            .map(|m| m.len())
                            .unwrap_or(0);
                        if len > *journal_len {
                            *journal_len = len;
                            *last_progress = Instant::now();
                        } else if last_progress.elapsed() > self.options.lease_timeout {
                            progressed = true;
                            if let Some(link) = &mut slot.link {
                                link.kill();
                            }
                            slot.link = None;
                            slot.lease = None;
                            slot.idle = false;
                            last_reasons[range_index] = "lease expired (journal stalled)".into();
                            self.requeue(
                                &mut states,
                                range_index,
                                &mut retries,
                                &mut dead_letters,
                                &last_reasons,
                                &mut observer,
                                &format!(
                                    "EXPIRE lease={range_index} worker={slot_index} \
                                     (journal stalled past timeout)"
                                ),
                            );
                        }
                    }
                }
            }

            // 3. Completion check (before respawning anything we may no
            //    longer need).
            let open_work = states
                .iter()
                .any(|s| matches!(s, RangeState::Pending { .. } | RangeState::Active { .. }));
            if !open_work {
                break;
            }

            // 4. Refill empty worker slots while work remains.
            for (slot_index, slot) in slots.iter_mut().enumerate() {
                if slot.link.is_none() {
                    match spawn(slot_index) {
                        Ok(link) => {
                            slot.link = Some(link);
                            slot.idle = false;
                            respawns += 1;
                            progressed = true;
                        }
                        Err(e) => {
                            self.log_event(
                                &mut observer,
                                &format!("SPAWN-FAIL worker={slot_index} error={e}"),
                            );
                        }
                    }
                }
            }
            if slots.iter().all(|s| s.link.is_none()) {
                return Err(io::Error::other(
                    "fleet stalled: no workers alive and none could be spawned",
                ));
            }

            // 5. Grant due ranges to idle workers.
            let now = Instant::now();
            for (range_index, state) in states.iter_mut().enumerate() {
                let RangeState::Pending { ready_at, attempts } = *state else {
                    continue;
                };
                if ready_at > now {
                    continue;
                }
                let Some(slot_index) = slots
                    .iter()
                    .position(|s| s.idle && s.lease.is_none() && s.link.is_some())
                else {
                    break;
                };
                let (start, end) = self.ranges[range_index];
                let lease = LeaseRecord {
                    id: range_index as u32,
                    start,
                    end,
                    attempt: attempts + 1,
                    journal: self.journal_path(range_index as u32),
                };
                let command = FleetCommand::Lease(lease);
                let slot = &mut slots[slot_index];
                match slot.link.as_mut().unwrap().send(&command) {
                    Ok(()) => {
                        progressed = true;
                        leases_issued += 1;
                        slot.lease = Some(range_index);
                        slot.idle = false;
                        *state = RangeState::Active {
                            attempts: attempts + 1,
                            journal_len: std::fs::metadata(self.journal_path(range_index as u32))
                                .map(|m| m.len())
                                .unwrap_or(0),
                            last_progress: Instant::now(),
                        };
                        self.log_event(
                            &mut observer,
                            &format!(
                                "LEASE id={range_index} range={start}-{end} attempt={} \
                                 worker={slot_index}",
                                attempts + 1
                            ),
                        );
                    }
                    Err(e) => {
                        // Unreachable worker: drop the link; the liveness
                        // sweep respawns the slot next round.
                        slot.link = None;
                        slot.idle = false;
                        self.log_event(
                            &mut observer,
                            &format!("SEND-FAIL worker={slot_index} error={e}"),
                        );
                    }
                }
            }

            if !progressed {
                std::thread::sleep(self.options.poll_interval);
            }
        }

        // Orderly shutdown: ask, then insist.
        for slot in slots.iter_mut() {
            if let Some(link) = &mut slot.link {
                let _ = link.send(&FleetCommand::Shutdown);
                link.kill();
            }
        }

        dead_letters.sort_by_key(|(index, _)| *index);
        let dead_letters: Vec<DeadLetter> =
            dead_letters.into_iter().map(|(_, letter)| letter).collect();
        if !dead_letters.is_empty() {
            let mut dl = std::fs::File::create(self.options.journal_dir.join("dead-letters.log"))?;
            for letter in &dead_letters {
                writeln!(dl, "{letter}")?;
            }
        }
        let completed_jobs = states
            .iter()
            .zip(&self.ranges)
            .filter(|(s, _)| matches!(s, RangeState::Done))
            .map(|(_, (start, end))| end - start)
            .sum();
        let journals = states
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, RangeState::Done))
            .map(|(i, _)| self.journal_path(i as u32))
            .collect();
        let outcome = FleetOutcome {
            total_jobs: self.total_jobs,
            completed_jobs,
            leases_issued,
            retries,
            respawns,
            journals,
            dead_letters,
        };
        self.log_event(
            &mut observer,
            &format!(
                "FLEET-END completed={}/{} leases={} retries={} respawns={} quarantined={}",
                outcome.completed_jobs,
                outcome.total_jobs,
                outcome.leases_issued,
                outcome.retries,
                outcome.respawns,
                outcome.dead_letters.len()
            ),
        );
        Ok(outcome)
    }

    /// Returns a failed/stalled range to the pending queue, or quarantines
    /// it once its retry budget is spent.
    #[allow(clippy::too_many_arguments)]
    fn requeue(
        &mut self,
        states: &mut [RangeState],
        range_index: usize,
        retries: &mut u64,
        dead_letters: &mut Vec<(usize, DeadLetter)>,
        last_reasons: &[String],
        observer: &mut Option<&mut dyn FnMut(&str)>,
        event: &str,
    ) {
        let attempts = match &states[range_index] {
            RangeState::Active { attempts, .. } => *attempts,
            _ => return,
        };
        self.log_event(observer, event);
        if attempts > self.options.max_retries {
            let (start, end) = self.ranges[range_index];
            let letter = DeadLetter {
                start,
                end,
                attempts,
                reason: last_reasons[range_index].clone(),
            };
            self.log_event(observer, &format!("QUARANTINE {letter}"));
            states[range_index] = RangeState::Dead;
            dead_letters.push((range_index, letter));
        } else {
            *retries += 1;
            let backoff = self.backoff(attempts);
            self.log_event(
                observer,
                &format!(
                    "RETRY lease={range_index} attempt={} backoff={}ms",
                    attempts + 1,
                    backoff.as_millis()
                ),
            );
            states[range_index] = RangeState::Pending {
                ready_at: Instant::now() + backoff,
                attempts,
            };
        }
    }
}

/// The worker side of the protocol: announce readiness, then serve leases
/// from `input` until `SHUTDOWN` or EOF.
///
/// `execute` runs one lease and returns the number of jobs this attempt
/// executed, or a one-line failure reason. The bench binaries plug the
/// campaign range drivers (and the fault-injection actions) in here.
pub fn run_worker(
    input: &mut dyn BufRead,
    output: &mut dyn Write,
    execute: &mut dyn FnMut(&LeaseRecord) -> Result<u64, String>,
) -> io::Result<()> {
    writeln!(
        output,
        "{}",
        FleetReply::Ready {
            pid: std::process::id()
        }
        .render()
    )?;
    output.flush()?;
    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            return Ok(()); // Coordinator hung up.
        }
        match FleetCommand::parse(&line) {
            Some(FleetCommand::Shutdown) => return Ok(()),
            Some(FleetCommand::Lease(lease)) => {
                let reply = match execute(&lease) {
                    Ok(jobs) => FleetReply::Done { id: lease.id, jobs },
                    Err(reason) => FleetReply::Fail {
                        id: lease.id,
                        reason,
                    },
                };
                writeln!(output, "{}", reply.render())?;
                output.flush()?;
            }
            None => continue,
        }
    }
}

/// Appends `line` to the journal directory's `workers.log` — the fault
/// diagnostics channel for workers, kept separate from the coordinator's
/// `fleet.log` to avoid interleaving partial lines across processes.
pub fn append_worker_log(journal_dir: &Path, line: &str) {
    let path = journal_dir.join("workers.log");
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(file, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::collections::VecDeque;
    use std::rc::Rc;

    /// What a scripted worker does with each granted lease.
    #[derive(Clone, Copy)]
    enum Behavior {
        /// Reply `DONE` immediately.
        Complete,
        /// Reply `FAIL` immediately.
        Fail,
        /// Accept the lease and go quiet (stays alive → journal stall).
        Stall,
        /// Die silently on receiving the lease.
        Die,
    }

    #[derive(Default)]
    struct ScriptState {
        received: Vec<FleetCommand>,
        queue: VecDeque<FleetReply>,
        alive: bool,
        killed: bool,
    }

    struct ScriptedWorker {
        state: Rc<RefCell<ScriptState>>,
        behavior: Behavior,
    }

    fn scripted(behavior: Behavior) -> (ScriptedWorker, Rc<RefCell<ScriptState>>) {
        let state = Rc::new(RefCell::new(ScriptState {
            alive: true,
            ..ScriptState::default()
        }));
        state
            .borrow_mut()
            .queue
            .push_back(FleetReply::Ready { pid: 0 });
        (
            ScriptedWorker {
                state: Rc::clone(&state),
                behavior,
            },
            state,
        )
    }

    impl WorkerLink for ScriptedWorker {
        fn send(&mut self, command: &FleetCommand) -> io::Result<()> {
            let mut state = self.state.borrow_mut();
            if !state.alive {
                return Err(io::Error::other("worker gone"));
            }
            state.received.push(command.clone());
            if let FleetCommand::Lease(lease) = command {
                match self.behavior {
                    Behavior::Complete => {
                        let reply = FleetReply::Done {
                            id: lease.id,
                            jobs: lease.end - lease.start,
                        };
                        state.queue.push_back(reply);
                    }
                    Behavior::Fail => {
                        state.queue.push_back(FleetReply::Fail {
                            id: lease.id,
                            reason: "scripted failure".into(),
                        });
                    }
                    Behavior::Stall => {}
                    Behavior::Die => state.alive = false,
                }
            }
            Ok(())
        }

        fn try_recv(&mut self) -> Option<FleetReply> {
            self.state.borrow_mut().queue.pop_front()
        }

        fn is_alive(&mut self) -> bool {
            self.state.borrow().alive
        }

        fn kill(&mut self) {
            let mut state = self.state.borrow_mut();
            state.alive = false;
            state.killed = true;
        }
    }

    fn test_options(dir: &str) -> FleetOptions {
        let journal_dir =
            std::env::temp_dir().join(format!("clfuzz-fleet-test-{}-{dir}", std::process::id()));
        let _ = std::fs::remove_dir_all(&journal_dir);
        FleetOptions {
            workers: 2,
            lease_jobs: 30,
            lease_timeout: Duration::from_millis(40),
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            poll_interval: Duration::from_millis(1),
            journal_dir,
        }
    }

    #[test]
    fn protocol_lines_roundtrip() {
        let lease = FleetCommand::Lease(LeaseRecord {
            id: 7,
            start: 210,
            end: 240,
            attempt: 2,
            journal: PathBuf::from("/tmp/with spaces/lease-0007.journal"),
        });
        assert_eq!(FleetCommand::parse(&lease.render()), Some(lease));
        let shutdown = FleetCommand::Shutdown;
        assert_eq!(FleetCommand::parse(&shutdown.render()), Some(shutdown));
        for reply in [
            FleetReply::Ready { pid: 4242 },
            FleetReply::Done { id: 3, jobs: 30 },
            FleetReply::Fail {
                id: 9,
                reason: "kernel panicked; twice".into(),
            },
        ] {
            assert_eq!(FleetReply::parse(&reply.render()), Some(reply));
        }
        for junk in ["", "LEASE", "LEASE a b c d e", "DONE 1", "NOISE 1 2 3"] {
            assert!(FleetCommand::parse(junk).is_none() || junk.starts_with("LEASE"));
            assert!(FleetReply::parse(junk).is_none());
        }
        // Multi-line failure reasons are flattened to one protocol line.
        let flat = FleetReply::Fail {
            id: 1,
            reason: "line one\nline two".into(),
        }
        .render();
        assert!(!flat.contains('\n'));
    }

    #[test]
    fn fleet_completes_all_ranges_with_reliable_workers() {
        let mut coordinator = Coordinator::new(test_options("ok"), 100).unwrap();
        let mut handles = Vec::new();
        let outcome = coordinator
            .run(
                &mut |_slot| {
                    let (worker, state) = scripted(Behavior::Complete);
                    handles.push(state);
                    Ok(Box::new(worker) as Box<dyn WorkerLink>)
                },
                None,
            )
            .unwrap();
        assert_eq!(outcome.completed_jobs, 100);
        assert!(outcome.is_complete());
        assert_eq!(outcome.journals.len(), 4, "100 jobs / 30 per lease");
        assert_eq!(outcome.leases_issued, 4);
        assert_eq!(outcome.retries, 0);
        // Both initial workers — and only those — were spawned.
        assert_eq!(handles.len(), 2);
        assert_eq!(outcome.respawns, 0);
        // Journals are listed in ascending range order.
        let names: Vec<String> = outcome
            .journals
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            [
                "lease-0000.journal",
                "lease-0001.journal",
                "lease-0002.journal",
                "lease-0003.journal"
            ]
        );
    }

    #[test]
    fn failing_range_retries_then_quarantines_as_dead_letter() {
        let mut options = test_options("poison");
        options.workers = 1;
        options.lease_jobs = 64;
        let mut coordinator = Coordinator::new(options.clone(), 40).unwrap();
        let outcome = coordinator
            .run(
                &mut |_slot| Ok(Box::new(scripted(Behavior::Fail).0) as Box<dyn WorkerLink>),
                None,
            )
            .unwrap();
        assert_eq!(outcome.completed_jobs, 0);
        assert_eq!(outcome.dead_letters.len(), 1);
        let letter = &outcome.dead_letters[0];
        assert_eq!((letter.start, letter.end), (0, 40));
        assert_eq!(letter.attempts, options.max_retries + 1);
        assert_eq!(letter.reason, "scripted failure");
        assert_eq!(outcome.retries, options.max_retries as u64);
        assert_eq!(outcome.gaps(), vec![(0, 40)]);
        // The quarantine is durably recorded.
        let dl = std::fs::read_to_string(options.journal_dir.join("dead-letters.log")).unwrap();
        assert!(dl.contains("DEAD 0-40 attempts=3"), "got: {dl}");
    }

    #[test]
    fn dead_worker_is_replaced_and_its_lease_reissued() {
        let mut options = test_options("die");
        options.workers = 1;
        let mut coordinator = Coordinator::new(options, 30).unwrap();
        let mut spawned = 0;
        let outcome = coordinator
            .run(
                &mut |_slot| {
                    spawned += 1;
                    let behavior = if spawned == 1 {
                        Behavior::Die
                    } else {
                        Behavior::Complete
                    };
                    Ok(Box::new(scripted(behavior).0) as Box<dyn WorkerLink>)
                },
                None,
            )
            .unwrap();
        assert_eq!(outcome.completed_jobs, 30);
        assert!(outcome.is_complete());
        assert_eq!(outcome.retries, 1, "death costs one retry");
        assert!(outcome.respawns >= 1);
        assert!(spawned >= 2);
    }

    #[test]
    fn stalled_lease_expires_via_journal_growth_liveness() {
        let mut options = test_options("stall");
        options.workers = 1;
        let mut coordinator = Coordinator::new(options, 30).unwrap();
        let mut handles = Vec::new();
        let mut events = Vec::new();
        let mut observer = |line: &str| events.push(line.to_string());
        let outcome = coordinator
            .run(
                &mut |_slot| {
                    let behavior = if handles.is_empty() {
                        Behavior::Stall
                    } else {
                        Behavior::Complete
                    };
                    let (worker, state) = scripted(behavior);
                    handles.push(state);
                    Ok(Box::new(worker) as Box<dyn WorkerLink>)
                },
                Some(&mut observer),
            )
            .unwrap();
        assert_eq!(outcome.completed_jobs, 30);
        assert!(
            handles[0].borrow().killed,
            "stalled worker must be killed on expiry"
        );
        assert!(
            events.iter().any(|e| e.starts_with("EXPIRE")),
            "expiry must be logged: {events:?}"
        );
        // The event log on disk mirrors the observer stream.
        let log =
            std::fs::read_to_string(coordinator.options.journal_dir.join("fleet.log")).unwrap();
        assert!(log.contains("EXPIRE"));
        assert!(log.contains("FLEET-END completed=30/30"));
    }

    #[test]
    fn worker_loop_serves_leases_and_shuts_down() {
        let dir = std::env::temp_dir();
        let input = format!(
            "LEASE 0 0 10 1 {}\nnot a command\nLEASE 1 10 20 2 {}\nSHUTDOWN\n",
            dir.join("a.journal").display(),
            dir.join("b.journal").display()
        );
        let mut output = Vec::new();
        let mut seen = Vec::new();
        run_worker(
            &mut input.as_bytes(),
            &mut output,
            &mut |lease: &LeaseRecord| {
                seen.push(lease.clone());
                if lease.id == 0 {
                    Ok(10)
                } else {
                    Err("mode unsupported\nextra".into())
                }
            },
        )
        .unwrap();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].attempt, 1);
        assert_eq!(seen[1].attempt, 2);
        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().lines().collect();
        assert_eq!(lines[0], format!("READY {}", std::process::id()));
        assert_eq!(lines[1], "DONE 0 10");
        assert_eq!(lines[2], "FAIL 1 mode unsupported; extra");
    }
}
