//! Corpus campaigns: the feedback-guided counterpart of the paper's blind
//! sampling, closing the generator → mutator → feedback loop.
//!
//! The paper's campaigns draw every kernel fresh from the grammar.  A corpus
//! campaign instead evolves **lineages**: each lineage starts from one
//! generated base kernel and applies a chain of seeded mutations
//! (`clsmith::mutator`), executing every link over the full differential
//! target fan-out.  Two selection strategies run over the *same* base seeds
//! and the *same* kernel budget (`1 + chain` executions per lineage):
//!
//! * **guided** — a mutant becomes the chain's new head only when its
//!   [`CoverageMap`] lights at least one bit the lineage has not covered yet
//!   (`new_bits > 0`, the classic coverage-feedback acceptance test);
//! * **blind** — every mutant is accepted, so the chain drifts without
//!   feedback (the ablation the `bench` axes compare against).
//!
//! Each lineage is one self-contained job of the shard layer: its record
//! (accumulated coverage, per-target verdict tallies, acceptance counters)
//! journals like any other payload, so `--shard`, `--journal`/`--resume`,
//! lease fleets and `merge` work unchanged — and the determinism invariant
//! carries over: for a fixed campaign seed the folded tally (and therefore
//! the rendered table) is bit-identical at any worker count, in both
//! scheduler modes and on both interpreter tiers (coverage uses only
//! tier-stable signals).

use crate::campaign::{
    generator_fingerprint, merge_stats_rows, stats_row_from_token, stats_row_token,
    target_fingerprint, TargetStats,
};
use crate::differential::{classify, run_on_targets_session, targets_for, TestTarget};
use crate::exec::{job_seed, PipelineMetrics, Scheduler, StagedJob};
use crate::journal::JournalError;
use crate::shard::{
    lease_header, parse_fields, refold_journals, run_range_fold, run_sharded, CheckpointPolicy,
    FoldRun, JournalOptions, JournalPayload, Mergeable, RefoldSummary, ShardMetrics, ShardSelect,
    ShardSpec,
};
use clsmith::{generate, mutate, CoverageMap, GeneratorOptions};
use opencl_sim::{Configuration, ExecMemo, ExecOptions, Session};
use std::ops::Range;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::Arc;

/// How a lineage decides whether a mutant becomes the new chain head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusStrategy {
    /// Accept a mutant only when it covers at least one new bit.
    Guided,
    /// Accept every mutant (the no-feedback ablation).
    Blind,
}

impl CorpusStrategy {
    /// Both strategies, in job-space (and table-column) order.
    pub const ALL: [CorpusStrategy; 2] = [CorpusStrategy::Guided, CorpusStrategy::Blind];

    /// Column label.
    pub fn name(self) -> &'static str {
        match self {
            CorpusStrategy::Guided => "guided",
            CorpusStrategy::Blind => "blind",
        }
    }
}

/// Options controlling corpus-campaign scale.
#[derive(Debug, Clone)]
pub struct CorpusOptions {
    /// Lineages per strategy (both strategies reuse the same base seeds, so
    /// the comparison is paired).
    pub lineages: usize,
    /// Mutations per lineage; every lineage executes `1 + chain` kernels.
    pub chain: usize,
    /// Base generator options (seed overridden per lineage).
    pub generator: GeneratorOptions,
    /// Execution options.
    pub exec: ExecOptions,
    /// Seed offset so different campaigns use disjoint lineage sets.
    pub seed_offset: u64,
}

impl Default for CorpusOptions {
    fn default() -> Self {
        CorpusOptions {
            lineages: 12,
            chain: 5,
            generator: GeneratorOptions::default(),
            exec: ExecOptions::default(),
            seed_offset: 0,
        }
    }
}

/// One lineage's worth of corpus work: generate the base kernel, then walk
/// the mutation chain, executing every link over the differential targets.
///
/// A [`StagedJob`]: generation overlaps execution under the scheduler's
/// pipelined mode exactly like the blind campaign's [`crate::KernelJob`].
#[derive(Debug, Clone)]
pub struct CorpusJob {
    /// Selection strategy of this lineage.
    pub strategy: CorpusStrategy,
    /// The lineage's base-kernel seed (`job_seed(campaign_seed, lineage)`).
    pub seed: u64,
    /// Mutations to attempt.
    pub chain: usize,
    /// Base generator options (seed overridden by the field above).
    pub generator: GeneratorOptions,
    /// Execution options.
    pub exec: ExecOptions,
    /// The targets, shared across the whole batch.
    pub targets: Arc<Vec<TestTarget>>,
}

/// Stage-1 output of a [`CorpusJob`]: the generated base kernel plus the
/// chain context.
#[derive(Debug)]
pub struct GeneratedLineage {
    base: clc::Program,
    job: CorpusJob,
}

/// One lineage's journal payload and job output: the accumulated coverage
/// map, per-target verdict tallies over every executed link, and the
/// chain's acceptance counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusRecord {
    /// Coverage accumulated over the base kernel and every executed mutant.
    pub coverage: CoverageMap,
    /// Per-target verdict tallies (base + mutants), in target order.
    pub stats: Vec<TargetStats>,
    /// Mutants executed (the chain links that produced a program).
    pub executed: u32,
    /// Mutants accepted as the new chain head.
    pub accepted: u32,
    /// Mutants rejected by the guided acceptance test.
    pub rejected: u32,
}

impl StagedJob for CorpusJob {
    type Generated = GeneratedLineage;
    type Executed = CorpusRecord;
    type Output = CorpusRecord;

    fn generate(self) -> GeneratedLineage {
        let gen_opts = GeneratorOptions {
            seed: self.seed,
            ..self.generator.clone()
        };
        GeneratedLineage {
            base: generate(&gen_opts),
            job: self,
        }
    }

    fn execute(generated: GeneratedLineage) -> CorpusRecord {
        let GeneratedLineage { base, job } = generated;
        // One memo for the whole lineage: structurally identical links (a
        // mutation that undoes an earlier one) collapse to cached outcomes,
        // and the cached coverage replays bit-identically.
        let memo = Rc::new(ExecMemo::new());
        let mut stats = vec![TargetStats::default(); job.targets.len()];
        let record = |program: &clc::Program, stats: &mut [TargetStats]| -> CoverageMap {
            let session = Session::with_memo(program, Rc::clone(&memo));
            let outcomes = run_on_targets_session(&session, &job.targets, &job.exec);
            for (stat, verdict) in stats.iter_mut().zip(classify(&outcomes)) {
                stat.record(verdict);
            }
            session.coverage()
        };
        let mut coverage = record(&base, &mut stats);
        let (mut executed, mut accepted, mut rejected) = (0u32, 0u32, 0u32);
        let mut current = base;
        for step in 0..job.chain {
            // Mutation seeds derive from the lineage seed and the step, so a
            // lineage replays identically regardless of which worker runs it.
            let Some((mutant, _mutation)) = mutate(&current, job_seed(job.seed, 1 + step as u64))
            else {
                continue;
            };
            executed += 1;
            let mutant_coverage = record(&mutant, &mut stats);
            let fresh = coverage.new_bits(&mutant_coverage);
            // The lineage observes the mutant's coverage either way — what
            // the strategy controls is only where the chain continues from.
            coverage.merge(&mutant_coverage);
            let accept = match job.strategy {
                CorpusStrategy::Guided => fresh > 0,
                CorpusStrategy::Blind => true,
            };
            if accept {
                accepted += 1;
                current = mutant;
            } else {
                rejected += 1;
            }
        }
        CorpusRecord {
            coverage,
            stats,
            executed,
            accepted,
            rejected,
        }
    }

    fn judge(executed: CorpusRecord) -> CorpusRecord {
        executed
    }
}

impl JournalPayload for CorpusRecord {
    fn encode(&self) -> String {
        format!(
            "{}|{}|{},{},{}",
            self.coverage.token(),
            stats_row_token(&self.stats),
            self.executed,
            self.accepted,
            self.rejected,
        )
    }

    fn decode(text: &str) -> Result<CorpusRecord, JournalError> {
        let bad = || JournalError::Format(format!("bad corpus record {text:?}"));
        let mut parts = text.split('|');
        let coverage = CoverageMap::parse(parts.next().ok_or_else(bad)?).ok_or_else(bad)?;
        let stats = stats_row_from_token(parts.next().ok_or_else(bad)?)?;
        let counters = parse_fields::<u32>(parts.next().ok_or_else(bad)?, ',', "corpus counters")?;
        if parts.next().is_some() || counters.len() != 3 {
            return Err(bad());
        }
        Ok(CorpusRecord {
            coverage,
            stats,
            executed: counters[0],
            accepted: counters[1],
            rejected: counters[2],
        })
    }
}

/// The folded state of one strategy's half of a corpus campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StrategyTally {
    /// Union of every lineage's coverage map.
    pub coverage: CoverageMap,
    /// Per-target verdict tallies over every executed kernel.
    pub per_target: Vec<TargetStats>,
    /// Lineages folded in.
    pub lineages: u64,
    /// Mutants executed across all lineages.
    pub executed: u64,
    /// Mutants accepted.
    pub accepted: u64,
    /// Mutants rejected.
    pub rejected: u64,
}

impl StrategyTally {
    fn new(targets: usize) -> StrategyTally {
        StrategyTally {
            per_target: vec![TargetStats::default(); targets],
            ..StrategyTally::default()
        }
    }

    /// Folds one lineage's record in.
    pub fn record(&mut self, record: &CorpusRecord) {
        self.coverage.merge(&record.coverage);
        merge_stats_rows(&mut self.per_target, &record.stats);
        self.lineages += 1;
        self.executed += u64::from(record.executed);
        self.accepted += u64::from(record.accepted);
        self.rejected += u64::from(record.rejected);
    }

    /// Kernels executed (every kernel contributes one verdict per target).
    pub fn kernels(&self) -> usize {
        self.per_target.first().map_or(0, TargetStats::total)
    }

    /// Bug-exposing results: wrong code, build failures and crashes summed
    /// over every target (the numerator of the paper-style bug yield).
    pub fn bugs(&self) -> u64 {
        self.per_target
            .iter()
            .map(|s| (s.wrong + s.build_failures + s.crashes) as u64)
            .sum()
    }

    /// Bug-exposing results per executed kernel — the headline
    /// feedback-vs-blind axis (`0.0` when nothing ran yet).
    pub fn bugs_per_kernel(&self) -> f64 {
        if self.kernels() == 0 {
            0.0
        } else {
            self.bugs() as f64 / self.kernels() as f64
        }
    }

    /// Fraction of the 256 coverage bits this strategy saturated.
    pub fn saturation(&self) -> f64 {
        self.coverage.saturation()
    }

    /// Fraction of executed mutants that were accepted (`0.0` when no
    /// mutant ran yet).
    pub fn acceptance_rate(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.executed as f64
        }
    }

    fn token(&self) -> String {
        format!(
            "{}|{}|{},{},{},{}",
            self.coverage.token(),
            stats_row_token(&self.per_target),
            self.lineages,
            self.executed,
            self.accepted,
            self.rejected,
        )
    }

    fn from_token(token: &str) -> Result<StrategyTally, JournalError> {
        let bad = || JournalError::Format(format!("bad strategy tally {token:?}"));
        let mut parts = token.split('|');
        let coverage = CoverageMap::parse(parts.next().ok_or_else(bad)?).ok_or_else(bad)?;
        let per_target = stats_row_from_token(parts.next().ok_or_else(bad)?)?;
        let counters = parse_fields::<u64>(parts.next().ok_or_else(bad)?, ',', "tally counters")?;
        if parts.next().is_some() || counters.len() != 4 {
            return Err(bad());
        }
        Ok(StrategyTally {
            coverage,
            per_target,
            lineages: counters[0],
            executed: counters[1],
            accepted: counters[2],
            rejected: counters[3],
        })
    }

    fn absorb(&mut self, other: StrategyTally) {
        self.coverage.merge(&other.coverage);
        // An empty row is a tally no lineage has reached yet (e.g. a
        // checkpoint deserialized from `-`); adopt the other side's shape.
        if self.per_target.is_empty() {
            self.per_target = other.per_target;
        } else if !other.per_target.is_empty() {
            merge_stats_rows(&mut self.per_target, &other.per_target);
        }
        self.lineages += other.lineages;
        self.executed += other.executed;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
    }
}

/// The aggregation state of a corpus campaign: one [`StrategyTally`] per
/// strategy, in [`CorpusStrategy::ALL`] order.  Coverage merges are bitwise
/// OR and counts sum elementwise, so shard merges stay associative and
/// commutative.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorpusTally {
    /// One tally per strategy, in [`CorpusStrategy::ALL`] order.
    pub per_strategy: [StrategyTally; 2],
}

impl CorpusTally {
    /// An empty tally over `targets` columns.
    pub fn new(targets: usize) -> CorpusTally {
        CorpusTally {
            per_strategy: [StrategyTally::new(targets), StrategyTally::new(targets)],
        }
    }

    /// The tally of one strategy.
    pub fn strategy(&self, strategy: CorpusStrategy) -> &StrategyTally {
        match strategy {
            CorpusStrategy::Guided => &self.per_strategy[0],
            CorpusStrategy::Blind => &self.per_strategy[1],
        }
    }
}

impl Mergeable for CorpusTally {
    fn merge(&mut self, other: CorpusTally) {
        let [guided, blind] = other.per_strategy;
        self.per_strategy[0].absorb(guided);
        self.per_strategy[1].absorb(blind);
    }

    fn serialize(&self) -> String {
        format!(
            "{}!{}",
            self.per_strategy[0].token(),
            self.per_strategy[1].token()
        )
    }

    fn deserialize(text: &str) -> Result<CorpusTally, JournalError> {
        let (guided, blind) = text.split_once('!').ok_or_else(|| {
            JournalError::Format(format!("bad corpus tally {text:?} (expected two halves)"))
        })?;
        Ok(CorpusTally {
            per_strategy: [
                StrategyTally::from_token(guided)?,
                StrategyTally::from_token(blind)?,
            ],
        })
    }
}

/// Result of a corpus campaign: both strategies' folded tallies over the
/// same target columns and kernel budget.
#[derive(Debug, Clone)]
pub struct CorpusCampaignResult {
    /// The targets, in column order.
    pub targets: Vec<TestTarget>,
    /// The folded per-strategy state.
    pub tally: CorpusTally,
}

impl CorpusCampaignResult {
    /// The guided strategy's tally.
    pub fn guided(&self) -> &StrategyTally {
        self.tally.strategy(CorpusStrategy::Guided)
    }

    /// The blind strategy's tally.
    pub fn blind(&self) -> &StrategyTally {
        self.tally.strategy(CorpusStrategy::Blind)
    }
}

/// The self-describing campaign descriptor of a corpus-campaign journal.
pub fn corpus_campaign_descriptor(options: &CorpusOptions, targets: &[TestTarget]) -> String {
    format!(
        "corpus:l{}:c{}:gen{:016x}:cfg{:016x}",
        options.lineages,
        options.chain,
        generator_fingerprint(&options.generator),
        target_fingerprint(targets)
    )
}

/// Parses a [`corpus_campaign_descriptor`] back into (lineages, chain),
/// validating the target fingerprint against `targets`.
fn parse_corpus_descriptor(
    descriptor: &str,
    targets: &[TestTarget],
) -> Result<(usize, usize), JournalError> {
    let fields: Vec<&str> = descriptor.split(':').collect();
    let bad = || JournalError::Format(format!("bad corpus-campaign descriptor {descriptor:?}"));
    if fields.len() != 5 || fields[0] != "corpus" || !fields[3].starts_with("gen") {
        return Err(bad());
    }
    let lineages: usize = fields[1]
        .strip_prefix('l')
        .ok_or_else(bad)?
        .parse()
        .map_err(|_| bad())?;
    let chain: usize = fields[2]
        .strip_prefix('c')
        .ok_or_else(bad)?
        .parse()
        .map_err(|_| bad())?;
    let expected = format!("cfg{:016x}", target_fingerprint(targets));
    if fields[4] != expected {
        return Err(JournalError::Mismatch(format!(
            "journal was recorded over a different target set ({} vs {expected})",
            fields[4]
        )));
    }
    Ok((lineages, chain))
}

/// A sharded corpus campaign's outcome.
#[derive(Debug)]
pub struct ShardedCorpusCampaign {
    /// Partial (or full) per-strategy results over this shard's job slice.
    pub result: CorpusCampaignResult,
    /// Shard/resume metrics.
    pub metrics: ShardMetrics,
    /// Stage timing/hand-off metrics of the underlying staged run.
    pub pipeline: PipelineMetrics,
}

/// Job `g` of a corpus campaign's strategy-major job space: lineage
/// `g % lineages` under strategy `g / lineages`, both strategies reusing
/// the same lineage seeds so the comparison is paired at equal budget.
fn corpus_job(g: u64, options: &CorpusOptions, targets: &Arc<Vec<TestTarget>>) -> (u64, CorpusJob) {
    let lineages = options.lineages as u64;
    let strategy = CorpusStrategy::ALL[(g / lineages) as usize];
    let seed = job_seed(options.seed_offset, g % lineages);
    (
        seed,
        CorpusJob {
            strategy,
            seed,
            chain: options.chain,
            generator: options.generator.clone(),
            exec: options.exec.clone(),
            targets: Arc::clone(targets),
        },
    )
}

fn fold_record(tally: &mut CorpusTally, g: u64, lineages: u64, record: &CorpusRecord) {
    tally.per_strategy[(g / lineages) as usize].record(record);
}

/// Runs one shard of a corpus campaign with an optional resumable journal.
///
/// The job space is strategy-major: jobs `0..lineages` are the guided
/// lineages, `lineages..2*lineages` the blind ones, with paired seeds.
pub fn run_corpus_campaign_sharded(
    scheduler: &Scheduler,
    configs: &[Configuration],
    options: &CorpusOptions,
    select: ShardSelect,
    journal: Option<&JournalOptions>,
) -> Result<ShardedCorpusCampaign, JournalError> {
    let targets = Arc::new(targets_for(configs));
    let descriptor = corpus_campaign_descriptor(options, &targets);
    let total_jobs = (CorpusStrategy::ALL.len() * options.lineages) as u64;
    let spec = ShardSpec::select(options.seed_offset, total_jobs, select);
    let run = run_sharded::<CorpusJob, _>(scheduler, &spec, &descriptor, journal, |g| {
        corpus_job(g, options, &targets)
    })?;
    let mut tally = CorpusTally::new(targets.len());
    for (g, record) in &run.outputs {
        fold_record(&mut tally, *g, options.lineages as u64, record);
    }
    Ok(ShardedCorpusCampaign {
        result: CorpusCampaignResult {
            targets: targets.as_ref().clone(),
            tally,
        },
        metrics: run.metrics,
        pipeline: run.pipeline,
    })
}

/// Runs a corpus campaign over the whole job space on an explicit
/// scheduler, with no journal.
pub fn run_corpus_campaign_with(
    scheduler: &Scheduler,
    configs: &[Configuration],
    options: &CorpusOptions,
) -> CorpusCampaignResult {
    run_corpus_campaign_sharded(scheduler, configs, options, ShardSelect::whole(), None)
        .expect("journal-less campaigns cannot fail")
        .result
}

/// [`run_corpus_campaign_with`] on the default scheduler.
pub fn run_corpus_campaign(
    configs: &[Configuration],
    options: &CorpusOptions,
) -> CorpusCampaignResult {
    run_corpus_campaign_with(&Scheduler::from_env(), configs, options)
}

/// One lease's worth of a corpus campaign, executed by a fleet worker over
/// the same strategy-major job space as [`run_corpus_campaign_sharded`].
#[allow(clippy::too_many_arguments)]
pub fn run_corpus_campaign_range(
    scheduler: &Scheduler,
    configs: &[Configuration],
    options: &CorpusOptions,
    lease: u32,
    range: Range<u64>,
    journal: Option<&JournalOptions>,
    checkpoint: Option<CheckpointPolicy>,
    stop_before: Option<u64>,
) -> Result<FoldRun<CorpusTally>, JournalError> {
    let targets = Arc::new(targets_for(configs));
    let descriptor = corpus_campaign_descriptor(options, &targets);
    let total_jobs = (CorpusStrategy::ALL.len() * options.lineages) as u64;
    let header = lease_header(&descriptor, options.seed_offset, total_jobs, lease, range);
    let targets_len = targets.len();
    let lineages = options.lineages as u64;
    run_range_fold::<CorpusJob, CorpusTally, _, _>(
        scheduler,
        &header,
        journal,
        checkpoint,
        stop_before,
        |g| corpus_job(g, options, &targets),
        || CorpusTally::new(targets_len),
        |tally, g, record| fold_record(tally, g, lineages, &record),
    )
}

/// Merges any subset of a corpus campaign's shard/lease journals back into
/// a (full or partial) result without re-running anything.
pub fn merge_corpus_campaign_journals(
    paths: &[PathBuf],
    configs: &[Configuration],
) -> Result<(CorpusCampaignResult, RefoldSummary), JournalError> {
    let targets = targets_for(configs);
    let first = paths.first().ok_or_else(|| {
        JournalError::Mismatch("no journals to merge (expected at least one path)".into())
    })?;
    let header = crate::journal::load_journal(first)?.header;
    let (lineages, _chain) = parse_corpus_descriptor(&header.campaign, &targets)?;
    let targets_len = targets.len();
    let (tally, summary) = refold_journals::<CorpusRecord, CorpusTally>(
        paths,
        |campaign| campaign == header.campaign,
        |_| Ok(CorpusTally::new(targets_len)),
        |tally, g, record| fold_record(tally, g, lineages as u64, &record),
    )?;
    Ok((CorpusCampaignResult { targets, tally }, summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differential::Verdict;

    fn sample_record(bit: u32) -> CorpusRecord {
        let mut coverage = CoverageMap::new();
        coverage.set(clsmith::CoverageClass::Rules, bit);
        let mut stats = vec![TargetStats::default(); 2];
        stats[0].record(Verdict::WrongCode);
        stats[1].record(Verdict::Ok);
        CorpusRecord {
            coverage,
            stats,
            executed: 5,
            accepted: 3,
            rejected: 2,
        }
    }

    #[test]
    fn corpus_record_roundtrips_through_the_journal_encoding() {
        let record = sample_record(17);
        let token = record.encode();
        assert!(!token.contains(char::is_whitespace));
        assert_eq!(CorpusRecord::decode(&token).unwrap(), record);
        assert!(CorpusRecord::decode("garbage").is_err());
    }

    #[test]
    fn corpus_tally_merge_matches_single_fold() {
        let records = [sample_record(1), sample_record(2), sample_record(3)];
        // Fold all three guided records into one tally...
        let mut whole = CorpusTally::new(2);
        for r in &records {
            whole.per_strategy[0].record(r);
        }
        // ...and compare against merging two partial tallies.
        let mut left = CorpusTally::new(2);
        left.per_strategy[0].record(&records[0]);
        let mut right = CorpusTally::new(2);
        right.per_strategy[0].record(&records[1]);
        right.per_strategy[0].record(&records[2]);
        left.merge(right);
        assert_eq!(left, whole);
        // And the tally survives the journal checkpoint encoding.
        let reloaded = CorpusTally::deserialize(&whole.serialize()).unwrap();
        assert_eq!(reloaded, whole);
    }

    #[test]
    fn strategy_tally_rates() {
        let mut tally = StrategyTally::new(2);
        assert_eq!(tally.bugs_per_kernel(), 0.0);
        assert_eq!(tally.acceptance_rate(), 0.0);
        tally.record(&sample_record(9));
        assert_eq!(tally.kernels(), 1);
        assert_eq!(tally.bugs(), 1);
        assert!(tally.bugs_per_kernel() > 0.0);
        assert!((tally.acceptance_rate() - 0.6).abs() < 1e-9);
        assert!(tally.saturation() > 0.0);
    }

    #[test]
    fn descriptor_roundtrips_and_pins_the_target_set() {
        let configs = vec![opencl_sim::configuration(1), opencl_sim::configuration(3)];
        let targets = targets_for(&configs);
        let options = CorpusOptions {
            lineages: 7,
            chain: 4,
            ..CorpusOptions::default()
        };
        let descriptor = corpus_campaign_descriptor(&options, &targets);
        assert_eq!(
            parse_corpus_descriptor(&descriptor, &targets).unwrap(),
            (7, 4)
        );
        let other = targets_for(&[opencl_sim::configuration(5)]);
        assert!(parse_corpus_descriptor(&descriptor, &other).is_err());
    }

    #[test]
    fn guided_and_blind_lineages_share_base_seeds_at_equal_budget() {
        let configs = vec![opencl_sim::configuration(1), opencl_sim::configuration(3)];
        let options = CorpusOptions {
            lineages: 2,
            chain: 3,
            exec: ExecOptions {
                store: None,
                ..ExecOptions::default()
            },
            ..CorpusOptions::default()
        };
        let result = run_corpus_campaign_with(&Scheduler::new(2), &configs, &options);
        let (guided, blind) = (result.guided(), result.blind());
        assert_eq!(guided.lineages, 2);
        assert_eq!(blind.lineages, 2);
        // Equal kernel budget: every lineage executes 1 + chain kernels.
        assert_eq!(guided.kernels(), 2 * (1 + 3));
        assert_eq!(guided.kernels(), blind.kernels());
        // Blind accepts everything it executes.
        assert_eq!(blind.accepted, blind.executed);
        assert_eq!(blind.rejected, 0);
        assert_eq!(guided.accepted + guided.rejected, guided.executed);
        // Both observed real coverage.
        assert!(guided.saturation() > 0.0);
        assert!(blind.saturation() > 0.0);
    }
}
