//! Deterministic fault injection for the campaign fleet.
//!
//! Robustness claims are only as good as their tests, and the recovery
//! paths of [`crate::fleet`] — lease re-issue after a worker dies, torn
//! journal tails, expired leases, store I/O errors — are exactly the paths
//! an ordinary run never takes.  This module makes every one of them
//! reachable *on purpose*, from a compact spec that is deterministic given
//! the campaign seed, so a CI chaos run is reproducible bit for bit.
//!
//! ## Spec grammar (`CLFUZZ_FAULTS` / `--faults`)
//!
//! A spec is a comma-separated list of events:
//!
//! ```text
//! spec    := event ("," event)*
//! event   := kind "@" index ("x" times)?     explicit job/ordinal index
//!          | kind "~" count                  seeded: count indices drawn
//!                                            from the campaign seed
//! kind    := "kill" | "torn" | "hang" | "io"
//! ```
//!
//! * `kill@J` — the worker holding the lease containing job `J` completes
//!   (and journals) every job below `J`, then aborts without warning.
//! * `torn@J` — like `kill@J`, but the worker also appends a corrupt
//!   half-record to its lease journal before dying, so recovery must drop
//!   a torn tail, not just resume a clean prefix.
//! * `hang@J` — the worker completes every job below `J` then stops making
//!   progress without exiting; only the coordinator's journal-growth lease
//!   expiry can reclaim the range.
//! * `io@N` — the `N`-th store I/O operation (a process-global ordinal
//!   counted across reads and writes) fails with an injected I/O error.
//!   `io@NxK` fails `K` consecutive ordinals: `x1` exercises the store's
//!   transient-retry path (the retry draws the next ordinal and succeeds),
//!   larger `K` exhausts the retry.
//! * `kind~C` (kill/torn/hang only) — `C` job indices drawn uniformly from
//!   `0..total_jobs` by a [`clsmith::Rng`] seeded from the campaign seed,
//!   so "chaos, but reproducible" needs no index arithmetic by hand.
//!
//! `xT` multiplicity on a job event means the fault re-fires on the first
//! `T` attempts of its lease: `kill@3x2` kills the worker on the original
//! lease *and* on the first retry, and with `--max-retries 1` poisons the
//! range — the dead-letter/quarantine path.
//!
//! ## Attempt semantics
//!
//! Workers are stateless across processes, so a fault schedule cannot rely
//! on in-memory state: [`FaultPlan::lease_action`] is a pure function of
//! (lease range, attempt number).  The events inside a lease's range are
//! expanded by multiplicity and sorted by job index; attempt `k` of that
//! lease fires the `k`-th expanded event, and attempts past the end run
//! clean.  Sorting makes the fire index non-decreasing over attempts,
//! which guarantees forward progress: every retry starts at or past the
//! previous attempt's journal watermark.

use std::fmt;
use std::ops::Range;
use std::path::Path;

use clsmith::{job_seed, Rng};

/// The kinds of injectable faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// Abort the worker process after completing jobs below the index.
    Kill,
    /// Abort like [`FaultKind::Kill`], leaving a torn journal tail behind.
    Torn,
    /// Stop making progress without exiting (reclaimed by lease expiry).
    Hang,
    /// Fail a store I/O operation (the index is a store-op ordinal).
    Io,
}

impl FaultKind {
    /// The kind's spec-grammar token (`kill`, `torn`, `hang`, `io`).
    pub fn token(self) -> &'static str {
        match self {
            FaultKind::Kill => "kill",
            FaultKind::Torn => "torn",
            FaultKind::Hang => "hang",
            FaultKind::Io => "io",
        }
    }

    fn from_token(token: &str) -> Option<FaultKind> {
        match token {
            "kill" => Some(FaultKind::Kill),
            "torn" => Some(FaultKind::Torn),
            "hang" => Some(FaultKind::Hang),
            "io" => Some(FaultKind::Io),
            _ => None,
        }
    }
}

/// One parsed spec event, before seeded events are resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SpecEvent {
    /// `kind@index[xTimes]`.
    At {
        kind: FaultKind,
        index: u64,
        times: u32,
    },
    /// `kind~count` — indices drawn from the campaign seed at resolve time.
    Seeded { kind: FaultKind, count: u32 },
}

/// A parsed fault spec (see the module docs for the grammar).  Resolve it
/// against a campaign with [`FaultPlan::resolve`] before use.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSpec {
    events: Vec<SpecEvent>,
}

/// Upper bound on `xN` multiplicities and `~C` counts — a typo should not
/// allocate gigabytes of schedule.
const MAX_TIMES: u32 = 10_000;

impl FaultSpec {
    /// Parses a spec string.  The empty string is the empty (fault-free)
    /// spec.
    pub fn parse(text: &str) -> Result<FaultSpec, String> {
        let mut events = Vec::new();
        for token in text.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            events.push(Self::parse_event(token)?);
        }
        Ok(FaultSpec { events })
    }

    fn parse_event(token: &str) -> Result<SpecEvent, String> {
        let bad = || {
            format!(
                "bad fault event {token:?}: expected kind@index[xN] or kind~count \
                 with kind one of kill|torn|hang|io"
            )
        };
        if let Some((kind, rest)) = token.split_once('@') {
            let kind = FaultKind::from_token(kind).ok_or_else(bad)?;
            let (index, times) = match rest.split_once('x') {
                Some((index, times)) => (
                    index.parse::<u64>().map_err(|_| bad())?,
                    times.parse::<u32>().map_err(|_| bad())?,
                ),
                None => (rest.parse::<u64>().map_err(|_| bad())?, 1),
            };
            if times == 0 || times > MAX_TIMES {
                return Err(bad());
            }
            Ok(SpecEvent::At { kind, index, times })
        } else if let Some((kind, count)) = token.split_once('~') {
            let kind = FaultKind::from_token(kind).ok_or_else(bad)?;
            if kind == FaultKind::Io {
                return Err(format!(
                    "bad fault event {token:?}: io faults need explicit ordinals (io@N)"
                ));
            }
            let count = count.parse::<u32>().map_err(|_| bad())?;
            if count == 0 || count > MAX_TIMES {
                return Err(bad());
            }
            Ok(SpecEvent::Seeded { kind, count })
        } else {
            Err(bad())
        }
    }

    /// Parses `CLFUZZ_FAULTS` if set, else the explicit `--faults` value,
    /// else the empty spec.
    pub fn from_env_or(cli: Option<&str>) -> Result<FaultSpec, String> {
        match std::env::var("CLFUZZ_FAULTS") {
            Ok(text) => FaultSpec::parse(&text),
            Err(_) => cli.map_or(Ok(FaultSpec::default()), FaultSpec::parse),
        }
    }

    /// Whether the spec injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// What a worker must do with one lease attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseFault {
    /// The fault to enact once `stop_before` is reached.
    pub kind: FaultKind,
    /// Complete (and journal) only jobs below this index, then enact the
    /// fault.  Clamped into the lease range by [`FaultPlan::lease_action`].
    pub stop_before: u64,
}

/// A fault spec resolved against a concrete campaign: seeded events have
/// drawn their indices, everything is sorted and ready for stateless
/// per-lease lookup.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Job-indexed events (kill/torn/hang) as (index, kind, times), sorted
    /// by index.
    job_events: Vec<(u64, FaultKind, u32)>,
    /// Store-op events as (first ordinal, consecutive count), sorted.
    io_events: Vec<(u64, u32)>,
}

impl FaultPlan {
    /// Resolves a spec against a campaign: seeded events draw their job
    /// indices from an RNG derived from the campaign seed, so every process
    /// of a fleet (and every re-run of a CI job) computes the same plan.
    pub fn resolve(spec: &FaultSpec, campaign_seed: u64, total_jobs: u64) -> FaultPlan {
        let mut job_events: Vec<(u64, FaultKind, u32)> = Vec::new();
        let mut io_events: Vec<(u64, u32)> = Vec::new();
        for event in &spec.events {
            match *event {
                SpecEvent::At { kind, index, times } => match kind {
                    FaultKind::Io => io_events.push((index, times)),
                    _ => job_events.push((index, kind, times)),
                },
                SpecEvent::Seeded { kind, count } => {
                    // A distinct stream per kind, all derived from the
                    // campaign seed.
                    let tag = kind as u64 + 0xFA17;
                    let mut rng = Rng::seed_from_u64(job_seed(campaign_seed, tag));
                    for _ in 0..count {
                        let index = if total_jobs == 0 {
                            0
                        } else {
                            rng.next_u64() % total_jobs
                        };
                        job_events.push((index, kind, 1));
                    }
                }
            }
        }
        job_events.sort();
        io_events.sort_unstable();
        FaultPlan {
            job_events,
            io_events,
        }
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.job_events.is_empty() && self.io_events.is_empty()
    }

    /// The fault attempt `attempt` of a lease over `range` must enact, if
    /// any (see the module docs for the attempt semantics).
    pub fn lease_action(&self, range: &Range<u64>, attempt: u32) -> Option<LeaseFault> {
        let mut expanded: Vec<(u64, FaultKind)> = Vec::new();
        for &(index, kind, times) in &self.job_events {
            if range.contains(&index) {
                for _ in 0..times {
                    expanded.push((index, kind));
                }
            }
        }
        expanded.sort();
        // Attempts are 1-based: attempt n enacts the n-th event in index
        // order, so retries march forward through the schedule and a lease
        // with k scheduled events completes on attempt k+1.
        expanded
            .get((attempt as usize).checked_sub(1)?)
            .map(|&(index, kind)| LeaseFault {
                kind,
                stop_before: index.max(range.start),
            })
    }

    /// The store-op fault predicate: whether global store operation
    /// `ordinal` should fail.
    pub fn io_fault(&self, ordinal: u64) -> bool {
        self.io_events
            .iter()
            .any(|&(first, count)| ordinal >= first && ordinal - first < count as u64)
    }

    /// Installs this plan's store I/O faults as the process-global store
    /// fault hook (see [`opencl_sim::store::set_io_fault_hook`]); a plan
    /// without io events clears the hook.
    pub fn install_store_faults(&self) {
        if self.io_events.is_empty() {
            opencl_sim::store::set_io_fault_hook(None);
            return;
        }
        let events = self.io_events.clone();
        opencl_sim::store::set_io_fault_hook(Some(std::sync::Arc::new(move |_op, ordinal| {
            events
                .iter()
                .any(|&(first, count)| ordinal >= first && ordinal - first < count as u64)
                .then_some(std::io::ErrorKind::Other)
        })));
    }
}

impl fmt::Display for FaultPlan {
    /// Renders the resolved plan in the spec grammar (seeded events appear
    /// with their drawn indices), so logs record exactly what will fire.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut item = |f: &mut fmt::Formatter<'_>, text: String| -> fmt::Result {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            write!(f, "{text}")
        };
        for &(index, kind, times) in &self.job_events {
            let suffix = if times > 1 {
                format!("x{times}")
            } else {
                String::new()
            };
            item(f, format!("{}@{index}{suffix}", kind.token()))?;
        }
        for &(ordinal, times) in &self.io_events {
            let suffix = if times > 1 {
                format!("x{times}")
            } else {
                String::new()
            };
            item(f, format!("io@{ordinal}{suffix}"))?;
        }
        if first {
            write!(f, "(none)")?;
        }
        Ok(())
    }
}

/// Appends a torn tail to a journal file: one complete record line whose
/// checksum is wrong, then a half-written line with no newline — the
/// on-disk residue of a worker killed mid-write, which
/// [`crate::journal::load_journal`] must drop on resume.
pub fn tear_journal_tail(path: &Path) -> std::io::Result<()> {
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new().append(true).open(path)?;
    file.write_all(b"R 999999 0000000000000000 0000000000000000 torn 0000000000000000\n")?;
    file.write_all(b"R 999999 00000000")?;
    file.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_the_grammar() {
        let spec = FaultSpec::parse("kill@3, torn@5x2,hang@8,io@10x3,kill~2").unwrap();
        assert_eq!(spec.events.len(), 5);
        assert!(FaultSpec::parse("").unwrap().is_empty());
        for bad in [
            "boom@3", "kill@", "kill@x2", "kill@3x0", "io~2", "kill~0", "kill-3",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn resolution_is_deterministic_and_in_bounds() {
        let spec = FaultSpec::parse("kill~3,hang~2,torn@7").unwrap();
        let a = FaultPlan::resolve(&spec, 42, 100);
        let b = FaultPlan::resolve(&spec, 42, 100);
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::resolve(&spec, 43, 100);
        assert_ne!(a, c, "different seed draws different indices");
        for &(index, _, _) in &a.job_events {
            assert!(index < 100);
        }
        assert_eq!(a.job_events.len(), 6);
    }

    #[test]
    fn lease_actions_fire_in_index_order_per_attempt() {
        let spec = FaultSpec::parse("kill@12,torn@15,hang@3").unwrap();
        let plan = FaultPlan::resolve(&spec, 0, 20);
        let range = 10..20u64;
        assert_eq!(
            plan.lease_action(&range, 1),
            Some(LeaseFault {
                kind: FaultKind::Kill,
                stop_before: 12
            })
        );
        assert_eq!(
            plan.lease_action(&range, 2),
            Some(LeaseFault {
                kind: FaultKind::Torn,
                stop_before: 15
            })
        );
        assert_eq!(plan.lease_action(&range, 3), None, "third attempt is clean");
        // The hang@3 event belongs to a different lease.
        assert_eq!(
            plan.lease_action(&(0..10), 1),
            Some(LeaseFault {
                kind: FaultKind::Hang,
                stop_before: 3
            })
        );
        // Attempts are 1-based; a malformed attempt 0 enacts nothing.
        assert_eq!(plan.lease_action(&range, 0), None);
    }

    #[test]
    fn multiplicity_refires_across_attempts() {
        let spec = FaultSpec::parse("kill@5x3").unwrap();
        let plan = FaultPlan::resolve(&spec, 0, 10);
        for attempt in 1..=3 {
            assert_eq!(
                plan.lease_action(&(0..10), attempt),
                Some(LeaseFault {
                    kind: FaultKind::Kill,
                    stop_before: 5
                })
            );
        }
        assert_eq!(plan.lease_action(&(0..10), 4), None);
    }

    #[test]
    fn io_faults_cover_consecutive_ordinals() {
        let spec = FaultSpec::parse("io@5,io@10x3").unwrap();
        let plan = FaultPlan::resolve(&spec, 0, 10);
        let faulted: Vec<u64> = (0..20).filter(|&o| plan.io_fault(o)).collect();
        assert_eq!(faulted, vec![5, 10, 11, 12]);
    }

    #[test]
    fn plan_renders_for_the_log() {
        let spec = FaultSpec::parse("torn@5x2,kill@3,io@7").unwrap();
        let plan = FaultPlan::resolve(&spec, 0, 10);
        assert_eq!(plan.to_string(), "kill@3,torn@5x2,io@7");
        assert_eq!(FaultPlan::default().to_string(), "(none)");
    }

    #[test]
    fn torn_tail_is_dropped_by_the_loader() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("clfuzz-faults-torn-{}.log", std::process::id()));
        let header = crate::shard::lease_header("test:torn", 1, 10, 0, 0..10);
        let writer = crate::journal::JournalWriter::create(&path, &header).unwrap();
        writer.record(crate::journal::JournalRecord::new(0, 1, "p0".into()));
        writer.finish().unwrap();
        tear_journal_tail(&path).unwrap();
        let loaded = crate::journal::load_journal(&path).unwrap();
        assert_eq!(loaded.records.len(), 1, "the torn tail must be dropped");
        assert!(loaded.dropped_bytes > 0);
        let _ = std::fs::remove_file(&path);
    }
}
