//! CLsmith+EMI testing campaigns (Table 5, §7.4).
//!
//! A *base* program is an ALL-mode CLsmith kernel containing 1–5 EMI blocks
//! that survives the liveness check (inverting the `dead` array changes its
//! result, §7.4).  From each base a set of variants is derived with the
//! leaf/compound/lift pruning grid, and every variant is run on a single
//! (configuration, optimisation level) target: because all variants are
//! equivalent modulo the standard `dead` input, any disagreement between two
//! terminating variants indicates a miscompilation — no cross-configuration
//! comparison is needed, which is the selling point of EMI testing (§3.2).

use crate::campaign::CampaignOptions;
use crate::exec::{job_seed, PipelineMetrics, Scheduler, StagedJob};
use crate::journal::{checksum, JournalError};
use crate::shard::{
    refold_journals, run_sharded, JournalOptions, JournalPayload, Mergeable, RefoldSummary,
    ShardMetrics, ShardSelect, ShardSpec,
};
use clsmith::{generate, prune_variant, GenMode, GeneratorOptions, PruneProbabilities};
use opencl_sim::{Configuration, ExecMemo, ExecOptions, OptLevel, Session, TestOutcome};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::Arc;

/// Per-target tallies over base programs (the rows of Table 5).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EmiStats {
    /// Bases for which no variant terminated with a value ("base fails").
    pub base_fails: usize,
    /// Bases with two terminating variants that disagree (`w`).
    pub wrong: usize,
    /// Bases with at least one variant that failed to build (`bf`).
    pub build_failures: usize,
    /// Bases with at least one variant that crashed (`c`).
    pub crashes: usize,
    /// Bases with at least one variant that timed out (`to`).
    pub timeouts: usize,
    /// Bases whose variants all terminated with one uniform value ("stable").
    pub stable: usize,
}

impl EmiStats {
    /// Whether no base has been tallied yet — a streaming/partial table
    /// renders such columns as `–` rather than a misleading row of zeros.
    pub fn is_empty(&self) -> bool {
        self.base_fails
            + self.wrong
            + self.build_failures
            + self.crashes
            + self.timeouts
            + self.stable
            == 0
    }
}

/// Result of an EMI campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmiCampaignResult {
    /// Number of base programs that passed the liveness check.
    pub bases: usize,
    /// Number of variants per base.
    pub variants_per_base: usize,
    /// Target labels in column order (e.g. `"1-"`, `"1+"`, ...).
    pub labels: Vec<String>,
    /// Tallies per target.
    pub stats: Vec<EmiStats>,
}

impl EmiCampaignResult {
    /// Stats for a target label.
    pub fn stats_for(&self, label: &str) -> Option<&EmiStats> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| &self.stats[i])
    }
}

/// Options for the EMI campaign.
#[derive(Debug, Clone)]
pub struct EmiCampaignOptions {
    /// Number of base programs to accept (the paper uses 180 after
    /// discarding).
    pub bases: usize,
    /// How many pruning-probability combinations to use per base (the paper
    /// uses all 40; smaller values subsample the grid evenly).
    pub variants_per_base: usize,
    /// Campaign scale options (generator sizes, execution options).
    pub campaign: CampaignOptions,
}

impl Default for EmiCampaignOptions {
    fn default() -> Self {
        EmiCampaignOptions {
            bases: 6,
            variants_per_base: 10,
            campaign: CampaignOptions::default(),
        }
    }
}

/// One candidate-base probe: generate an ALL-mode EMI kernel from the
/// job-derived seed and apply the §7.4 liveness check (inverting the `dead`
/// array must change the result).
#[derive(Debug, Clone)]
pub struct LivenessProbeJob {
    /// The candidate's generator seed.
    pub seed: u64,
    /// Base generator options (mode/seed/EMI overridden).
    pub generator: GeneratorOptions,
    /// Execution options for the two reference runs.
    pub exec: ExecOptions,
}

/// Stage-1 output of a [`LivenessProbeJob`]: the candidate base kernel plus
/// the execution options for the two reference runs.
#[derive(Debug)]
pub struct LivenessCandidate {
    /// The generated EMI candidate.
    pub program: clc::Program,
    /// Execution options for the reference runs.
    pub exec: ExecOptions,
}

/// Stage-2 output of a [`LivenessProbeJob`]: the candidate and its two
/// reference outcomes (normal and `dead`-inverted).
#[derive(Debug)]
pub struct LivenessOutcomes {
    /// The candidate under probe.
    pub program: clc::Program,
    /// Reference outcome with the standard `dead` input.
    pub normal: TestOutcome,
    /// Reference outcome with the `dead` array inverted.
    pub inverted: TestOutcome,
}

impl StagedJob for LivenessProbeJob {
    type Generated = LivenessCandidate;
    type Executed = LivenessOutcomes;
    type Output = Option<clc::Program>;

    fn generate(self) -> LivenessCandidate {
        let gen_opts = GeneratorOptions {
            mode: GenMode::All,
            seed: self.seed,
            ..self.generator
        }
        .with_emi();
        LivenessCandidate {
            program: generate(&gen_opts),
            exec: self.exec,
        }
    }

    fn execute(candidate: LivenessCandidate) -> LivenessOutcomes {
        // One session for both reference runs: the normal and inverted
        // executions differ only in buffer overrides, so they share a
        // single lowered kernel (distinct outcome-cache lines).
        let session = Session::new(&candidate.program);
        let normal = session.reference_execute(&candidate.exec);
        let mut inverted_exec = candidate.exec.clone();
        Arc::make_mut(&mut inverted_exec.buffer_overrides).insert(
            "dead".into(),
            clc::BufferInit::ReverseIota.materialize(candidate.program.dead_len),
        );
        let inverted = session.reference_execute(&inverted_exec);
        LivenessOutcomes {
            program: candidate.program,
            normal,
            inverted,
        }
    }

    fn judge(outcomes: LivenessOutcomes) -> Option<clc::Program> {
        let live = match (&outcomes.normal, &outcomes.inverted) {
            (TestOutcome::Result { hash: a, .. }, TestOutcome::Result { hash: b, .. }) => a != b,
            // An inverted run that fails outright also proves the blocks are
            // reachable under the inverted input.
            (TestOutcome::Result { .. }, _) => true,
            _ => false,
        };
        live.then_some(outcomes.program)
    }
}

/// Generates base programs that pass the §7.4 liveness check: the EMI blocks
/// must not all sit in already-dead code, which is checked by comparing the
/// reference result with the `dead` array inverted.
///
/// Parallelised over the default scheduler; see [`generate_live_bases_with`].
pub fn generate_live_bases(options: &EmiCampaignOptions) -> Vec<clc::Program> {
    generate_live_bases_with(&Scheduler::from_env(), options)
}

/// [`generate_live_bases`] on an explicit scheduler.
///
/// Probes are evaluated in chunks of candidate seeds, but acceptance scans
/// candidates strictly in index order and keeps the first `options.bases`
/// live ones — exactly the set the sequential loop accepts — so the base
/// list is independent of both the worker count and the chunk size.
pub fn generate_live_bases_with(
    scheduler: &Scheduler,
    options: &EmiCampaignOptions,
) -> Vec<clc::Program> {
    let max_attempts = options.bases * 20 + 50;
    let mut bases = Vec::new();
    let mut attempt = 0usize;
    while bases.len() < options.bases && attempt < max_attempts {
        // Probe only about as many candidates as are still missing (with a
        // floor that keeps every worker busy), so a nearly-complete campaign
        // does not burn a full-sized chunk for its last base.
        let missing = options.bases - bases.len();
        let chunk = missing.max(scheduler.threads() * 4);
        let upper = (attempt + chunk).min(max_attempts);
        let jobs: Vec<LivenessProbeJob> = (attempt..upper)
            .map(|candidate| LivenessProbeJob {
                seed: job_seed(options.campaign.seed_offset, candidate as u64),
                generator: options.campaign.generator.clone(),
                exec: options.campaign.exec.clone(),
            })
            .collect();
        for program in scheduler.run_staged_all(jobs).into_iter().flatten() {
            if bases.len() < options.bases {
                bases.push(program);
            }
        }
        attempt = upper;
    }
    bases
}

/// The evenly subsampled pruning grid of the requested size.
pub fn pruning_grid(variants: usize) -> Vec<PruneProbabilities> {
    let all = PruneProbabilities::table5_combinations();
    if variants >= all.len() {
        return all;
    }
    let step = (all.len() as f64 / variants as f64).max(1.0);
    (0..variants)
        .map(|i| all[((i as f64 * step) as usize).min(all.len() - 1)])
        .collect()
}

/// One base program's worth of EMI campaign work: derive every pruning
/// variant (seeded from the base index, not the worker), judge the base on
/// every (configuration, optimisation level) column.  The pruning grid and
/// configuration list are shared read-only state behind [`Arc`]s.
#[derive(Debug, Clone)]
pub struct EmiBaseJob {
    /// The live base program.
    pub base: clc::Program,
    /// Index of the base in the campaign (drives variant seeding).
    pub base_index: usize,
    /// The campaign seed (`options.campaign.seed_offset`).
    pub campaign_seed: u64,
    /// The pruning-probability grid, shared across the batch.
    pub grid: Arc<Vec<PruneProbabilities>>,
    /// The configurations, shared across the batch.
    pub configs: Arc<Vec<Configuration>>,
    /// Execution options.
    pub exec: ExecOptions,
}

/// Stage-1 output of an [`EmiBaseJob`]: the base's pruning-variant grid
/// plus the judging context.  Variant seeding depends only on the campaign
/// seed and the base index, never on which worker pruned — the staged
/// hand-off preserves that.
#[derive(Debug)]
pub struct EmiVariantGrid {
    /// The derived pruning variants, in grid order.
    pub variants: Vec<clc::Program>,
    /// The configurations, shared across the batch.
    pub configs: Arc<Vec<Configuration>>,
    /// Execution options.
    pub exec: ExecOptions,
}

/// Stage-2 output of an [`EmiBaseJob`]: one outcome row per
/// (configuration, optimisation level) column, each row holding every
/// variant's outcome on that column, in variant order.
pub type EmiOutcomeGrid = Vec<Vec<TestOutcome>>;

impl StagedJob for EmiBaseJob {
    type Generated = EmiVariantGrid;
    type Executed = EmiOutcomeGrid;
    type Output = Vec<BaseJudgement>;

    /// Variant pruning (stage 1).
    fn generate(self) -> EmiVariantGrid {
        let base_seed = job_seed(self.campaign_seed, self.base_index as u64);
        let variants: Vec<clc::Program> = self
            .grid
            .iter()
            .enumerate()
            .map(|(i, probs)| prune_variant(&self.base, probs, job_seed(base_seed, i as u64)))
            .collect();
        EmiVariantGrid {
            variants,
            configs: self.configs,
            exec: self.exec,
        }
    }

    /// The memoised judging grid (stage 2): one session per variant, all
    /// behind one [`ExecMemo`] spanning the whole (config × opt) grid —
    /// gently pruned variants are often bit-identical to each other (or
    /// compile identically on non-optimising targets across both opt
    /// levels), so the unpruned AST is executed once, not once per target.
    /// The memo is [`Rc`]-based and deliberately never crosses the stage
    /// boundary: it lives and dies with this stage, on whichever worker
    /// runs it.
    fn execute(grid: EmiVariantGrid) -> EmiOutcomeGrid {
        let memo = Rc::new(ExecMemo::new());
        let sessions: Vec<Session<'_>> = grid
            .variants
            .iter()
            .map(|v| Session::with_memo(v, Rc::clone(&memo)))
            .collect();
        let mut rows = Vec::with_capacity(grid.configs.len() * OptLevel::BOTH.len());
        for config in grid.configs.iter() {
            for opt in OptLevel::BOTH {
                rows.push(
                    sessions
                        .iter()
                        .map(|s| s.execute(config, opt, &grid.exec))
                        .collect(),
                );
            }
        }
        rows
    }

    /// Row classification (stage 3): §7.4's per-target verdict over each
    /// outcome row.
    fn judge(rows: EmiOutcomeGrid) -> Vec<BaseJudgement> {
        rows.iter().map(|row| judge_outcomes(row)).collect()
    }
}

/// Runs the EMI campaign against each configuration at both optimisation
/// levels.
///
/// Parallelised over the default scheduler; see [`run_emi_campaign_with`].
pub fn run_emi_campaign(
    configs: &[Configuration],
    options: &EmiCampaignOptions,
) -> EmiCampaignResult {
    run_emi_campaign_with(&Scheduler::from_env(), configs, options)
}

/// [`run_emi_campaign`] on an explicit scheduler — a thin fold over the
/// shard executor ([`run_emi_campaign_sharded`]) covering the whole job
/// space with no journal: one [`EmiBaseJob`] per live base, judgement
/// shards folded into the per-target [`EmiStats`] in base-index order.
pub fn run_emi_campaign_with(
    scheduler: &Scheduler,
    configs: &[Configuration],
    options: &EmiCampaignOptions,
) -> EmiCampaignResult {
    run_emi_campaign_sharded(scheduler, configs, options, ShardSelect::whole(), None)
        .expect("journal-less campaigns cannot fail")
        .result
}

/// The aggregation state of an EMI campaign: per-target base-level tallies,
/// folded from per-base judgement rows.  Counts sum elementwise, so shard
/// merges are associative and commutative.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EmiTally {
    /// Tallies per (configuration, optimisation level) column.
    pub per_target: Vec<EmiStats>,
}

impl EmiTally {
    /// An empty tally over `targets` columns.
    pub fn new(targets: usize) -> EmiTally {
        EmiTally {
            per_target: vec![EmiStats::default(); targets],
        }
    }

    /// Folds one base's per-target judgement row in.
    pub fn record(&mut self, judgements: &[BaseJudgement]) {
        assert_eq!(judgements.len(), self.per_target.len());
        for (stats, judgement) in self.per_target.iter_mut().zip(judgements) {
            record_base(stats, *judgement);
        }
    }
}

impl Mergeable for EmiTally {
    fn merge(&mut self, other: EmiTally) {
        assert_eq!(
            self.per_target.len(),
            other.per_target.len(),
            "cannot merge tallies with different target counts"
        );
        for (a, b) in self.per_target.iter_mut().zip(other.per_target) {
            a.base_fails += b.base_fails;
            a.wrong += b.wrong;
            a.build_failures += b.build_failures;
            a.crashes += b.crashes;
            a.timeouts += b.timeouts;
            a.stable += b.stable;
        }
    }

    fn serialize(&self) -> String {
        if self.per_target.is_empty() {
            return "-".to_string();
        }
        self.per_target
            .iter()
            .map(|s| {
                format!(
                    "{},{},{},{},{},{}",
                    s.base_fails, s.wrong, s.build_failures, s.crashes, s.timeouts, s.stable
                )
            })
            .collect::<Vec<_>>()
            .join(";")
    }

    fn deserialize(text: &str) -> Result<EmiTally, JournalError> {
        if text == "-" {
            return Ok(EmiTally::default());
        }
        let per_target = text
            .split(';')
            .map(|token| {
                let fields = crate::shard::parse_fields::<usize>(token, ',', "EMI stats")?;
                if fields.len() != 6 {
                    return Err(JournalError::Format(format!(
                        "expected 6 EMI counts, got {token:?}"
                    )));
                }
                Ok(EmiStats {
                    base_fails: fields[0],
                    wrong: fields[1],
                    build_failures: fields[2],
                    crashes: fields[3],
                    timeouts: fields[4],
                    stable: fields[5],
                })
            })
            .collect::<Result<_, _>>()?;
        Ok(EmiTally { per_target })
    }
}

/// One base's journal payload: its per-target judgement row, two lowercase
/// hex digits per column (a six-bit mask of
/// `bad_base/wrong/build_failure/crash/timeout/stable`).
impl JournalPayload for Vec<BaseJudgement> {
    fn encode(&self) -> String {
        if self.is_empty() {
            return "-".to_string();
        }
        self.iter()
            .map(|j| {
                let bits = (j.bad_base as u8)
                    | (j.wrong as u8) << 1
                    | (j.build_failure as u8) << 2
                    | (j.crash as u8) << 3
                    | (j.timeout as u8) << 4
                    | (j.stable as u8) << 5;
                format!("{bits:02x}")
            })
            .collect()
    }

    fn decode(text: &str) -> Result<Self, JournalError> {
        if text == "-" {
            return Ok(Vec::new());
        }
        if !text.len().is_multiple_of(2) {
            return Err(JournalError::Format(format!(
                "judgement row has odd length: {text:?}"
            )));
        }
        // Chunk over bytes, not `&text[..]` slices: a foreign journal's
        // payload may hold multi-byte characters, and slicing at a
        // non-boundary would panic instead of reporting the corruption.
        text.as_bytes()
            .chunks(2)
            .map(|pair| {
                let bits = std::str::from_utf8(pair)
                    .ok()
                    .and_then(|hex| u8::from_str_radix(hex, 16).ok())
                    .ok_or_else(|| {
                        JournalError::Format(format!("bad judgement byte in {text:?}"))
                    })?;
                if bits >= 64 {
                    return Err(JournalError::Format(format!(
                        "judgement bits out of range in {text:?}"
                    )));
                }
                Ok(BaseJudgement {
                    bad_base: bits & 1 != 0,
                    wrong: bits & 2 != 0,
                    build_failure: bits & 4 != 0,
                    crash: bits & 8 != 0,
                    timeout: bits & 16 != 0,
                    stable: bits & 32 != 0,
                })
            })
            .collect()
    }
}

/// Column labels of an EMI campaign over `configs` (e.g. `1-`, `1+`, ...).
fn emi_labels(configs: &[Configuration]) -> Vec<String> {
    let mut labels = Vec::with_capacity(configs.len() * OptLevel::BOTH.len());
    for config in configs {
        for opt in OptLevel::BOTH {
            labels.push(config.label(opt));
        }
    }
    labels
}

/// The self-describing campaign descriptor of an EMI campaign journal:
/// requested bases, variants per base, and a fingerprint of the target
/// columns.
pub fn emi_campaign_descriptor(options: &EmiCampaignOptions, configs: &[Configuration]) -> String {
    let labels = emi_labels(configs);
    format!(
        "emi:b{}:v{}:gen{:016x}:cfg{:016x}",
        options.bases,
        pruning_grid(options.variants_per_base).len(),
        crate::campaign::generator_fingerprint(&options.campaign.generator),
        checksum(labels.join("\n").as_bytes())
    )
}

fn parse_emi_descriptor(
    descriptor: &str,
    configs: &[Configuration],
) -> Result<usize, JournalError> {
    let fields: Vec<&str> = descriptor.split(':').collect();
    let bad = || JournalError::Format(format!("bad EMI campaign descriptor {descriptor:?}"));
    if fields.len() != 5 || fields[0] != "emi" || !fields[3].starts_with("gen") {
        return Err(bad());
    }
    let variants: usize = fields[2]
        .strip_prefix('v')
        .ok_or_else(bad)?
        .parse()
        .map_err(|_| bad())?;
    let labels = emi_labels(configs);
    let expected = format!("cfg{:016x}", checksum(labels.join("\n").as_bytes()));
    if fields[4] != expected {
        return Err(JournalError::Mismatch(format!(
            "journal was recorded over a different target set ({} vs {expected})",
            fields[4]
        )));
    }
    Ok(variants)
}

/// A sharded EMI campaign's outcome: the partial result over this shard's
/// base slice, the mergeable tally behind it, and resume/journal metrics.
#[derive(Debug)]
pub struct ShardedEmiCampaign {
    /// Partial [`EmiCampaignResult`] (its `bases` counts only this shard's
    /// slice; `variants_per_base` and labels are campaign-global).
    pub result: EmiCampaignResult,
    /// The underlying aggregation state.
    pub tally: EmiTally,
    /// Shard/resume metrics.
    pub metrics: ShardMetrics,
    /// Stage timing/hand-off metrics of the judging run.
    pub pipeline: PipelineMetrics,
    /// Live bases found across the whole campaign (the global job space).
    pub total_bases: usize,
}

/// Runs one shard of the EMI campaign with an optional resumable journal.
///
/// Every shard regenerates the full live-base list (generation is a small
/// fraction of judging cost, and acceptance scans candidates in index
/// order, so all shards agree on the list bit for bit), then judges only
/// the bases in its slice; the job space is the base index space.
pub fn run_emi_campaign_sharded(
    scheduler: &Scheduler,
    configs: &[Configuration],
    options: &EmiCampaignOptions,
    select: ShardSelect,
    journal: Option<&JournalOptions>,
) -> Result<ShardedEmiCampaign, JournalError> {
    let bases = Arc::new(generate_live_bases_with(scheduler, options));
    let grid = Arc::new(pruning_grid(options.variants_per_base));
    let shared_configs = Arc::new(configs.to_vec());
    let labels = emi_labels(configs);
    let campaign_seed = options.campaign.seed_offset;
    let descriptor = emi_campaign_descriptor(options, configs);
    let spec = ShardSpec::select(campaign_seed, bases.len() as u64, select);
    let run = run_sharded::<EmiBaseJob, _>(scheduler, &spec, &descriptor, journal, |g| {
        let base_index = g as usize;
        (
            job_seed(campaign_seed, g),
            EmiBaseJob {
                base: bases[base_index].clone(),
                base_index,
                campaign_seed,
                grid: Arc::clone(&grid),
                configs: Arc::clone(&shared_configs),
                exec: options.campaign.exec.clone(),
            },
        )
    })?;
    let mut tally = EmiTally::new(labels.len());
    let judged = run.outputs.len();
    for (_, judgements) in &run.outputs {
        tally.record(judgements);
    }
    Ok(ShardedEmiCampaign {
        result: EmiCampaignResult {
            bases: judged,
            variants_per_base: grid.len(),
            labels,
            stats: tally.per_target.clone(),
        },
        tally,
        metrics: run.metrics,
        pipeline: run.pipeline,
        total_bases: bases.len(),
    })
}

/// Merges any subset of an EMI campaign's shard journals back into an
/// [`EmiCampaignResult`] — the full Table 5 when the journals cover every
/// base, a partial one otherwise.
pub fn merge_emi_campaign_journals(
    paths: &[PathBuf],
    configs: &[Configuration],
) -> Result<(EmiCampaignResult, RefoldSummary), JournalError> {
    let labels = emi_labels(configs);
    let first = paths.first().ok_or_else(|| {
        JournalError::Mismatch("no journals to merge (expected at least one path)".into())
    })?;
    let header = crate::journal::load_journal(first)?.header;
    let variants_per_base = parse_emi_descriptor(&header.campaign, configs)?;
    let (tally, summary) = refold_journals::<Vec<BaseJudgement>, EmiTally>(
        paths,
        |campaign| campaign == header.campaign,
        |_| Ok(EmiTally::new(labels.len())),
        |tally, _, judgements| tally.record(&judgements),
    )?;
    let result = EmiCampaignResult {
        bases: summary.jobs_folded as usize,
        variants_per_base,
        labels,
        stats: tally.per_target.clone(),
    };
    Ok((result, summary))
}

/// What a single base program induced on a single target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaseJudgement {
    /// No variant terminated with a value.
    pub bad_base: bool,
    /// Two terminating variants disagreed.
    pub wrong: bool,
    /// Some variant failed to build.
    pub build_failure: bool,
    /// Some variant crashed.
    pub crash: bool,
    /// Some variant timed out.
    pub timeout: bool,
    /// All variants terminated with a single uniform value.
    pub stable: bool,
}

/// Runs all variants of one base on one target and classifies the base
/// according to §7.4.
///
/// One-shot form of [`judge_base_sessions`]: each variant gets a private
/// session, so nothing is shared across the variant set.  The campaign
/// driver uses the session form to share one memo over the whole judging
/// grid.
pub fn judge_base(
    variants: &[clc::Program],
    config: &Configuration,
    opt: OptLevel,
    exec: &ExecOptions,
) -> BaseJudgement {
    let sessions: Vec<Session<'_>> = variants.iter().map(Session::new).collect();
    judge_base_sessions(&sessions, config, opt, exec)
}

/// [`judge_base`] over pre-built variant [`Session`]s (typically sharing an
/// [`ExecMemo`]).
pub fn judge_base_sessions(
    variants: &[Session<'_>],
    config: &Configuration,
    opt: OptLevel,
    exec: &ExecOptions,
) -> BaseJudgement {
    let outcomes: Vec<TestOutcome> = variants
        .iter()
        .map(|variant| variant.execute(config, opt, exec))
        .collect();
    judge_outcomes(&outcomes)
}

/// Classifies one outcome row — every variant of a base on one target —
/// according to §7.4.  This is the judge stage of [`EmiBaseJob`], factored
/// out so the one-shot helpers above apply the identical rule.
pub fn judge_outcomes(outcomes: &[TestOutcome]) -> BaseJudgement {
    // A BTreeMap keeps the tally independent of hash iteration order (the
    // verdict only reads set size and totals today, but stable ordering is
    // the crate-wide rule after the `classify` tie-break fix).
    let mut hashes: BTreeMap<u64, usize> = BTreeMap::new();
    let mut build_failure = false;
    let mut crash = false;
    let mut timeout = false;
    for outcome in outcomes {
        match outcome {
            TestOutcome::Result { hash, .. } => {
                *hashes.entry(*hash).or_insert(0) += 1;
            }
            TestOutcome::BuildFailure(_) => build_failure = true,
            TestOutcome::Crash(_) => crash = true,
            TestOutcome::Timeout => timeout = true,
        }
    }
    let terminated = hashes.values().sum::<usize>();
    let bad_base = terminated == 0;
    let wrong = hashes.len() > 1;
    let stable = !bad_base && !wrong && terminated == outcomes.len();
    BaseJudgement {
        bad_base,
        wrong,
        build_failure,
        crash,
        timeout,
        stable,
    }
}

fn record_base(stats: &mut EmiStats, j: BaseJudgement) {
    if j.bad_base {
        stats.base_fails += 1;
        return;
    }
    if j.wrong {
        stats.wrong += 1;
    }
    if j.build_failure {
        stats.build_failures += 1;
    }
    if j.crash {
        stats.crashes += 1;
    }
    if j.timeout {
        stats.timeouts += 1;
    }
    if j.stable {
        stats.stable += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clsmith::GeneratorOptions;

    fn small_options(bases: usize) -> EmiCampaignOptions {
        EmiCampaignOptions {
            bases,
            variants_per_base: 6,
            campaign: CampaignOptions {
                generator: GeneratorOptions {
                    min_threads: 16,
                    max_threads: 48,
                    ..GeneratorOptions::default()
                },
                ..CampaignOptions::default()
            },
        }
    }

    #[test]
    fn pruning_grid_subsamples_evenly() {
        assert_eq!(pruning_grid(40).len(), 40);
        assert_eq!(pruning_grid(100).len(), 40);
        let five = pruning_grid(5);
        assert_eq!(five.len(), 5);
    }

    #[test]
    fn judgement_rows_and_emi_tallies_round_trip_through_the_journal_forms() {
        let row = vec![
            BaseJudgement {
                bad_base: false,
                wrong: true,
                build_failure: false,
                crash: true,
                timeout: false,
                stable: false,
            },
            BaseJudgement {
                bad_base: false,
                wrong: false,
                build_failure: false,
                crash: false,
                timeout: false,
                stable: true,
            },
        ];
        let encoded = row.encode();
        assert_eq!(encoded, "0a20");
        assert_eq!(Vec::<BaseJudgement>::decode(&encoded).unwrap(), row);
        assert_eq!(Vec::<BaseJudgement>::decode("-").unwrap(), Vec::new());
        assert!(Vec::<BaseJudgement>::decode("0a2").is_err());
        assert!(Vec::<BaseJudgement>::decode("ff").is_err());
        // Multi-byte characters in a corrupted/foreign journal must surface
        // as a format error, not a char-boundary panic.
        assert!(Vec::<BaseJudgement>::decode("\u{1D11E}").is_err());

        let mut tally = EmiTally::new(2);
        tally.record(&row);
        let round = EmiTally::deserialize(&tally.serialize()).unwrap();
        assert_eq!(round, tally);
        let mut doubled = tally.clone();
        doubled.merge(tally.clone());
        assert_eq!(doubled.per_target[0].wrong, 2 * tally.per_target[0].wrong);
    }

    #[test]
    fn sharded_emi_campaign_merges_to_the_single_run() {
        let configs = vec![opencl_sim::configuration(1), opencl_sim::configuration(19)];
        let options = small_options(3);
        let scheduler = Scheduler::new(2);
        let single = run_emi_campaign_with(&scheduler, &configs, &options);
        let mut merged: Option<EmiTally> = None;
        let mut judged = 0usize;
        for index in 0..2u32 {
            let shard = run_emi_campaign_sharded(
                &scheduler,
                &configs,
                &options,
                crate::shard::ShardSelect { index, count: 2 },
                None,
            )
            .unwrap();
            judged += shard.result.bases;
            assert_eq!(shard.total_bases, single.bases);
            match &mut merged {
                None => merged = Some(shard.tally),
                Some(t) => t.merge(shard.tally),
            }
        }
        assert_eq!(judged, single.bases);
        assert_eq!(merged.unwrap().per_target, single.stats);
    }

    #[test]
    fn live_base_generation_filters_dead_placements() {
        let bases = generate_live_bases(&small_options(2));
        assert!(!bases.is_empty());
        for base in &bases {
            assert!(base.has_dead_array());
            assert!(!base.emi_blocks().is_empty());
        }
    }

    #[test]
    fn judging_a_base_on_a_healthy_config_is_stable() {
        let options = small_options(1);
        let bases = generate_live_bases(&options);
        let grid = pruning_grid(4);
        let variants: Vec<clc::Program> = grid
            .iter()
            .enumerate()
            .map(|(i, p)| prune_variant(&bases[0], p, i as u64))
            .collect();
        // The reference emulator (no injected bugs) must find every base
        // stable: all variants agree.
        let mut hashes = std::collections::HashSet::new();
        for v in &variants {
            match opencl_sim::reference_execute(v, &options.campaign.exec) {
                TestOutcome::Result { hash, .. } => {
                    hashes.insert(hash);
                }
                other => panic!("variant failed on the reference emulator: {other:?}"),
            }
        }
        assert_eq!(hashes.len(), 1);
    }

    #[test]
    fn small_emi_campaign_produces_consistent_counts() {
        let configs = vec![opencl_sim::configuration(1), opencl_sim::configuration(19)];
        let options = small_options(2);
        let result = run_emi_campaign(&configs, &options);
        assert_eq!(result.labels.len(), 4);
        for stats in &result.stats {
            // Every base is accounted for: either a bad base or judged.
            assert!(
                stats.base_fails + stats.stable + stats.wrong <= result.bases + stats.base_fails
            );
        }
    }
}
