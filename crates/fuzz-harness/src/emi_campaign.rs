//! CLsmith+EMI testing campaigns (Table 5, §7.4).
//!
//! A *base* program is an ALL-mode CLsmith kernel containing 1–5 EMI blocks
//! that survives the liveness check (inverting the `dead` array changes its
//! result, §7.4).  From each base a set of variants is derived with the
//! leaf/compound/lift pruning grid, and every variant is run on a single
//! (configuration, optimisation level) target: because all variants are
//! equivalent modulo the standard `dead` input, any disagreement between two
//! terminating variants indicates a miscompilation — no cross-configuration
//! comparison is needed, which is the selling point of EMI testing (§3.2).

use crate::campaign::CampaignOptions;
use crate::exec::{job_seed, Job, Scheduler};
use clsmith::{generate, prune_variant, GenMode, GeneratorOptions, PruneProbabilities};
use opencl_sim::{Configuration, ExecMemo, ExecOptions, OptLevel, Session, TestOutcome};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

/// Per-target tallies over base programs (the rows of Table 5).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EmiStats {
    /// Bases for which no variant terminated with a value ("base fails").
    pub base_fails: usize,
    /// Bases with two terminating variants that disagree (`w`).
    pub wrong: usize,
    /// Bases with at least one variant that failed to build (`bf`).
    pub build_failures: usize,
    /// Bases with at least one variant that crashed (`c`).
    pub crashes: usize,
    /// Bases with at least one variant that timed out (`to`).
    pub timeouts: usize,
    /// Bases whose variants all terminated with one uniform value ("stable").
    pub stable: usize,
}

/// Result of an EMI campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmiCampaignResult {
    /// Number of base programs that passed the liveness check.
    pub bases: usize,
    /// Number of variants per base.
    pub variants_per_base: usize,
    /// Target labels in column order (e.g. `"1-"`, `"1+"`, ...).
    pub labels: Vec<String>,
    /// Tallies per target.
    pub stats: Vec<EmiStats>,
}

impl EmiCampaignResult {
    /// Stats for a target label.
    pub fn stats_for(&self, label: &str) -> Option<&EmiStats> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| &self.stats[i])
    }
}

/// Options for the EMI campaign.
#[derive(Debug, Clone)]
pub struct EmiCampaignOptions {
    /// Number of base programs to accept (the paper uses 180 after
    /// discarding).
    pub bases: usize,
    /// How many pruning-probability combinations to use per base (the paper
    /// uses all 40; smaller values subsample the grid evenly).
    pub variants_per_base: usize,
    /// Campaign scale options (generator sizes, execution options).
    pub campaign: CampaignOptions,
}

impl Default for EmiCampaignOptions {
    fn default() -> Self {
        EmiCampaignOptions {
            bases: 6,
            variants_per_base: 10,
            campaign: CampaignOptions::default(),
        }
    }
}

/// One candidate-base probe: generate an ALL-mode EMI kernel from the
/// job-derived seed and apply the §7.4 liveness check (inverting the `dead`
/// array must change the result).
#[derive(Debug, Clone)]
pub struct LivenessProbeJob {
    /// The candidate's generator seed.
    pub seed: u64,
    /// Base generator options (mode/seed/EMI overridden).
    pub generator: GeneratorOptions,
    /// Execution options for the two reference runs.
    pub exec: ExecOptions,
}

impl Job for LivenessProbeJob {
    type Output = Option<clc::Program>;

    fn run(self) -> Option<clc::Program> {
        let gen_opts = GeneratorOptions {
            mode: GenMode::All,
            seed: self.seed,
            ..self.generator
        }
        .with_emi();
        let program = generate(&gen_opts);
        // One session for both reference runs: the normal and inverted
        // executions differ only in buffer overrides, so they share a
        // single lowered kernel (distinct outcome-cache lines).
        let session = Session::new(&program);
        let normal = session.reference_execute(&self.exec);
        let mut inverted_exec = self.exec.clone();
        Arc::make_mut(&mut inverted_exec.buffer_overrides).insert(
            "dead".into(),
            clc::BufferInit::ReverseIota.materialize(program.dead_len),
        );
        let inverted = session.reference_execute(&inverted_exec);
        let live = match (&normal, &inverted) {
            (TestOutcome::Result { hash: a, .. }, TestOutcome::Result { hash: b, .. }) => a != b,
            // An inverted run that fails outright also proves the blocks are
            // reachable under the inverted input.
            (TestOutcome::Result { .. }, _) => true,
            _ => false,
        };
        live.then_some(program)
    }
}

/// Generates base programs that pass the §7.4 liveness check: the EMI blocks
/// must not all sit in already-dead code, which is checked by comparing the
/// reference result with the `dead` array inverted.
///
/// Parallelised over the default scheduler; see [`generate_live_bases_with`].
pub fn generate_live_bases(options: &EmiCampaignOptions) -> Vec<clc::Program> {
    generate_live_bases_with(&Scheduler::from_env(), options)
}

/// [`generate_live_bases`] on an explicit scheduler.
///
/// Probes are evaluated in chunks of candidate seeds, but acceptance scans
/// candidates strictly in index order and keeps the first `options.bases`
/// live ones — exactly the set the sequential loop accepts — so the base
/// list is independent of both the worker count and the chunk size.
pub fn generate_live_bases_with(
    scheduler: &Scheduler,
    options: &EmiCampaignOptions,
) -> Vec<clc::Program> {
    let max_attempts = options.bases * 20 + 50;
    let mut bases = Vec::new();
    let mut attempt = 0usize;
    while bases.len() < options.bases && attempt < max_attempts {
        // Probe only about as many candidates as are still missing (with a
        // floor that keeps every worker busy), so a nearly-complete campaign
        // does not burn a full-sized chunk for its last base.
        let missing = options.bases - bases.len();
        let chunk = missing.max(scheduler.threads() * 4);
        let upper = (attempt + chunk).min(max_attempts);
        let jobs: Vec<LivenessProbeJob> = (attempt..upper)
            .map(|candidate| LivenessProbeJob {
                seed: job_seed(options.campaign.seed_offset, candidate as u64),
                generator: options.campaign.generator.clone(),
                exec: options.campaign.exec.clone(),
            })
            .collect();
        for program in scheduler.run_all(jobs).into_iter().flatten() {
            if bases.len() < options.bases {
                bases.push(program);
            }
        }
        attempt = upper;
    }
    bases
}

/// The evenly subsampled pruning grid of the requested size.
pub fn pruning_grid(variants: usize) -> Vec<PruneProbabilities> {
    let all = PruneProbabilities::table5_combinations();
    if variants >= all.len() {
        return all;
    }
    let step = (all.len() as f64 / variants as f64).max(1.0);
    (0..variants)
        .map(|i| all[((i as f64 * step) as usize).min(all.len() - 1)])
        .collect()
}

/// One base program's worth of EMI campaign work: derive every pruning
/// variant (seeded from the base index, not the worker), judge the base on
/// every (configuration, optimisation level) column.  The pruning grid and
/// configuration list are shared read-only state behind [`Arc`]s.
#[derive(Debug, Clone)]
pub struct EmiBaseJob {
    /// The live base program.
    pub base: clc::Program,
    /// Index of the base in the campaign (drives variant seeding).
    pub base_index: usize,
    /// The campaign seed (`options.campaign.seed_offset`).
    pub campaign_seed: u64,
    /// The pruning-probability grid, shared across the batch.
    pub grid: Arc<Vec<PruneProbabilities>>,
    /// The configurations, shared across the batch.
    pub configs: Arc<Vec<Configuration>>,
    /// Execution options.
    pub exec: ExecOptions,
}

impl Job for EmiBaseJob {
    type Output = Vec<BaseJudgement>;

    fn run(self) -> Vec<BaseJudgement> {
        let base_seed = job_seed(self.campaign_seed, self.base_index as u64);
        let variants: Vec<clc::Program> = self
            .grid
            .iter()
            .enumerate()
            .map(|(i, probs)| prune_variant(&self.base, probs, job_seed(base_seed, i as u64)))
            .collect();
        // One session per variant, all behind one memo spanning the whole
        // (config × opt) judging grid: gently pruned variants are often
        // bit-identical to each other (or compile identically on
        // non-optimising targets across both opt levels), so the unpruned
        // AST is no longer re-executed per target — the Table 5
        // deduplication the ROADMAP called for.
        let memo = Rc::new(ExecMemo::new());
        let sessions: Vec<Session<'_>> = variants
            .iter()
            .map(|v| Session::with_memo(v, Rc::clone(&memo)))
            .collect();
        let mut judgements = Vec::with_capacity(self.configs.len() * OptLevel::BOTH.len());
        for config in self.configs.iter() {
            for opt in OptLevel::BOTH {
                judgements.push(judge_base_sessions(&sessions, config, opt, &self.exec));
            }
        }
        judgements
    }
}

/// Runs the EMI campaign against each configuration at both optimisation
/// levels.
///
/// Parallelised over the default scheduler; see [`run_emi_campaign_with`].
pub fn run_emi_campaign(
    configs: &[Configuration],
    options: &EmiCampaignOptions,
) -> EmiCampaignResult {
    run_emi_campaign_with(&Scheduler::from_env(), configs, options)
}

/// [`run_emi_campaign`] on an explicit scheduler: one [`EmiBaseJob`] per
/// live base, judgement shards folded into the per-target [`EmiStats`] in
/// base-index order.
pub fn run_emi_campaign_with(
    scheduler: &Scheduler,
    configs: &[Configuration],
    options: &EmiCampaignOptions,
) -> EmiCampaignResult {
    let bases = generate_live_bases_with(scheduler, options);
    let grid = Arc::new(pruning_grid(options.variants_per_base));
    let shared_configs = Arc::new(configs.to_vec());
    let mut labels = Vec::new();
    for config in configs {
        for opt in OptLevel::BOTH {
            labels.push(config.label(opt));
        }
    }
    let base_count = bases.len();
    let jobs: Vec<EmiBaseJob> = bases
        .into_iter()
        .enumerate()
        .map(|(base_index, base)| EmiBaseJob {
            base,
            base_index,
            campaign_seed: options.campaign.seed_offset,
            grid: Arc::clone(&grid),
            configs: Arc::clone(&shared_configs),
            exec: options.campaign.exec.clone(),
        })
        .collect();
    let mut stats = vec![EmiStats::default(); labels.len()];
    for judgements in scheduler.run_all(jobs) {
        for (column, judgement) in judgements.into_iter().enumerate() {
            record_base(&mut stats[column], judgement);
        }
    }
    EmiCampaignResult {
        bases: base_count,
        variants_per_base: grid.len(),
        labels,
        stats,
    }
}

/// What a single base program induced on a single target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaseJudgement {
    /// No variant terminated with a value.
    pub bad_base: bool,
    /// Two terminating variants disagreed.
    pub wrong: bool,
    /// Some variant failed to build.
    pub build_failure: bool,
    /// Some variant crashed.
    pub crash: bool,
    /// Some variant timed out.
    pub timeout: bool,
    /// All variants terminated with a single uniform value.
    pub stable: bool,
}

/// Runs all variants of one base on one target and classifies the base
/// according to §7.4.
///
/// One-shot form of [`judge_base_sessions`]: each variant gets a private
/// session, so nothing is shared across the variant set.  The campaign
/// driver uses the session form to share one memo over the whole judging
/// grid.
pub fn judge_base(
    variants: &[clc::Program],
    config: &Configuration,
    opt: OptLevel,
    exec: &ExecOptions,
) -> BaseJudgement {
    let sessions: Vec<Session<'_>> = variants.iter().map(Session::new).collect();
    judge_base_sessions(&sessions, config, opt, exec)
}

/// [`judge_base`] over pre-built variant [`Session`]s (typically sharing an
/// [`ExecMemo`]).
pub fn judge_base_sessions(
    variants: &[Session<'_>],
    config: &Configuration,
    opt: OptLevel,
    exec: &ExecOptions,
) -> BaseJudgement {
    // A BTreeMap keeps the tally independent of hash iteration order (the
    // verdict only reads set size and totals today, but stable ordering is
    // the crate-wide rule after the `classify` tie-break fix).
    let mut hashes: BTreeMap<u64, usize> = BTreeMap::new();
    let mut build_failure = false;
    let mut crash = false;
    let mut timeout = false;
    for variant in variants {
        match variant.execute(config, opt, exec) {
            TestOutcome::Result { hash, .. } => {
                *hashes.entry(hash).or_insert(0) += 1;
            }
            TestOutcome::BuildFailure(_) => build_failure = true,
            TestOutcome::Crash(_) => crash = true,
            TestOutcome::Timeout => timeout = true,
        }
    }
    let terminated = hashes.values().sum::<usize>();
    let bad_base = terminated == 0;
    let wrong = hashes.len() > 1;
    let stable = !bad_base && !wrong && terminated == variants.len();
    BaseJudgement {
        bad_base,
        wrong,
        build_failure,
        crash,
        timeout,
        stable,
    }
}

fn record_base(stats: &mut EmiStats, j: BaseJudgement) {
    if j.bad_base {
        stats.base_fails += 1;
        return;
    }
    if j.wrong {
        stats.wrong += 1;
    }
    if j.build_failure {
        stats.build_failures += 1;
    }
    if j.crash {
        stats.crashes += 1;
    }
    if j.timeout {
        stats.timeouts += 1;
    }
    if j.stable {
        stats.stable += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clsmith::GeneratorOptions;

    fn small_options(bases: usize) -> EmiCampaignOptions {
        EmiCampaignOptions {
            bases,
            variants_per_base: 6,
            campaign: CampaignOptions {
                generator: GeneratorOptions {
                    min_threads: 16,
                    max_threads: 48,
                    ..GeneratorOptions::default()
                },
                ..CampaignOptions::default()
            },
        }
    }

    #[test]
    fn pruning_grid_subsamples_evenly() {
        assert_eq!(pruning_grid(40).len(), 40);
        assert_eq!(pruning_grid(100).len(), 40);
        let five = pruning_grid(5);
        assert_eq!(five.len(), 5);
    }

    #[test]
    fn live_base_generation_filters_dead_placements() {
        let bases = generate_live_bases(&small_options(2));
        assert!(!bases.is_empty());
        for base in &bases {
            assert!(base.has_dead_array());
            assert!(!base.emi_blocks().is_empty());
        }
    }

    #[test]
    fn judging_a_base_on_a_healthy_config_is_stable() {
        let options = small_options(1);
        let bases = generate_live_bases(&options);
        let grid = pruning_grid(4);
        let variants: Vec<clc::Program> = grid
            .iter()
            .enumerate()
            .map(|(i, p)| prune_variant(&bases[0], p, i as u64))
            .collect();
        // The reference emulator (no injected bugs) must find every base
        // stable: all variants agree.
        let mut hashes = std::collections::HashSet::new();
        for v in &variants {
            match opencl_sim::reference_execute(v, &options.campaign.exec) {
                TestOutcome::Result { hash, .. } => {
                    hashes.insert(hash);
                }
                other => panic!("variant failed on the reference emulator: {other:?}"),
            }
        }
        assert_eq!(hashes.len(), 1);
    }

    #[test]
    fn small_emi_campaign_produces_consistent_counts() {
        let configs = vec![opencl_sim::configuration(1), opencl_sim::configuration(19)];
        let options = small_options(2);
        let result = run_emi_campaign(&configs, &options);
        assert_eq!(result.labels.len(), 4);
        for stats in &result.stats {
            // Every base is accounted for: either a bad base or judged.
            assert!(
                stats.base_fails + stats.stable + stats.wrong <= result.bases + stats.base_fails
            );
        }
    }
}
