//! Plain-text table rendering for the reproduction binaries.
//!
//! The campaign-specific renderers ([`render_campaign_table`],
//! [`render_emi_table`]) are the *single* source of the Table 4 / Table 5
//! artefacts: the `table4`/`table5` binaries print them, and the scheduler
//! determinism tests and throughput benchmark compare them byte for byte
//! across worker counts — so any rendering change stays under the
//! bit-identical-at-any-thread-count guarantee automatically.

use crate::campaign::CampaignResult;
use crate::emi_campaign::EmiCampaignResult;

/// Renders an ASCII table with a header row.
pub fn render_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let columns = headers
        .len()
        .max(rows.iter().map(Vec::len).max().unwrap_or(0));
    let mut widths = vec![0usize; columns];
    for (i, h) in headers.iter().enumerate() {
        widths[i] = widths[i].max(h.len());
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, width) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            line.push_str(&format!(" {cell:width$} |"));
        }
        line
    };
    let separator = {
        let mut line = String::from("+");
        for w in &widths {
            line.push_str(&"-".repeat(w + 2));
            line.push('+');
        }
        line
    };
    out.push_str(&separator);
    out.push('\n');
    out.push_str(&render_row(headers, &widths));
    out.push('\n');
    out.push_str(&separator);
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out.push_str(&separator);
    out.push('\n');
    out
}

/// Formats a percentage with one decimal, as the paper's `w%` rows do.
pub fn percent(value: f64) -> String {
    format!("{value:.1}")
}

/// Renders one mode block of Table 4 from a [`CampaignResult`]: per-target
/// `w`/`bf`/`c`/`to`/`ok` counts, a `Total` column, and the `w%` row.
pub fn render_campaign_table(result: &CampaignResult) -> String {
    let headers: Vec<String> = std::iter::once(String::new())
        .chain(result.targets.iter().map(|t| t.label()))
        .chain(std::iter::once("Total".to_string()))
        .collect();
    let mut rows = Vec::new();
    for (key, pick) in [("w", 0usize), ("bf", 1), ("c", 2), ("to", 3), ("ok", 4)] {
        let mut row = vec![key.to_string()];
        let mut total = 0usize;
        for stat in &result.stats {
            let value = match pick {
                0 => stat.wrong,
                1 => stat.build_failures,
                2 => stat.crashes,
                3 => stat.timeouts,
                _ => stat.ok,
            };
            total += value;
            row.push(value.to_string());
        }
        row.push(total.to_string());
        rows.push(row);
    }
    let mut wpct = vec!["w%".to_string()];
    for stat in &result.stats {
        wpct.push(percent(stat.wrong_code_percentage()));
    }
    wpct.push(percent(result.total_wrong_code_percentage()));
    rows.push(wpct);
    render_table(&headers, &rows)
}

/// Renders Table 5 from an [`EmiCampaignResult`]: per-target base-level
/// outcome counts.
pub fn render_emi_table(result: &EmiCampaignResult) -> String {
    let headers: Vec<String> = std::iter::once(String::new())
        .chain(result.labels.iter().cloned())
        .collect();
    let mut rows = Vec::new();
    for (name, pick) in [
        ("base fails", 0usize),
        ("w", 1),
        ("bf", 2),
        ("c", 3),
        ("to", 4),
        ("stable", 5),
    ] {
        let mut row = vec![name.to_string()];
        for stat in &result.stats {
            let value = match pick {
                0 => stat.base_fails,
                1 => stat.wrong,
                2 => stat.build_failures,
                3 => stat.crashes,
                4 => stat.timeouts,
                _ => stat.stable,
            };
            row.push(value.to_string());
        }
        rows.push(row);
    }
    render_table(&headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_tables() {
        let headers = vec!["mode".to_string(), "w".to_string(), "w%".to_string()];
        let rows = vec![
            vec!["BASIC".to_string(), "12".to_string(), percent(0.123)],
            vec!["ALL".to_string(), "3".to_string(), percent(12.0)],
        ];
        let table = render_table(&headers, &rows);
        assert!(table.contains("| BASIC | 12 | 0.1"), "{table}");
        assert!(table.contains("| ALL   | 3  | 12.0"), "{table}");
        assert!(table
            .lines()
            .all(|l| l.starts_with('+') || l.starts_with('|')));
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(7.65), "7.7");
        assert_eq!(percent(0.0), "0.0");
    }
}
