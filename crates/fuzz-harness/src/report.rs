//! Plain-text table rendering for the reproduction binaries.
//!
//! The campaign-specific renderers ([`render_campaign_table`],
//! [`render_emi_table`], [`render_reliability_table`]) are the *single*
//! source of the Table 1 / Table 4 / Table 5 artefacts: the table binaries
//! print them, and the scheduler determinism, cache equivalence and shard
//! equivalence tests (plus the throughput benchmark) compare them byte for
//! byte — so any rendering change stays under the bit-identical guarantees
//! automatically.
//!
//! All three renderers accept **partial** tallies — the streaming tables a
//! shard, a journal prefix, or a subset of shard journals produces.  A
//! target column (or Table 1 row) that no job has reached yet renders as
//! [`EMPTY_CELL`] (`–`) instead of a misleading row of zeros, so a partial
//! table is readable at a glance.

use crate::campaign::{CampaignResult, ReliabilityRow};
use crate::corpus::{CorpusCampaignResult, CorpusStrategy};
use crate::emi_campaign::EmiCampaignResult;

/// What a cell with no tallied data renders as in partial tables.
pub const EMPTY_CELL: &str = "–";

/// Renders an ASCII table with a header row.
pub fn render_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let columns = headers
        .len()
        .max(rows.iter().map(Vec::len).max().unwrap_or(0));
    // Widths count chars, not bytes: `format!`'s padding is char-based, and
    // the EMPTY_CELL dash is multi-byte.
    let mut widths = vec![0usize; columns];
    for (i, h) in headers.iter().enumerate() {
        widths[i] = widths[i].max(h.chars().count());
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, width) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            line.push_str(&format!(" {cell:width$} |"));
        }
        line
    };
    let separator = {
        let mut line = String::from("+");
        for w in &widths {
            line.push_str(&"-".repeat(w + 2));
            line.push('+');
        }
        line
    };
    out.push_str(&separator);
    out.push('\n');
    out.push_str(&render_row(headers, &widths));
    out.push('\n');
    out.push_str(&separator);
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out.push_str(&separator);
    out.push('\n');
    out
}

/// Formats a percentage with one decimal, as the paper's `w%` rows do.
pub fn percent(value: f64) -> String {
    format!("{value:.1}")
}

/// Renders one mode block of Table 4 from a [`CampaignResult`]: per-target
/// `w`/`bf`/`c`/`to`/`ok` counts, a `Total` column, and the `w%` row.
///
/// Streaming-aware: a target that no tallied kernel has reached (its stats
/// total 0 — e.g. in a table refolded from an empty journal prefix)
/// renders as [`EMPTY_CELL`] down its whole column.
pub fn render_campaign_table(result: &CampaignResult) -> String {
    let headers: Vec<String> = std::iter::once(String::new())
        .chain(result.targets.iter().map(|t| t.label()))
        .chain(std::iter::once("Total".to_string()))
        .collect();
    let any_data = result.stats.iter().any(|s| s.total() > 0);
    // The `sk` row only appears when the static pre-filter skipped at least
    // one kernel, so tables from prefilter-off runs render unchanged.
    let any_skipped = result.stats.iter().any(|s| s.skipped > 0);
    let mut rows = Vec::new();
    let mut keys = vec![("w", 0usize), ("bf", 1), ("c", 2), ("to", 3), ("ok", 4)];
    if any_skipped {
        keys.push(("sk", 5));
    }
    for (key, pick) in keys {
        let mut row = vec![key.to_string()];
        let mut total = 0usize;
        for stat in &result.stats {
            let value = match pick {
                0 => stat.wrong,
                1 => stat.build_failures,
                2 => stat.crashes,
                3 => stat.timeouts,
                4 => stat.ok,
                _ => stat.skipped,
            };
            total += value;
            if stat.total() == 0 {
                row.push(EMPTY_CELL.to_string());
            } else {
                row.push(value.to_string());
            }
        }
        row.push(if any_data {
            total.to_string()
        } else {
            EMPTY_CELL.to_string()
        });
        rows.push(row);
    }
    let mut wpct = vec!["w%".to_string()];
    for stat in &result.stats {
        if stat.total() == 0 {
            wpct.push(EMPTY_CELL.to_string());
        } else {
            wpct.push(percent(stat.wrong_code_percentage()));
        }
    }
    wpct.push(if any_data {
        percent(result.total_wrong_code_percentage())
    } else {
        EMPTY_CELL.to_string()
    });
    rows.push(wpct);
    render_table(&headers, &rows)
}

/// Renders Table 5 from an [`EmiCampaignResult`]: per-target base-level
/// outcome counts.
///
/// Streaming-aware: a target with no judged base yet renders as
/// [`EMPTY_CELL`] down its whole column.
pub fn render_emi_table(result: &EmiCampaignResult) -> String {
    let headers: Vec<String> = std::iter::once(String::new())
        .chain(result.labels.iter().cloned())
        .collect();
    let mut rows = Vec::new();
    for (name, pick) in [
        ("base fails", 0usize),
        ("w", 1),
        ("bf", 2),
        ("c", 3),
        ("to", 4),
        ("stable", 5),
    ] {
        let mut row = vec![name.to_string()];
        for stat in &result.stats {
            if stat.is_empty() {
                row.push(EMPTY_CELL.to_string());
                continue;
            }
            let value = match pick {
                0 => stat.base_fails,
                1 => stat.wrong,
                2 => stat.build_failures,
                3 => stat.crashes,
                4 => stat.timeouts,
                _ => stat.stable,
            };
            row.push(value.to_string());
        }
        rows.push(row);
    }
    render_table(&headers, &rows)
}

/// Renders the guided-vs-blind comparison of a corpus campaign: kernel
/// budget, bug yield, coverage saturation and mutation acceptance, one
/// column per [`CorpusStrategy`].
///
/// Streaming-aware: a strategy that no tallied lineage has reached yet
/// (kernels 0 — e.g. a table refolded from a journal prefix covering only
/// one strategy's job slice) renders as [`EMPTY_CELL`] down its column.
pub fn render_corpus_table(result: &CorpusCampaignResult) -> String {
    let headers: Vec<String> = std::iter::once(String::new())
        .chain(CorpusStrategy::ALL.iter().map(|s| s.name().to_string()))
        .collect();
    let mut rows: Vec<Vec<String>> = vec![
        vec!["lineages".to_string()],
        vec!["kernels".to_string()],
        vec!["bugs".to_string()],
        vec!["bugs/kernel".to_string()],
        vec!["coverage bits".to_string()],
        vec!["saturation %".to_string()],
        vec!["accepted".to_string()],
        vec!["rejected".to_string()],
        vec!["acceptance %".to_string()],
    ];
    for strategy in CorpusStrategy::ALL {
        let tally = result.tally.strategy(strategy);
        if tally.kernels() == 0 {
            for row in &mut rows {
                row.push(EMPTY_CELL.to_string());
            }
            continue;
        }
        rows[0].push(tally.lineages.to_string());
        rows[1].push(tally.kernels().to_string());
        rows[2].push(tally.bugs().to_string());
        rows[3].push(format!("{:.3}", tally.bugs_per_kernel()));
        rows[4].push(tally.coverage.count().to_string());
        rows[5].push(percent(tally.saturation() * 100.0));
        rows[6].push(tally.accepted.to_string());
        rows[7].push(tally.rejected.to_string());
        rows[8].push(percent(tally.acceptance_rate() * 100.0));
    }
    render_table(&headers, &rows)
}

/// Renders Table 1 from §7.1 reliability rows: configuration metadata, the
/// measured failure percentage, the threshold judgement, and the paper's
/// own judgement for comparison.
///
/// Streaming-aware: a configuration with no tallied kernels yet renders
/// [`EMPTY_CELL`] in its data columns.
pub fn render_reliability_table(rows: &[ReliabilityRow]) -> String {
    let headers: Vec<String> = [
        "Conf.",
        "SDK",
        "Device",
        "Driver/compiler",
        "OpenCL",
        "Device type",
        "Failure %",
        "Above threshold?",
        "Paper",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut table = Vec::new();
    for row in rows {
        let (failure, above) = if row.kernels == 0 {
            (EMPTY_CELL.to_string(), EMPTY_CELL.to_string())
        } else {
            (
                format!("{:.1}", row.failure_fraction * 100.0),
                if row.above_threshold { "yes" } else { "no" }.to_string(),
            )
        };
        table.push(vec![
            row.config.id.to_string(),
            row.config.sdk.to_string(),
            row.config.device.to_string(),
            row.config.driver.to_string(),
            row.config.opencl.to_string(),
            row.config.device_type.name().to_string(),
            failure,
            above,
            if row.config.expected_above_threshold {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    render_table(&headers, &table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_tables() {
        let headers = vec!["mode".to_string(), "w".to_string(), "w%".to_string()];
        let rows = vec![
            vec!["BASIC".to_string(), "12".to_string(), percent(0.123)],
            vec!["ALL".to_string(), "3".to_string(), percent(12.0)],
        ];
        let table = render_table(&headers, &rows);
        assert!(table.contains("| BASIC | 12 | 0.1"), "{table}");
        assert!(table.contains("| ALL   | 3  | 12.0"), "{table}");
        assert!(table
            .lines()
            .all(|l| l.starts_with('+') || l.starts_with('|')));
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(7.65), "7.7");
        assert_eq!(percent(0.0), "0.0");
    }

    #[test]
    fn partial_campaign_table_renders_empty_columns_explicitly() {
        // Snapshot: a streaming Table 4 block where the second target has
        // not been reached yet — its column reads `–`, not zeros.
        use crate::campaign::TargetStats;
        use crate::differential::TestTarget;
        use opencl_sim::OptLevel;
        let config = opencl_sim::configuration(1);
        let result = CampaignResult {
            mode: clsmith::GenMode::Basic,
            kernels: 2,
            targets: vec![
                TestTarget::new(config.clone(), OptLevel::Disabled),
                TestTarget::new(config, OptLevel::Enabled),
            ],
            stats: vec![
                TargetStats {
                    wrong: 1,
                    ok: 1,
                    ..TargetStats::default()
                },
                TargetStats::default(),
            ],
        };
        let expected = "\
+----+------+----+-------+
|    | 1-   | 1+ | Total |
+----+------+----+-------+
| w  | 1    | –  | 1     |
| bf | 0    | –  | 0     |
| c  | 0    | –  | 0     |
| to | 0    | –  | 0     |
| ok | 1    | –  | 1     |
| w% | 50.0 | –  | 50.0  |
+----+------+----+-------+
";
        assert_eq!(render_campaign_table(&result), expected);
    }

    #[test]
    fn partial_emi_table_renders_empty_columns_explicitly() {
        use crate::emi_campaign::EmiStats;
        let result = EmiCampaignResult {
            bases: 1,
            variants_per_base: 4,
            labels: vec!["1-".to_string(), "1+".to_string()],
            stats: vec![
                EmiStats::default(),
                EmiStats {
                    stable: 1,
                    ..EmiStats::default()
                },
            ],
        };
        let expected = "\
+------------+----+----+
|            | 1- | 1+ |
+------------+----+----+
| base fails | –  | 0  |
| w          | –  | 0  |
| bf         | –  | 0  |
| c          | –  | 0  |
| to         | –  | 0  |
| stable     | –  | 1  |
+------------+----+----+
";
        assert_eq!(render_emi_table(&result), expected);
    }

    #[test]
    fn partial_reliability_table_renders_untallied_rows_explicitly() {
        use crate::campaign::{reliability_rows, ClassificationTally};
        let configs = vec![opencl_sim::configuration(1)];
        let rows = reliability_rows(&configs, &ClassificationTally::new(1));
        let table = render_reliability_table(&rows);
        let data_line = table
            .lines()
            .find(|l| l.starts_with("| 1 "))
            .expect("row for configuration 1");
        assert!(
            data_line.contains("| – "),
            "untallied failure% must render as –: {data_line}"
        );
        // Once data arrives the same renderer shows the numbers.
        let mut tally = ClassificationTally::new(1);
        tally.record(&[
            crate::differential::Verdict::Ok,
            crate::differential::Verdict::Ok,
        ]);
        let rows = reliability_rows(&configs, &tally);
        let table = render_reliability_table(&rows);
        assert!(table.contains("| 0.0 "), "{table}");
        assert!(table.contains("| yes "), "{table}");
    }
}
