//! Plain-text table rendering for the reproduction binaries.

/// Renders an ASCII table with a header row.
pub fn render_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let columns = headers.len().max(rows.iter().map(Vec::len).max().unwrap_or(0));
    let mut widths = vec![0usize; columns];
    for (i, h) in headers.iter().enumerate() {
        widths[i] = widths[i].max(h.len());
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for i in 0..widths.len() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            line.push_str(&format!(" {:width$} |", cell, width = widths[i]));
        }
        line
    };
    let separator = {
        let mut line = String::from("+");
        for w in &widths {
            line.push_str(&"-".repeat(w + 2));
            line.push('+');
        }
        line
    };
    out.push_str(&separator);
    out.push('\n');
    out.push_str(&render_row(headers, &widths));
    out.push('\n');
    out.push_str(&separator);
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out.push_str(&separator);
    out.push('\n');
    out
}

/// Formats a percentage with one decimal, as the paper's `w%` rows do.
pub fn percent(value: f64) -> String {
    format!("{value:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_tables() {
        let headers = vec!["mode".to_string(), "w".to_string(), "w%".to_string()];
        let rows = vec![
            vec!["BASIC".to_string(), "12".to_string(), percent(0.123)],
            vec!["ALL".to_string(), "3".to_string(), percent(12.0)],
        ];
        let table = render_table(&headers, &rows);
        assert!(table.contains("| BASIC | 12 | 0.1"), "{table}");
        assert!(table.contains("| ALL   | 3  | 12.0"), "{table}");
        assert!(table.lines().all(|l| l.starts_with('+') || l.starts_with('|')));
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(7.65), "7.7");
        assert_eq!(percent(0.0), "0.0");
    }
}
