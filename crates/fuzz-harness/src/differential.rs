//! Random differential testing: run one kernel across many (configuration,
//! optimisation level) targets and vote on the result (§3.2, §7.3).

use opencl_sim::{Configuration, ExecOptions, OptLevel, Session, TestOutcome};
use std::collections::BTreeMap;

/// One column of Table 4: a configuration at a fixed optimisation level.
#[derive(Debug, Clone)]
pub struct TestTarget {
    /// The simulated configuration.
    pub config: Configuration,
    /// The optimisation level.
    pub opt: OptLevel,
}

impl TestTarget {
    /// Creates a target.
    pub fn new(config: Configuration, opt: OptLevel) -> TestTarget {
        TestTarget { config, opt }
    }

    /// Paper-style label, e.g. `"12-"`.
    pub fn label(&self) -> String {
        self.config.label(self.opt)
    }
}

/// Builds the target list used throughout §7.3/§7.4: every configuration in
/// `configs`, first with optimisations disabled then enabled (the paper's
/// `i−`, `i+` column pairs).
pub fn targets_for(configs: &[Configuration]) -> Vec<TestTarget> {
    let mut out = Vec::with_capacity(configs.len() * 2);
    for config in configs {
        for opt in OptLevel::BOTH {
            out.push(TestTarget::new(config.clone(), opt));
        }
    }
    out
}

/// Per-target verdict for one kernel after majority voting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Terminated with a value that agrees with the majority (the paper's
    /// "✓" bucket) — or no majority of at least three exists, in which case
    /// nothing can be concluded and the result also counts here.
    Ok,
    /// Terminated with a value that disagrees with a majority of at least
    /// three (the paper's `w` bucket).
    WrongCode,
    /// Build failure (`bf`).
    BuildFailure,
    /// Runtime crash (`c`).
    Crash,
    /// Timeout (`to`).
    Timeout,
    /// Not executed: the static analyzer rejected the kernel before launch
    /// (`sk`).  Only produced by campaigns running with
    /// [`crate::CampaignOptions::prefilter`] on.
    Skipped,
}

impl Verdict {
    /// Column key used in the tables.
    pub fn key(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::WrongCode => "w",
            Verdict::BuildFailure => "bf",
            Verdict::Crash => "c",
            Verdict::Timeout => "to",
            Verdict::Skipped => "sk",
        }
    }
}

/// Runs one kernel on every target through a fresh per-kernel
/// [`Session`], so targets that compile the program to a bit-identical AST
/// share a single emulator launch.
pub fn run_on_targets(
    program: &clc::Program,
    targets: &[TestTarget],
    exec: &ExecOptions,
) -> Vec<TestOutcome> {
    run_on_targets_session(&Session::new(program), targets, exec)
}

/// [`run_on_targets`] over an existing session — used when the caller wants
/// to share the session's memo with other executions of the same kernel job
/// or to read the cache counters afterwards.
pub fn run_on_targets_session(
    session: &Session<'_>,
    targets: &[TestTarget],
    exec: &ExecOptions,
) -> Vec<TestOutcome> {
    targets
        .iter()
        .map(|t| session.execute(&t.config, t.opt, exec))
        .collect()
}

/// The minimum number of agreeing results required before a disagreement is
/// classified as wrong code (§7.3: "a majority of at least 3").
pub const MAJORITY_THRESHOLD: usize = 3;

/// Applies the paper's majority-vote rule to a set of outcomes, returning one
/// verdict per outcome.
///
/// Tie-breaking between equal-count value classes is *stable*: the class
/// with the numerically smallest result hash wins.  (A `HashMap` here would
/// make the verdict depend on iteration order — and therefore on nothing
/// reproducible — whenever two value classes tie at the majority count,
/// which would break the campaign engine's bit-identical-at-any-thread-count
/// guarantee.)
pub fn classify(outcomes: &[TestOutcome]) -> Vec<Verdict> {
    let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
    for outcome in outcomes {
        if let Some(hash) = outcome.result_hash() {
            *counts.entry(hash).or_insert(0) += 1;
        }
    }
    // `counts` iterates in ascending hash order, so taking a *strictly*
    // greater count keeps the smallest hash among tied classes.
    let mut majority: Option<(u64, usize)> = None;
    for (&hash, &count) in &counts {
        if majority.is_none_or(|(_, best)| count > best) {
            majority = Some((hash, count));
        }
    }
    let majority = majority
        .filter(|(_, count)| *count >= MAJORITY_THRESHOLD)
        .map(|(hash, _)| hash);
    outcomes
        .iter()
        .map(|outcome| match outcome {
            TestOutcome::Result { hash, .. } => match majority {
                Some(m) if *hash != m => Verdict::WrongCode,
                _ => Verdict::Ok,
            },
            TestOutcome::BuildFailure(_) => Verdict::BuildFailure,
            TestOutcome::Crash(_) => Verdict::Crash,
            TestOutcome::Timeout => Verdict::Timeout,
        })
        .collect()
}

/// Convenience: run and classify in one step.
pub fn differential_test(
    program: &clc::Program,
    targets: &[TestTarget],
    exec: &ExecOptions,
) -> Vec<Verdict> {
    classify(&run_on_targets(program, targets, exec))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(hash: u64) -> TestOutcome {
        TestOutcome::Result {
            hash,
            output: hash.to_string(),
        }
    }

    #[test]
    fn majority_voting_flags_the_deviant() {
        let outcomes = vec![
            result(1),
            result(1),
            result(1),
            result(2),
            TestOutcome::Timeout,
        ];
        let verdicts = classify(&outcomes);
        assert_eq!(
            verdicts,
            vec![
                Verdict::Ok,
                Verdict::Ok,
                Verdict::Ok,
                Verdict::WrongCode,
                Verdict::Timeout
            ]
        );
    }

    #[test]
    fn no_majority_means_no_wrong_code() {
        // Two against two: the paper requires a majority of at least three.
        let outcomes = vec![result(1), result(1), result(2), result(2)];
        let verdicts = classify(&outcomes);
        assert!(verdicts.iter().all(|v| *v == Verdict::Ok));
    }

    #[test]
    fn tied_majorities_break_towards_the_smallest_hash() {
        // Three against three at the majority threshold: the verdict must
        // not depend on map iteration order.  The stable rule elects the
        // smaller hash (2), so the larger class (5) is the deviant.
        let outcomes = vec![
            result(5),
            result(2),
            result(5),
            result(2),
            result(5),
            result(2),
        ];
        let expected = vec![
            Verdict::WrongCode,
            Verdict::Ok,
            Verdict::WrongCode,
            Verdict::Ok,
            Verdict::WrongCode,
            Verdict::Ok,
        ];
        for _ in 0..32 {
            assert_eq!(classify(&outcomes), expected);
        }
    }

    #[test]
    fn failures_map_to_their_buckets() {
        let outcomes = vec![
            TestOutcome::BuildFailure("x".into()),
            TestOutcome::Crash("y".into()),
            TestOutcome::Timeout,
        ];
        let verdicts = classify(&outcomes);
        assert_eq!(
            verdicts,
            vec![Verdict::BuildFailure, Verdict::Crash, Verdict::Timeout]
        );
        assert_eq!(Verdict::BuildFailure.key(), "bf");
    }

    #[test]
    fn targets_enumerate_both_opt_levels() {
        let configs = vec![opencl_sim::configuration(1), opencl_sim::configuration(19)];
        let targets = targets_for(&configs);
        assert_eq!(targets.len(), 4);
        assert_eq!(targets[0].label(), "1-");
        assert_eq!(targets[1].label(), "1+");
        assert_eq!(targets[3].label(), "19+");
    }

    #[test]
    fn end_to_end_differential_run_finds_injected_bug() {
        // The Figure 1(a) kernel should be flagged as wrong code on the AMD
        // configuration when voting against three healthy configurations.
        let fig = opencl_sim::figures::figure_1a();
        let configs = vec![
            opencl_sim::configuration(1),
            opencl_sim::configuration(3),
            opencl_sim::configuration(9),
            opencl_sim::configuration(5),
        ];
        let targets: Vec<TestTarget> = configs
            .into_iter()
            .map(|c| TestTarget::new(c, OptLevel::Enabled))
            .collect();
        let verdicts = differential_test(&fig.program, &targets, &ExecOptions::default());
        assert_eq!(verdicts[3], Verdict::WrongCode, "verdicts: {verdicts:?}");
    }
}
