//! Throughput benchmarks (dependency-free, `harness = false`): generator and
//! emulator hot paths — including the execution-tier axis (tree-walk vs
//! bytecode) with a cross-tier result-hash check — plus the headline
//! measurement for the parallel campaign engine: how mode-campaign
//! wall-clock scales with worker count, together with a byte-identity check
//! of the rendered table at 1 vs 8 workers.
//!
//! Run with `cargo bench -p bench` (add `-- --quick` for a faster pass, and
//! `-- --json PATH` to dump every recorded metric as a flat JSON object for
//! CI artifacts and the `BENCH_*` trajectory).

use std::time::{Duration, Instant};

use clsmith::{generate, prune_variant, GenMode, GeneratorOptions, PruneProbabilities};
use fuzz_harness::shard::{JournalOptions, Mergeable, ShardSelect};
use fuzz_harness::{
    render_campaign_table, run_mode_campaign_with, run_modes_campaign_sharded, run_on_targets,
    targets_for, CampaignOptions, Job, MultiModeTally, Scheduler, SchedulerMode, Stage,
};
use opencl_sim::{configuration, execute, ExecOptions, ExecutionTier, OptLevel, OutcomeStore};
use std::sync::Arc;

/// Flat metric sink rendered to JSON at the end of the run (no external
/// serialisation dependencies, so the values are written by hand).
#[derive(Default)]
struct Metrics {
    entries: Vec<(String, f64)>,
}

impl Metrics {
    fn record(&mut self, key: impl Into<String>, value: f64) {
        self.entries.push((key.into(), value));
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (key, value)) in self.entries.iter().enumerate() {
            let sep = if i + 1 == self.entries.len() { "" } else { "," };
            // Keys are bench-internal identifiers (no quoting hazards).
            out.push_str(&format!("  \"{key}\": {value}{sep}\n"));
        }
        out.push('}');
        out
    }
}

fn small_opts(mode: GenMode, seed: u64) -> GeneratorOptions {
    GeneratorOptions {
        min_threads: 16,
        max_threads: 48,
        ..GeneratorOptions::new(mode, seed)
    }
}

/// Times `iters` runs of `f` and returns the mean per-iteration duration.
fn time<F: FnMut()>(iters: usize, mut f: F) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters.max(1) as u32
}

fn bench_generation(iters: usize, metrics: &mut Metrics) {
    println!("generation (mean over {iters} kernels per mode)");
    for mode in GenMode::ALL {
        let mut seed = 0u64;
        let per = time(iters, || {
            seed += 1;
            std::hint::black_box(generate(&small_opts(mode, seed)));
        });
        println!("  {:<18} {:>10.1?}/kernel", mode.name(), per);
        metrics.record(
            format!("generation_{}_us", mode.name().replace(' ', "_")),
            per.as_secs_f64() * 1e6,
        );
    }
}

/// The emulator hot path across the execution-tier axis: mean latency and
/// kernels/sec per tier on the default workload, with and without race
/// detection, plus the bytecode-over-tree-walk speedup.  Also asserts the
/// tiers produce the same result hash, so CI catches tier regressions even
/// in the smoke configuration.
fn bench_emulation(iters: usize, metrics: &mut Metrics) {
    println!("emulation (mean over {iters} runs, per execution tier)");
    let program = generate(&small_opts(GenMode::All, 7));
    let mut plain_latency = [Duration::ZERO; 2];
    let mut reference_hash: Option<u64> = None;
    for (t, tier) in ExecutionTier::ALL.into_iter().enumerate() {
        for (label, detect_races) in [("plain", false), ("race-detect", true)] {
            let options = clc_interp::LaunchOptions {
                detect_races,
                tier,
                ..clc_interp::LaunchOptions::default()
            };
            let hash = clc_interp::launch(&program, &options).unwrap().result_hash;
            match reference_hash {
                None => reference_hash = Some(hash),
                Some(h) => assert_eq!(h, hash, "tiers disagree on the bench kernel"),
            }
            let per = time(iters, || {
                std::hint::black_box(clc_interp::launch(&program, &options).unwrap());
            });
            println!("  {:<11} {label:<12} {per:>10.1?}/run", tier.name());
            let key = format!(
                "emulation_{}_{}_us",
                tier.name().replace('-', "_"),
                label.replace('-', "_")
            );
            metrics.record(key, per.as_secs_f64() * 1e6);
            if !detect_races {
                plain_latency[t] = per;
                metrics.record(
                    format!("kernels_per_sec_{}", tier.name().replace('-', "_")),
                    1.0 / per.as_secs_f64(),
                );
            }
        }
    }
    let speedup = plain_latency[0].as_secs_f64() / plain_latency[1].as_secs_f64();
    println!("  bytecode speedup over tree-walk: ×{speedup:.2}");
    metrics.record("tier_speedup_bytecode_over_tree_walk", speedup);
}

/// The interpreter hot-path axes: kernels/sec on a fixed-seed workload with
/// the scalar register file active (`interp_register_*`, plain launches on
/// the bytecode tier, where private scalars live in per-frame registers) and
/// with the shadow-memory race detector recording every shared access
/// (`race_shadow_*`).  Before timing, every kernel in the workload is pinned
/// byte-identical — result strings and race verdicts — against the
/// tree-walking reference tier, which has neither optimisation, so the
/// reported numbers can never drift from the unoptimised semantics.
fn bench_hot_paths(kernels: usize, iters: usize, metrics: &mut Metrics) {
    println!(
        "interpreter hot paths ({kernels} kernels × {iters} runs, register file + shadow detector)"
    );
    let programs: Vec<clc::Program> = (0..kernels)
        .map(|i| generate(&small_opts(GenMode::All, 0xF00D + i as u64)))
        .collect();

    // Byte-identity pin against the reference tier, plus the register file's
    // structural effect: registers allocated at compile time and launch
    // object allocations saved relative to the tree walker.
    let mut registers = 0usize;
    let mut tree_allocs = 0u64;
    let mut vm_allocs = 0u64;
    let mut shadow_accesses = 0u64;
    let mut shadow_arrays = 0u64;
    let mut epoch_bumps = 0u64;
    for program in &programs {
        registers += clc_interp::compile(program).register_count();
        for detect_races in [false, true] {
            let options = |tier| clc_interp::LaunchOptions {
                detect_races,
                tier,
                ..clc_interp::LaunchOptions::default()
            };
            let tree = clc_interp::launch(program, &options(ExecutionTier::TreeWalk)).unwrap();
            let vm = clc_interp::launch(program, &options(ExecutionTier::Bytecode)).unwrap();
            assert_eq!(
                tree.result_string, vm.result_string,
                "register-file tier diverged from the reference result"
            );
            assert_eq!(
                tree.race, vm.race,
                "shadow detector diverged from the reference race verdict"
            );
            if detect_races {
                let stats = vm.race_stats.unwrap_or_default();
                shadow_accesses += stats.accesses;
                shadow_arrays += stats.shadow_arrays;
                epoch_bumps += stats.epoch_bumps;
            } else {
                tree_allocs += tree.objects_allocated;
                vm_allocs += vm.objects_allocated;
            }
        }
    }

    let mut per_axis = [0.0f64; 2];
    for (a, (axis, detect_races)) in [("interp_register", false), ("race_shadow", true)]
        .into_iter()
        .enumerate()
    {
        let options = clc_interp::LaunchOptions {
            detect_races,
            tier: ExecutionTier::Bytecode,
            ..clc_interp::LaunchOptions::default()
        };
        let start = Instant::now();
        for _ in 0..iters {
            for program in &programs {
                std::hint::black_box(clc_interp::launch(program, &options).unwrap());
            }
        }
        let elapsed = start.elapsed();
        per_axis[a] = (kernels * iters) as f64 / elapsed.as_secs_f64();
        println!(
            "  {axis:<15} {:>10.1?} total   {:>8.2} kernels/sec",
            elapsed, per_axis[a]
        );
        metrics.record(format!("{axis}_kernels_per_sec"), per_axis[a]);
    }
    let alloc_ratio = vm_allocs as f64 / tree_allocs.max(1) as f64;
    println!(
        "  registers/kernel {:.1}   allocations vm/tree {vm_allocs}/{tree_allocs} (×{alloc_ratio:.2})   shadow accesses {shadow_accesses} over {shadow_arrays} arrays, {epoch_bumps} epoch bumps",
        registers as f64 / kernels as f64,
    );
    metrics.record(
        "interp_register_count_mean",
        registers as f64 / kernels as f64,
    );
    metrics.record("interp_register_alloc_ratio", alloc_ratio);
    metrics.record("race_shadow_accesses", shadow_accesses as f64);
    metrics.record("race_shadow_arrays", shadow_arrays as f64);
    metrics.record("race_shadow_epoch_bumps", epoch_bumps as f64);
    assert!(
        vm_allocs < tree_allocs,
        "the register file should allocate strictly fewer objects than the tree walker ({vm_allocs} vs {tree_allocs})"
    );
}

fn bench_simulated_platform(iters: usize) {
    println!("simulated platform (compile+run, mean over {iters} runs)");
    let program = generate(&small_opts(GenMode::Barrier, 3));
    for id in [1usize, 12, 19] {
        let config = configuration(id);
        let per = time(iters, || {
            std::hint::black_box(execute(
                &program,
                &config,
                OptLevel::Enabled,
                &ExecOptions::default(),
            ));
        });
        println!("  config {id:<11} {per:>10.1?}/run");
    }
}

fn bench_emi_pruning(iters: usize) {
    println!("emi pruning (mean over {iters} variants)");
    let base = generate(&small_opts(GenMode::All, 11).with_emi());
    let probs = PruneProbabilities::new(0.3, 0.3, 0.3).unwrap();
    let mut seed = 0u64;
    let per = time(iters, || {
        seed += 1;
        std::hint::black_box(prune_variant(&base, &probs, seed));
    });
    println!("  prune-variant      {per:>10.1?}/variant");
}

/// The campaign-engine scaling measurement: the same fixed-seed mode campaign
/// at 1, 2, 4 and 8 workers.  Prints wall-clock and speedup per worker count
/// and asserts that the rendered table is byte-identical at 1 and 8 workers.
fn bench_campaign_scaling(kernels: usize, metrics: &mut Metrics) {
    let configs = vec![
        configuration(1),
        configuration(9),
        configuration(14),
        configuration(19),
    ];
    let options = CampaignOptions {
        kernels,
        generator: GeneratorOptions {
            min_threads: 16,
            max_threads: 48,
            ..GeneratorOptions::default()
        },
        exec: ExecOptions::default(),
        seed_offset: 0xBEEF,
        prefilter: false,
    };
    println!("campaign scaling (BARRIER mode, {kernels} kernels, 8 targets)");
    let mut baseline: Option<Duration> = None;
    let mut tables: Vec<(usize, String)> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let scheduler = Scheduler::new(workers);
        // Clear the process-wide outcome cache so every worker count does
        // the same cold work — otherwise run 2 onwards would measure cache
        // reads, not scheduler scaling.
        opencl_sim::reset_shared_outcome_cache();
        let start = Instant::now();
        let result = run_mode_campaign_with(&scheduler, GenMode::Barrier, &configs, &options);
        let elapsed = start.elapsed();
        let speedup = baseline
            .map(|b| b.as_secs_f64() / elapsed.as_secs_f64())
            .unwrap_or(1.0);
        baseline.get_or_insert(elapsed);
        println!("  {workers} worker(s)        {elapsed:>10.1?}   speedup ×{speedup:.2}");
        metrics.record(
            format!("campaign_{workers}_workers_ms"),
            elapsed.as_secs_f64() * 1e3,
        );
        tables.push((workers, render_campaign_table(&result)));
    }
    let one = &tables.iter().find(|(w, _)| *w == 1).unwrap().1;
    let eight = &tables.iter().find(|(w, _)| *w == 8).unwrap().1;
    assert_eq!(one, eight, "tables diverged between 1 and 8 workers");
    println!(
        "  tables at 1 and 8 workers: byte-identical ({} bytes)",
        one.len()
    );
}

/// The deduplicated-differential-execution measurement: the default
/// differential workload (every Table 1 configuration at both optimisation
/// levels — the full 42-target fan-out) with the execution memo off and on.
/// Reports kernels/sec both ways, the dedupe speedup, real emulator
/// launches per kernel and the compile-cache hit rate, and asserts that the
/// deduplicated outcomes hash-match the uncached baseline — so CI's smoke
/// run catches both cache-correctness and dedupe regressions.
fn bench_differential_dedupe(kernels: usize, metrics: &mut Metrics) {
    println!("differential dedupe ({kernels} kernels × 42 targets, memo off vs on)");
    let configs = opencl_sim::all_configurations();
    let targets = targets_for(&configs);
    let programs: Vec<clc::Program> = (0..kernels)
        .map(|i| generate(&small_opts(GenMode::All, 0x5EED + i as u64)))
        .collect();
    let mut hashes: Vec<u64> = Vec::new();
    let mut kernels_per_sec = [0.0f64; 2];
    for (m, memoize) in [false, true].into_iter().enumerate() {
        let exec = ExecOptions {
            memoize,
            store: None,
            ..ExecOptions::default()
        };
        // Every pass starts cold at every cache level, so "memo on" measures
        // the per-process dedupe machinery itself, not leftovers.
        opencl_sim::reset_shared_outcome_cache();
        opencl_sim::reset_process_cache_stats();
        let start = Instant::now();
        let mut outcome_hash = 0u64;
        for program in &programs {
            for outcome in run_on_targets(program, &targets, &exec) {
                // Order-sensitive running hash over every outcome.
                let h = clc_interp::fnv1a(format!("{outcome:?}").as_bytes());
                outcome_hash = outcome_hash.rotate_left(7) ^ h;
            }
        }
        let elapsed = start.elapsed();
        let stats = opencl_sim::process_cache_stats();
        hashes.push(outcome_hash);
        kernels_per_sec[m] = kernels as f64 / elapsed.as_secs_f64();
        let label = if memoize { "memo on " } else { "memo off" };
        let launches_per_kernel = stats.launches as f64 / kernels as f64;
        println!(
            "  {label}   {:>10.1?} total   {:>7.2} kernels/sec   {launches_per_kernel:>5.1} launches/kernel   compile hit rate {:.2}",
            elapsed,
            kernels_per_sec[m],
            stats.compile_hit_rate(),
        );
        let key = if memoize { "memo_on" } else { "memo_off" };
        metrics.record(format!("dedupe_{key}_kernels_per_sec"), kernels_per_sec[m]);
        if memoize {
            metrics.record("launches_per_kernel", launches_per_kernel);
            metrics.record("compile_cache_hit_rate", stats.compile_hit_rate());
        }
    }
    assert_eq!(
        hashes[0], hashes[1],
        "deduplicated outcomes diverged from the uncached baseline"
    );
    let speedup = kernels_per_sec[1] / kernels_per_sec[0];
    println!("  dedupe speedup over cold execution: ×{speedup:.2} (outcomes hash-match)");
    metrics.record("dedupe_speedup", speedup);
}

/// The cross-campaign outcome-store measurement: the same fixed-seed
/// differential workload run three ways — store off, cold store (fresh
/// directory) and warm store (a second pass over the same directory with
/// the in-memory cache levels cleared, modelling a fresh process).  Asserts
/// the outcome hash-stream is identical in all three passes — the
/// store-equivalence invariant CI pins in its smoke run — and reports the
/// store counters plus the warm-over-cold speedup.
fn bench_store(kernels: usize, metrics: &mut Metrics) {
    println!("outcome store ({kernels} kernels × 42 targets, off vs cold vs warm)");
    let configs = opencl_sim::all_configurations();
    let targets = targets_for(&configs);
    let programs: Vec<clc::Program> = (0..kernels)
        .map(|i| generate(&small_opts(GenMode::All, 0xCA5E + i as u64)))
        .collect();
    let dir = std::env::temp_dir().join(format!("clfuzz-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut hashes: Vec<u64> = Vec::new();
    let mut kernels_per_sec = [0.0f64; 3];
    let mut cold_misses = 0u64;
    for (pass, label) in ["off", "cold", "warm"].into_iter().enumerate() {
        let store = if label == "off" {
            None
        } else {
            Some(Arc::new(
                OutcomeStore::open_with_cap(&dir, u64::MAX).expect("open bench store"),
            ))
        };
        let exec = ExecOptions {
            store: store.clone(),
            ..ExecOptions::default()
        };
        // Clearing the in-memory levels makes every pass process-cold: the
        // warm pass can only be fast through the on-disk store.
        opencl_sim::reset_shared_outcome_cache();
        opencl_sim::reset_process_cache_stats();
        let start = Instant::now();
        let mut outcome_hash = 0u64;
        for program in &programs {
            for outcome in run_on_targets(program, &targets, &exec) {
                let h = clc_interp::fnv1a(format!("{outcome:?}").as_bytes());
                outcome_hash = outcome_hash.rotate_left(7) ^ h;
            }
        }
        let elapsed = start.elapsed();
        hashes.push(outcome_hash);
        kernels_per_sec[pass] = kernels as f64 / elapsed.as_secs_f64();
        let process = opencl_sim::process_cache_stats();
        let stats = store.as_ref().map(|s| s.stats()).unwrap_or_default();
        println!(
            "  store {label:<5} {elapsed:>10.1?} total   {:>7.2} kernels/sec   store hits/misses {}/{}   outcome hit rate {:.2}",
            kernels_per_sec[pass],
            stats.hits,
            stats.misses,
            process.outcome_hit_rate(),
        );
        match label {
            "cold" => cold_misses = stats.misses,
            "warm" => {
                assert_eq!(
                    process.launches, 0,
                    "a warm store must serve every execution without a launch"
                );
                metrics.record("store_hits", stats.hits as f64);
                metrics.record("store_misses", cold_misses as f64);
                metrics.record("store_evictions", stats.evictions as f64);
                metrics.record("store_bytes", stats.bytes as f64);
                metrics.record("store_warm_kernels_per_sec", kernels_per_sec[pass]);
            }
            _ => {}
        }
    }
    assert!(
        hashes.iter().all(|h| *h == hashes[0]),
        "outcome stream diverged across store off/cold/warm passes"
    );
    let speedup = kernels_per_sec[2] / kernels_per_sec[1];
    println!("  warm-over-cold speedup: ×{speedup:.2} (outcomes hash-match in all passes)");
    metrics.record("store_speedup_warm_over_cold", speedup);
    assert!(
        speedup > 2.0,
        "warm store should beat the cold pass by >2x, got ×{speedup:.2}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The shard/journal layer measurement: a fixed-seed mode campaign run
/// three ways — single process, 3 shards merged, and killed-then-resumed —
/// with the journaling overhead and resume bookkeeping reported next to
/// the `dedupe_*` axes (`jobs_resumed`, `jobs_replayed`, `journal_bytes`,
/// `shard_count` in the JSON).  Asserts all three rendered tables are
/// byte-identical, so CI's smoke run pins the shard/merge/resume
/// invariant too.
fn bench_shard_resume(kernels: usize, metrics: &mut Metrics) {
    println!("shard/resume (BARRIER mode, {kernels} kernels, 3 shards + kill/resume)");
    let configs = vec![configuration(1), configuration(19)];
    let options = CampaignOptions {
        kernels,
        generator: GeneratorOptions {
            min_threads: 16,
            max_threads: 48,
            ..GeneratorOptions::default()
        },
        exec: ExecOptions::default(),
        seed_offset: 0x54A2D,
        prefilter: false,
    };
    let modes = [GenMode::Barrier];
    let scheduler = Scheduler::new(4);
    let temp = |name: &str| {
        std::env::temp_dir().join(format!("clfuzz-bench-{}-{name}.log", std::process::id()))
    };

    // Reference: the plain single-process campaign.  Each timed phase
    // starts with a cold process-wide cache so the comparison measures the
    // shard/journal machinery, not cache reads of the previous phase.
    opencl_sim::reset_shared_outcome_cache();
    let start = Instant::now();
    let single = run_mode_campaign_with(&scheduler, GenMode::Barrier, &configs, &options);
    let plain = start.elapsed();
    let reference = render_campaign_table(&single);

    // 3 journaled shards, merged in memory (disjoint job spaces, so one
    // reset for the whole loop keeps them mutually cold).
    let mut paths = Vec::new();
    let mut tally: Option<MultiModeTally> = None;
    let mut journal_bytes = 0u64;
    opencl_sim::reset_shared_outcome_cache();
    let start = Instant::now();
    for index in 0..3u32 {
        let path = temp(&format!("shard{index}"));
        let shard = run_modes_campaign_sharded(
            &scheduler,
            &modes,
            &configs,
            &options,
            ShardSelect { index, count: 3 },
            Some(&JournalOptions::create(&path)),
        )
        .expect("sharded campaign");
        journal_bytes += shard.metrics.journal_bytes;
        match &mut tally {
            None => tally = Some(shard.tally),
            Some(t) => t.merge(shard.tally),
        }
        paths.push(path);
    }
    let sharded_elapsed = start.elapsed();
    let tally = tally.expect("shards ran");
    let merged = fuzz_harness::CampaignResult {
        mode: GenMode::Barrier,
        kernels: tally.per_mode[0].kernels(),
        targets: targets_for(&configs),
        stats: tally.per_mode[0].per_target.clone(),
    };
    assert_eq!(
        render_campaign_table(&merged),
        reference,
        "3-shard merge diverged from the single run"
    );

    // Kill after half the jobs (torn final record), resume from the journal.
    let journal = temp("resume");
    opencl_sim::reset_shared_outcome_cache();
    run_modes_campaign_sharded(
        &scheduler,
        &modes,
        &configs,
        &options,
        ShardSelect::whole(),
        Some(&JournalOptions::create(&journal)),
    )
    .expect("full journaled campaign");
    let keep = kernels / 2;
    let text = std::fs::read_to_string(&journal).expect("journal exists");
    let bytes: usize = text.lines().take(1 + keep).map(|l| l.len() + 1).sum();
    let mut raw = text.into_bytes();
    raw.truncate(bytes + 11); // a torn half-record survives the kill
    std::fs::write(&journal, raw).expect("truncate journal");
    opencl_sim::reset_shared_outcome_cache();
    let start = Instant::now();
    let resumed = run_modes_campaign_sharded(
        &scheduler,
        &modes,
        &configs,
        &options,
        ShardSelect::whole(),
        Some(&JournalOptions::resume(&journal)),
    )
    .expect("resumed campaign");
    let resume_elapsed = start.elapsed();
    assert_eq!(
        render_campaign_table(&resumed.results[0]),
        reference,
        "resumed campaign diverged from the single run"
    );
    assert_eq!(resumed.metrics.jobs_resumed, keep as u64);

    println!(
        "  plain              {plain:>10.1?}   sharded(3) {sharded_elapsed:>10.1?}   resume({}/{kernels} journaled) {resume_elapsed:>10.1?}",
        keep
    );
    println!(
        "  journal overhead: {journal_bytes} byte(s) across 3 shard journals; tables byte-identical"
    );
    metrics.record("shard_count", 3.0);
    metrics.record("jobs_resumed", resumed.metrics.jobs_resumed as f64);
    metrics.record("jobs_replayed", resumed.metrics.jobs_replayed as f64);
    metrics.record(
        "journal_bytes",
        (journal_bytes + resumed.metrics.journal_bytes) as f64,
    );
    paths.push(journal);
    for path in paths {
        let _ = std::fs::remove_file(path);
    }
}

/// The pipelined-stage-scheduler measurement: the default differential
/// workload (ALL-mode kernels × the full 42-target fan-out) run batch vs
/// pipelined on the same worker count.  Reports kernels/sec both ways, the
/// per-stage occupancy of the pipelined run (`pipeline_stage_occupancy_*`),
/// the hand-off queue depth, and asserts the rendered tables — and
/// therefore every result hash — are byte-identical across modes, so CI's
/// smoke run pins the pipeline/batch invariant before the JSON is uploaded.
///
/// Throughput note: on a saturated CPU-bound workload the two modes are
/// work-conserving, so the expected speedup is ~1× — the pipelined mode's
/// structural win is the stage-granular drain (no worker idles behind one
/// last whole job) and stage observability.  The assertion therefore allows
/// measurement noise but catches real scheduling regressions.
fn bench_pipeline_overlap(kernels: usize, metrics: &mut Metrics) {
    println!("pipelined stage scheduler ({kernels} kernels × 42 targets, batch vs pipelined)");
    let configs = opencl_sim::all_configurations();
    let options = CampaignOptions {
        kernels,
        generator: GeneratorOptions {
            min_threads: 16,
            max_threads: 48,
            ..GeneratorOptions::default()
        },
        exec: ExecOptions::default(),
        seed_offset: 0x919E,
        prefilter: false,
    };
    let modes = [GenMode::All];
    let mut tables: Vec<String> = Vec::new();
    let mut kernels_per_sec = [0.0f64; 2];
    for (m, mode) in [SchedulerMode::Batch, SchedulerMode::Pipelined]
        .into_iter()
        .enumerate()
    {
        let scheduler = Scheduler::new(4).with_mode(mode);
        // Both modes do the same cold work: without this the pipelined run
        // would be served from the batch run's process-wide outcome cache.
        opencl_sim::reset_shared_outcome_cache();
        let start = Instant::now();
        let sharded = run_modes_campaign_sharded(
            &scheduler,
            &modes,
            &configs,
            &options,
            ShardSelect::whole(),
            None,
        )
        .expect("journal-less campaign");
        let elapsed = start.elapsed();
        kernels_per_sec[m] = kernels as f64 / elapsed.as_secs_f64();
        let table = render_campaign_table(&sharded.results[0]);
        let table_hash = clc_interp::fnv1a(table.as_bytes());
        tables.push(table);
        metrics.record(
            format!("pipeline_{}_kernels_per_sec", mode.name()),
            kernels_per_sec[m],
        );
        let pipeline = &sharded.pipeline;
        println!(
            "  {:<9}  {elapsed:>10.1?}   {:>7.2} kernels/sec   occupancy g/e/j {:.2}/{:.2}/{:.2}   table hash {table_hash:016x}",
            mode.name(),
            kernels_per_sec[m],
            pipeline.occupancy(Stage::Generate),
            pipeline.occupancy(Stage::Execute),
            pipeline.occupancy(Stage::Judge),
        );
        if mode == SchedulerMode::Pipelined {
            for stage in Stage::ALL {
                metrics.record(
                    format!("pipeline_stage_occupancy_{}", stage.name()),
                    pipeline.occupancy(stage),
                );
            }
            metrics.record(
                "pipeline_handoff_depth_max",
                pipeline.handoff_depth_max as f64,
            );
            metrics.record("pipeline_handoff_depth_mean", pipeline.mean_handoff_depth());
        }
    }
    assert_eq!(
        tables[0], tables[1],
        "pipelined table diverged from batch mode"
    );
    let speedup = kernels_per_sec[1] / kernels_per_sec[0];
    println!("  pipelined/batch: ×{speedup:.2} (tables byte-identical)");
    metrics.record("pipeline_speedup_over_batch", speedup);
    // The throughput guard only fires at the full scale: a --quick run is a
    // few seconds per mode, where one co-tenant noise spike on a shared CI
    // runner could dip the ratio without any real scheduling regression.
    // (Correctness is pinned unconditionally by the byte-identity assert
    // above; the recorded metric tracks the ratio either way.)
    if kernels >= 16 {
        assert!(
            speedup >= 0.8,
            "pipelined mode regressed to ×{speedup:.2} of batch throughput"
        );
    }
}

/// A fixed-latency job, standing in for campaign work whose cost is
/// wall-clock rather than CPU (e.g. driving a real OpenCL device, where the
/// harness waits on the GPU).
struct LatencyJob(Duration);

impl Job for LatencyJob {
    type Output = ();
    fn run(self) {
        std::thread::sleep(self.0);
    }
}

/// Demonstrates that the scheduler genuinely overlaps job execution: 16
/// fixed-latency jobs at 4 workers must finish at least twice as fast as at
/// 1 worker.  Unlike [`bench_campaign_scaling`] this holds on any machine —
/// including single-core CI boxes, where a CPU-bound campaign cannot
/// physically speed up no matter how it is scheduled.
/// The `analysis_*` axes: analyzer-only throughput, verdict-class rejection
/// rates, and the wall-clock effect of static pre-filtering on a campaign.
fn bench_analysis(kernels: usize, metrics: &mut Metrics) {
    println!("static analysis ({kernels} kernels per mode)");
    let programs: Vec<_> = GenMode::ALL
        .iter()
        .flat_map(|&mode| (0..kernels as u64).map(move |seed| generate(&small_opts(mode, seed))))
        .collect();
    let mut tally: std::collections::BTreeMap<&'static str, usize> = Default::default();
    let start = Instant::now();
    for program in &programs {
        let report = clsmith::validate(std::hint::black_box(program));
        *tally.entry(report.verdict()).or_insert(0) += 1;
    }
    let elapsed = start.elapsed();
    let per_sec = programs.len() as f64 / elapsed.as_secs_f64().max(1e-9);
    println!("  analyzer alone     {per_sec:>10.0} kernels/s");
    metrics.record("analysis_kernels_per_sec", per_sec);
    let certified = *tally.get("clean").unwrap_or(&0)
        + tally
            .iter()
            .filter(|(k, _)| !matches!(**k, "clean" | "divergence" | "must-race" | "may-race"))
            .map(|(_, n)| n)
            .sum::<usize>();
    for (verdict, count) in &tally {
        let pct = 100.0 * *count as f64 / programs.len() as f64;
        println!("  verdict {verdict:<12} {pct:>9.1}%");
        metrics.record(format!("analysis_pct_{}", verdict.replace('-', "_")), pct);
    }
    metrics.record(
        "analysis_pct_certified",
        100.0 * certified as f64 / programs.len() as f64,
    );

    // Campaign wall-clock with the pre-filter off vs on (same seeds, same
    // targets; the on pass skips whatever the analyzer refuses to certify).
    let configs = vec![configuration(1), configuration(19)];
    let scheduler = Scheduler::new(4);
    let mut seconds = [0.0f64; 2];
    for (i, prefilter) in [false, true].into_iter().enumerate() {
        let options = CampaignOptions {
            kernels: kernels * 2,
            generator: GeneratorOptions {
                min_threads: 16,
                max_threads: 48,
                ..GeneratorOptions::default()
            },
            exec: ExecOptions::default(),
            seed_offset: 0xA7A1,
            prefilter,
        };
        opencl_sim::reset_shared_outcome_cache();
        let start = Instant::now();
        let result = run_mode_campaign_with(&scheduler, GenMode::Barrier, &configs, &options);
        seconds[i] = start.elapsed().as_secs_f64();
        let skipped: usize = result.stats.iter().map(|s| s.skipped).sum();
        println!(
            "  campaign prefilter={:<5} {:>8.2}s ({} skipped)",
            prefilter, seconds[i], skipped
        );
        metrics.record(
            format!(
                "analysis_campaign_prefilter_{}_s",
                if prefilter { "on" } else { "off" }
            ),
            seconds[i],
        );
    }
    let speedup = seconds[0] / seconds[1].max(1e-9);
    println!("  prefilter speedup  {speedup:>10.2}x");
    metrics.record("analysis_prefilter_speedup", speedup);
}

/// The corpus-campaign measurement: coverage-guided vs blind mutation
/// chains over the same lineage seeds at the same kernel budget.  Records
/// the `corpus_*` axes — coverage saturation and bugs-per-kernel for each
/// strategy plus the guided acceptance rate — and asserts the rendered
/// comparison table is byte-identical at 1 and 4 workers, extending the
/// determinism invariant to the feedback loop.
fn bench_corpus(lineages: usize, metrics: &mut Metrics) {
    println!("corpus campaign ({lineages} lineages per strategy, guided vs blind)");
    let configs = vec![
        configuration(1),
        configuration(9),
        configuration(14),
        configuration(19),
    ];
    let options = fuzz_harness::CorpusOptions {
        lineages,
        chain: 4,
        generator: GeneratorOptions {
            min_threads: 16,
            max_threads: 48,
            ..GeneratorOptions::default()
        },
        exec: ExecOptions {
            store: None,
            ..ExecOptions::default()
        },
        seed_offset: 0xC0DE,
    };
    let mut tables: Vec<String> = Vec::new();
    let mut elapsed = Duration::ZERO;
    let mut last: Option<fuzz_harness::CorpusCampaignResult> = None;
    for workers in [1usize, 4] {
        let scheduler = Scheduler::new(workers);
        // Each worker count does the same cold work — without the reset the
        // 4-worker pass would replay the 1-worker pass's shared cache.
        opencl_sim::reset_shared_outcome_cache();
        let start = Instant::now();
        let result = fuzz_harness::run_corpus_campaign_with(&scheduler, &configs, &options);
        elapsed = start.elapsed();
        tables.push(fuzz_harness::render_corpus_table(&result));
        last = Some(result);
    }
    assert_eq!(
        tables[0], tables[1],
        "corpus tables diverged between 1 and 4 workers"
    );
    let result = last.expect("corpus campaign ran");
    let (guided, blind) = (result.guided(), result.blind());
    println!(
        "  guided {:>8.3} bugs/kernel at {:.1}% saturation   blind {:>8.3} at {:.1}%   acceptance {:.1}%   ({elapsed:.1?} at 4 workers, tables byte-identical)",
        guided.bugs_per_kernel(),
        guided.saturation() * 100.0,
        blind.bugs_per_kernel(),
        blind.saturation() * 100.0,
        guided.acceptance_rate() * 100.0,
    );
    metrics.record("corpus_saturation_guided", guided.saturation());
    metrics.record("corpus_saturation_blind", blind.saturation());
    metrics.record("corpus_bugs_per_kernel_guided", guided.bugs_per_kernel());
    metrics.record("corpus_bugs_per_kernel_blind", blind.bugs_per_kernel());
    metrics.record("corpus_mutation_acceptance_rate", guided.acceptance_rate());
}

fn bench_scheduler_overlap() {
    println!("scheduler overlap (16 jobs × 25ms latency)");
    let jobs = || {
        (0..16)
            .map(|_| LatencyJob(Duration::from_millis(25)))
            .collect::<Vec<_>>()
    };
    let mut baseline: Option<Duration> = None;
    for workers in [1usize, 4] {
        let scheduler = Scheduler::new(workers);
        let start = Instant::now();
        scheduler.run_all(jobs());
        let elapsed = start.elapsed();
        let speedup = baseline
            .map(|b| b.as_secs_f64() / elapsed.as_secs_f64())
            .unwrap_or(1.0);
        baseline.get_or_insert(elapsed);
        println!("  {workers} worker(s)        {elapsed:>10.1?}   speedup ×{speedup:.2}");
        if workers == 4 {
            assert!(
                speedup >= 2.0,
                "4 workers should overlap latency at least 2x (got ×{speedup:.2})"
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let (iters, campaign_kernels) = if quick { (5, 16) } else { (20, 48) };
    let mut metrics = Metrics::default();
    bench_generation(iters, &mut metrics);
    bench_emulation(iters, &mut metrics);
    bench_hot_paths(if quick { 6 } else { 16 }, iters, &mut metrics);
    bench_simulated_platform(iters);
    bench_emi_pruning(iters.max(30));
    bench_differential_dedupe(if quick { 4 } else { 12 }, &mut metrics);
    bench_store(if quick { 4 } else { 12 }, &mut metrics);
    bench_shard_resume(if quick { 8 } else { 24 }, &mut metrics);
    bench_pipeline_overlap(if quick { 8 } else { 24 }, &mut metrics);
    bench_analysis(if quick { 8 } else { 24 }, &mut metrics);
    bench_corpus(if quick { 4 } else { 12 }, &mut metrics);
    bench_scheduler_overlap();
    // CPU-bound scaling: speedup tracks the machine's core count (×1.0 on a
    // single-core box); the byte-identity assertion holds everywhere.
    bench_campaign_scaling(campaign_kernels, &mut metrics);
    if let Some(path) = json_path {
        std::fs::write(&path, metrics.to_json()).expect("write bench JSON");
        println!("metrics written to {path}");
    }
}
