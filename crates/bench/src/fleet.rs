//! Fleet-mode glue shared by the campaign binaries.
//!
//! A binary becomes a fleet by re-invoking itself: `<binary> coordinate …`
//! partitions the campaign's job space and spawns `<binary> worker …`
//! children (over stdin/stdout, via [`ProcessWorker`]), each of which runs
//! leases through the campaign's range driver.  The coordinator's stdout is
//! exactly what `<binary> merge <lease journals…>` would print, so a fleet
//! run — even one riddled with injected faults — can be byte-diffed against
//! a fault-free batch run's merged table.
//!
//! Fault injection (`--faults SPEC` or `CLFUZZ_FAULTS`) is resolved by the
//! *workers*: each worker derives the same deterministic [`FaultPlan`] from
//! the campaign seed and enacts its share per lease — truncating the lease
//! at the fault's job index and then aborting (kill), tearing the journal
//! tail first (torn), or going silent so the coordinator's journal-growth
//! liveness check must revoke the lease (hang).  Store I/O faults install
//! the `opencl_sim::store` hook instead.  The coordinator only writes the
//! resolved schedule to `<fleet-dir>/faults.log` for the record.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

use fuzz_harness::faults::{FaultKind, FaultPlan, FaultSpec, LeaseFault};
use fuzz_harness::fleet::append_worker_log;
use fuzz_harness::{
    run_worker, tear_journal_tail, Coordinator, FleetOptions, FleetOutcome, LeaseRecord,
    ProcessWorker, WorkerLink,
};

use crate::{fail, usage_error, Cli};

/// Exit code of a coordinator whose campaign completed with quarantined
/// (dead-lettered) ranges: the table printed, but it has gaps.
pub const FLEET_EXIT_QUARANTINE: i32 = 4;

/// The coordinator options implied by the fleet flags.  `--fleet-dir` is
/// required: lease journals, `fleet.log`, `dead-letters.log`, and
/// `faults.log` all live there.
pub fn fleet_options(cli: &Cli) -> FleetOptions {
    let Some(journal_dir) = cli.fleet.fleet_dir.clone() else {
        usage_error("coordinate requires --fleet-dir PATH");
    };
    FleetOptions {
        workers: cli.fleet.workers,
        lease_jobs: cli.fleet.lease_jobs,
        lease_timeout: Duration::from_millis(cli.fleet.lease_timeout_ms),
        max_retries: cli.fleet.max_retries,
        retry_backoff: Duration::from_millis(25),
        poll_interval: Duration::from_millis(5),
        journal_dir,
    }
}

/// The flags a coordinator forwards to its `worker` re-invocations so both
/// sides derive the same campaign (generator scale, store, fault plan,
/// checkpoint cadence, scheduler shape).
pub fn forwarded_worker_flags(cli: &Cli) -> Vec<String> {
    let mut flags = Vec::new();
    if cli.paper_scale {
        flags.push("--paper-scale".to_string());
    }
    if cli.no_store {
        flags.push("--no-store".to_string());
    }
    if let Some(store) = &cli.store {
        flags.push(format!("--store={}", store.display()));
    }
    if let Some(spec) = &cli.fleet.faults {
        flags.push(format!("--faults={spec}"));
    }
    flags.push(format!("--checkpoint-every={}", cli.fleet.checkpoint_every));
    flags.push(format!("--threads={}", cli.scheduler.threads()));
    if matches!(cli.scheduler.mode(), fuzz_harness::SchedulerMode::Pipelined) {
        flags.push("--pipeline".to_string());
    }
    flags
}

/// A binary's "merge these completed lease journals and render the partial
/// table" closure, used by `--follow` to fill the table in live.
pub type LiveTable<'a> = &'a dyn Fn(&[PathBuf]) -> Result<String, String>;

/// Runs the coordinator side: spawns `worker_args` re-invocations of this
/// binary as workers, leases the job space to them, and returns the
/// outcome.  Writes the resolved fault schedule to `faults.log` first so
/// chaos runs leave an auditable record even if the fleet dies.
///
/// Under `--follow` every coordinator event streams to stderr, and
/// `live_table` — the binary's "merge these lease journals and render the
/// partial table" closure — re-renders after every `DONE` event, so the
/// table fills in live as leases land.  Rendering reads only journals of
/// completed leases (the same ones the final merge reads), so a live
/// rendering failure is reported but never aborts the fleet.
pub fn run_coordinator(
    cli: &Cli,
    campaign_seed: u64,
    total_jobs: u64,
    worker_args: Vec<String>,
    live_table: Option<LiveTable<'_>>,
) -> FleetOutcome {
    let options = fleet_options(cli);
    let mut coordinator = Coordinator::new(options.clone(), total_jobs).unwrap_or_else(|e| fail(e));
    let spec = FaultSpec::from_env_or(cli.fleet.faults.as_deref()).unwrap_or_else(|e| fail(e));
    let plan = FaultPlan::resolve(&spec, campaign_seed, total_jobs);
    if let Ok(mut log) = std::fs::File::create(options.journal_dir.join("faults.log")) {
        let _ = writeln!(log, "campaign-seed {campaign_seed:016x} jobs {total_jobs}");
        let _ = writeln!(log, "schedule {plan}");
    }
    let exe = std::env::current_exe().unwrap_or_else(|e| fail(e));
    let mut spawn = move |_slot: usize| {
        let mut command = Command::new(&exe);
        command.args(&worker_args);
        Ok(Box::new(ProcessWorker::spawn(&mut command)?) as Box<dyn WorkerLink>)
    };
    let journal_dir = options.journal_dir.clone();
    let mut completed: Vec<PathBuf> = Vec::new();
    let mut follow = move |line: &str| {
        eprintln!("fleet: {line}");
        let Some(rest) = line.strip_prefix("DONE lease=") else {
            return;
        };
        let Some(id) = rest
            .split_whitespace()
            .next()
            .and_then(|t| t.parse::<u32>().ok())
        else {
            return;
        };
        // Stable per-range journal names mean a retried lease completes
        // into the same path it started with.
        let path = journal_dir.join(format!("lease-{id:04}.journal"));
        if !completed.contains(&path) {
            completed.push(path);
        }
        let Some(render) = live_table else { return };
        match render(&completed) {
            Ok(table) => {
                eprintln!("fleet: partial table after {} lease(s):", completed.len());
                for table_line in table.lines() {
                    eprintln!("fleet: {table_line}");
                }
            }
            Err(e) => eprintln!("fleet: partial table unavailable: {e}"),
        }
    };
    let observer: Option<&mut dyn FnMut(&str)> = if cli.fleet.follow {
        Some(&mut follow)
    } else {
        None
    };
    coordinator
        .run(&mut spawn, observer)
        .unwrap_or_else(|e| fail(e))
}

/// Reports a fleet run on stderr (stdout is reserved for the merged table)
/// with explicit gap accounting, and returns the process exit code: 0 when
/// complete, [`FLEET_EXIT_QUARANTINE`] when ranges were dead-lettered.
pub fn report_fleet_outcome(outcome: &FleetOutcome) -> i32 {
    eprintln!(
        "fleet: {}/{} job(s) over {} lease(s), {} retrie(s), {} respawn(s)",
        outcome.completed_jobs,
        outcome.total_jobs,
        outcome.leases_issued,
        outcome.retries,
        outcome.respawns
    );
    if outcome.is_complete() {
        return 0;
    }
    for letter in &outcome.dead_letters {
        eprintln!(
            "fleet: GAP jobs {}-{} quarantined after {} attempt(s): {}",
            letter.start, letter.end, letter.attempts, letter.reason
        );
    }
    eprintln!(
        "fleet: PARTIAL table — {} range(s) dead-lettered (see dead-letters.log)",
        outcome.dead_letters.len()
    );
    FLEET_EXIT_QUARANTINE
}

/// Runs the worker side: serves leases from stdin until the coordinator
/// hangs up, enacting this worker's share of the deterministic fault plan.
///
/// `run_lease` executes one lease's range — truncated to `stop_before`
/// when a fault is scheduled — and returns the jobs executed.  Never
/// returns normally except through process exit.
pub fn worker_loop(
    cli: &Cli,
    campaign_seed: u64,
    total_jobs: u64,
    mut run_lease: impl FnMut(&LeaseRecord, Option<u64>) -> Result<u64, String>,
) -> ! {
    let spec = FaultSpec::from_env_or(cli.fleet.faults.as_deref()).unwrap_or_else(|e| fail(e));
    let plan = FaultPlan::resolve(&spec, campaign_seed, total_jobs);
    plan.install_store_faults();
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    let result = run_worker(&mut input, &mut output, &mut |lease| {
        let fault = plan.lease_action(&(lease.start..lease.end), lease.attempt);
        let stop_before = fault.as_ref().map(|f| f.stop_before);
        let jobs = run_lease(lease, stop_before)?;
        if let Some(fault) = fault {
            enact_lease_fault(&fault, lease);
        }
        Ok(jobs)
    });
    std::process::exit(if result.is_ok() { 0 } else { 1 });
}

/// Carries out a scheduled lease fault after the (truncated) run has
/// flushed its journal.  Kill and torn abort the process; hang parks it so
/// only the coordinator's liveness check can reclaim the lease.
fn enact_lease_fault(fault: &LeaseFault, lease: &LeaseRecord) {
    let dir = lease
        .journal
        .parent()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let note = format!(
        "FAULT {} lease={} attempt={} at={}",
        fault.kind.token(),
        lease.id,
        lease.attempt,
        fault.stop_before
    );
    append_worker_log(&dir, &note);
    match fault.kind {
        FaultKind::Kill => std::process::abort(),
        FaultKind::Torn => {
            let _ = tear_journal_tail(&lease.journal);
            std::process::abort();
        }
        FaultKind::Hang => loop {
            std::thread::sleep(Duration::from_millis(200));
        },
        // Store I/O faults act through the installed store hook, not here.
        FaultKind::Io => {}
    }
}
