//! # bench — reproduction binaries and performance benchmarks
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation (see DESIGN.md for the per-experiment index); the
//! benchmark in `benches/throughput.rs` measures generator/emulator/campaign
//! throughput, including how campaign wall-clock scales with the worker
//! count of the `fuzz_harness::exec` scheduler.
//!
//! Every table binary accepts `--threads N` to pin the scheduler's worker
//! count (default: `FUZZ_THREADS` or the machine's available parallelism).
//! Thread count never changes the produced tables — only how fast they
//! appear.

use fuzz_harness::Scheduler;

/// Parses command-line arguments shared by the table binaries: extracts
/// `--threads N` (or `--threads=N`) and returns the remaining positional
/// arguments plus the scheduler to run campaigns on.
pub fn cli_scheduler() -> (Vec<String>, Scheduler) {
    let mut positional = Vec::new();
    let mut threads: Option<usize> = None;
    let parse = |value: Option<String>| -> usize {
        match value.as_deref().map(str::parse::<usize>) {
            Some(Ok(n)) => n,
            _ => {
                eprintln!(
                    "error: --threads requires a non-negative integer, got {:?}",
                    value.as_deref().unwrap_or("nothing")
                );
                std::process::exit(2);
            }
        }
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            threads = Some(parse(args.next()));
        } else if let Some(value) = arg.strip_prefix("--threads=") {
            threads = Some(parse(Some(value.to_string())));
        } else {
            positional.push(arg);
        }
    }
    let scheduler = threads
        .map(Scheduler::new)
        .unwrap_or_else(Scheduler::from_env);
    (positional, scheduler)
}
