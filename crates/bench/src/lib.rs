//! # bench — reproduction binaries and performance benchmarks
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation (see DESIGN.md for the per-experiment index); the
//! benchmark in `benches/throughput.rs` measures generator/emulator/campaign
//! throughput, including how campaign wall-clock scales with the worker
//! count of the `fuzz_harness::exec` scheduler.
//!
//! Every table binary accepts `--threads N` to pin the scheduler's worker
//! count (default: `FUZZ_THREADS` or the machine's available parallelism;
//! `N` must be at least 1 — a zero-worker pool could never drain its queue)
//! and `--pipeline` to run campaign jobs as overlapping
//! generate → execute → judge stages (default: `FUZZ_PIPELINE`, else whole
//! jobs).  Neither flag ever changes the produced tables — only how fast
//! they appear.
//!
//! The campaign binaries (`table1`, `table3`, `table4`, `table5`)
//! additionally speak the shard/journal layer:
//!
//! * `--shard I/N` runs shard `I` of an `N`-way split of the campaign's
//!   job space (any subset of shards is independently computable — on any
//!   machine — because job seeds derive from the job index);
//! * `--journal PATH` records every completed job to a resumable journal;
//! * `--resume` skips the jobs already in the journal (a half-written
//!   record from a mid-write kill is detected by checksum and dropped);
//! * `<binary> merge J1 [J2 ...]` refolds any subset of shard journals
//!   into the (full or partial) table without re-running anything.
//!
//! Every table binary also speaks the cross-campaign outcome store:
//! `--store PATH` points executions at an on-disk outcome cache shared
//! across runs (and across concurrent shard processes), `--no-store`
//! disables it, and neither flag defers to the `CLFUZZ_STORE` environment
//! variable.  Like the scheduler flags, the store never changes the
//! produced tables — only how fast repeat executions resolve.
//!
//! Tables go to stdout; shard/resume/merge progress lines go to stderr, so
//! merged outputs can be diffed byte for byte.

pub mod fleet;

use std::path::PathBuf;
use std::sync::Arc;

use clsmith::{GenMode, GeneratorOptions};
use fuzz_harness::shard::{JournalOptions, RefoldSummary, ShardMetrics, ShardSelect};
use fuzz_harness::{Scheduler, SchedulerMode};
use opencl_sim::{ExecOptions, OutcomeStore};

/// Command-line options shared by the table binaries.
pub struct Cli {
    /// Positional arguments (after flags are extracted).
    pub positional: Vec<String>,
    /// The scheduler campaigns run on (`--threads N`, `FUZZ_THREADS`, or
    /// the machine's available parallelism).
    pub scheduler: Scheduler,
    /// Whether `--paper-scale` was given: generate kernels at the paper's
    /// scale (100–10 000 work-items, full permutation tables) instead of
    /// the fast emulation-friendly default.
    pub paper_scale: bool,
    /// Which shard of the campaign's job space to run (`--shard I/N`;
    /// defaults to the whole space).
    pub shard: ShardSelect,
    /// Journal path (`--journal PATH`).
    pub journal: Option<PathBuf>,
    /// Whether `--resume` was given (requires `--journal`).
    pub resume: bool,
    /// Journal paths of the `merge` subcommand, when invoked as
    /// `<binary> merge J1 [J2 ...]`.
    pub merge: Option<Vec<PathBuf>>,
    /// Cross-campaign outcome store directory (`--store PATH`; defaults to
    /// `CLFUZZ_STORE` when unset).
    pub store: Option<PathBuf>,
    /// Whether `--no-store` was given: run without an outcome store even
    /// when `CLFUZZ_STORE` is set.
    pub no_store: bool,
    /// Fleet-mode flags, used by the `coordinate` and `worker` subcommands.
    pub fleet: FleetCliOptions,
}

/// Flags of the fleet subcommands (`coordinate` spawns `worker` children;
/// see the `fleet` module).
#[derive(Debug, Clone)]
pub struct FleetCliOptions {
    /// Worker processes the coordinator keeps alive (`--workers N`).
    pub workers: usize,
    /// Jobs per lease (`--lease-jobs N`).
    pub lease_jobs: u64,
    /// Journal-growth liveness timeout in milliseconds
    /// (`--lease-timeout-ms N`).
    pub lease_timeout_ms: u64,
    /// Re-lease attempts before a range is quarantined (`--max-retries N`).
    pub max_retries: u32,
    /// Jobs between journal checkpoints in lease workers
    /// (`--checkpoint-every N`).
    pub checkpoint_every: u64,
    /// Directory for lease journals and fleet logs (`--fleet-dir PATH`;
    /// required by `coordinate`).
    pub fleet_dir: Option<PathBuf>,
    /// Fault-injection spec (`--faults SPEC`; `CLFUZZ_FAULTS` overrides).
    pub faults: Option<String>,
    /// Whether `--follow` was given: stream fleet events to stderr live.
    pub follow: bool,
}

impl Default for FleetCliOptions {
    fn default() -> FleetCliOptions {
        FleetCliOptions {
            workers: 2,
            lease_jobs: 8,
            lease_timeout_ms: 30_000,
            max_retries: 3,
            checkpoint_every: 16,
            fleet_dir: None,
            faults: None,
            follow: false,
        }
    }
}

impl Cli {
    /// The base generator options selected by the flags: the paper's
    /// generation scale under `--paper-scale`, otherwise the given fast
    /// default.  Mode and seed are overridden per kernel by the campaign
    /// drivers either way.
    pub fn generator_or(&self, fast_default: GeneratorOptions) -> GeneratorOptions {
        if self.paper_scale {
            GeneratorOptions::paper_scale(GenMode::All, 0)
        } else {
            fast_default
        }
    }

    /// The shard executor's journal configuration implied by `--journal` /
    /// `--resume`.
    pub fn journal_options(&self) -> Option<JournalOptions> {
        self.journal.as_ref().map(|path| JournalOptions {
            path: path.clone(),
            resume: self.resume,
        })
    }

    /// Whether this run covers only part of the job space (so the printed
    /// table is partial).
    pub fn is_sharded(&self) -> bool {
        self.shard.count > 1
    }

    /// The execution options selected by the store flags: `--store PATH`
    /// opens (creating if needed) an explicit outcome store, `--no-store`
    /// disables the store even when `CLFUZZ_STORE` is set, and neither flag
    /// defers to the environment default.  The store never changes the
    /// produced tables — only how fast repeat executions resolve.
    pub fn exec_options(&self) -> ExecOptions {
        let mut exec = ExecOptions::default();
        if self.no_store {
            exec.store = None;
        } else if let Some(path) = &self.store {
            match OutcomeStore::open(path) {
                Ok(store) => exec.store = Some(Arc::new(store)),
                Err(e) => fail(format!("--store {}: {e}", path.display())),
            }
        }
        exec
    }
}

/// Prints a parse/validation error and exits with status 2.
pub fn usage_error(message: impl std::fmt::Display) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

/// Prints a campaign/journal error and exits with status 1.
pub fn fail(err: impl std::fmt::Display) -> ! {
    eprintln!("error: {err}");
    std::process::exit(1);
}

/// Reports a sharded run's resume/journal metrics on stderr (stdout is
/// reserved for the table, which merge outputs diff byte for byte).
pub fn report_shard_metrics(cli: &Cli, metrics: &ShardMetrics) {
    if cli.journal.is_none() && !cli.is_sharded() {
        return;
    }
    eprintln!(
        "shard {} ({} scheduler): {} job(s) resumed from the journal, {} executed, journal {} byte(s){}",
        cli.shard,
        cli.scheduler.mode().name(),
        metrics.jobs_resumed,
        metrics.jobs_replayed,
        metrics.journal_bytes,
        if metrics.dropped_bytes > 0 {
            format!(", {} corrupt tail byte(s) dropped", metrics.dropped_bytes)
        } else {
            String::new()
        }
    );
}

/// Reports the outcome store's counters on stderr (stdout is reserved for
/// the table, which store-warm re-runs diff byte for byte).  No-op when no
/// store is configured.
pub fn report_store_stats(exec: &ExecOptions) {
    if let Some(store) = &exec.store {
        let stats = store.stats();
        eprintln!(
            "store {}: {} hit(s), {} miss(es), {} write(s), {} eviction(s), {} byte(s), hit rate {:.2}{}",
            store.dir().display(),
            stats.hits,
            stats.misses,
            stats.writes,
            stats.evictions,
            stats.bytes,
            stats.hit_rate(),
            if stats.transient_errors > 0 || stats.corrupt_entries > 0 {
                format!(
                    ", {} transient error(s), {} corrupt entrie(s) deleted",
                    stats.transient_errors, stats.corrupt_entries
                )
            } else {
                String::new()
            }
        );
    }
}

/// Reports what a `merge` covered on stderr.
pub fn report_refold_summary(summary: &RefoldSummary) {
    eprintln!(
        "merged {} journal(s): {}/{} job(s) of campaign {:?} (seed {:016x}){}",
        summary.journals,
        summary.jobs_folded,
        summary.total_jobs,
        summary.campaign,
        summary.campaign_seed,
        if summary.complete {
            " — complete".to_string()
        } else {
            " — PARTIAL table".to_string()
        }
    );
}

/// Parses a `--threads` argument value: a positive integer (zero is
/// rejected — a zero-worker scheduler could never drain its queue, so the
/// historical "accept 0, build a stuck pool" behaviour is now an error).
pub fn parse_threads(value: Option<&str>) -> Result<usize, String> {
    match value.map(str::parse::<usize>) {
        Some(Ok(0)) => Err("--threads must be at least 1 (got 0); \
             omit the flag to use every core"
            .to_string()),
        Some(Ok(n)) => Ok(n),
        _ => Err(format!(
            "--threads requires a positive integer, got {:?}",
            value.unwrap_or("nothing")
        )),
    }
}

/// Validates the store flag combination: at most one of `--store PATH` and
/// `--no-store`, and the path (when given) must be non-empty.  Pure so the
/// conflict handling is unit-testable like [`parse_threads`].
pub fn resolve_store(store: Option<&str>, no_store: bool) -> Result<Option<PathBuf>, String> {
    match (store, no_store) {
        (Some(_), true) => {
            Err("--store PATH conflicts with --no-store; pass at most one".to_string())
        }
        (Some(""), false) => Err("--store requires a non-empty path".to_string()),
        (Some(path), false) => Ok(Some(PathBuf::from(path))),
        (None, _) => Ok(None),
    }
}

/// Parses the command-line arguments shared by the table binaries:
/// extracts `--threads N` (or `--threads=N`), `--pipeline`, `--paper-scale`,
/// `--shard I/N`, `--journal PATH`, `--resume`, `--store PATH` and
/// `--no-store`, recognises the `merge` subcommand, and returns them with
/// the remaining positional arguments.
pub fn cli() -> Cli {
    let mut positional = Vec::new();
    let mut threads: Option<usize> = None;
    let mut pipeline = false;
    let mut paper_scale = false;
    let mut shard = ShardSelect::whole();
    let mut journal: Option<PathBuf> = None;
    let mut resume = false;
    let mut store: Option<String> = None;
    let mut no_store = false;
    let mut fleet = FleetCliOptions::default();
    let parse = |value: Option<String>| -> usize {
        parse_threads(value.as_deref()).unwrap_or_else(|e| usage_error(e))
    };
    fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
        match value.as_deref().map(str::parse) {
            Some(Ok(n)) => n,
            _ => usage_error(format!(
                "{flag} requires a number, got {:?}",
                value.unwrap_or_default()
            )),
        }
    }
    let parse_shard = |value: Option<String>| -> ShardSelect {
        match value.as_deref().map(ShardSelect::parse) {
            Some(Ok(s)) => s,
            Some(Err(e)) => usage_error(e),
            None => usage_error("--shard requires an I/N argument"),
        }
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            threads = Some(parse(args.next()));
        } else if let Some(value) = arg.strip_prefix("--threads=") {
            threads = Some(parse(Some(value.to_string())));
        } else if arg == "--pipeline" {
            pipeline = true;
        } else if arg == "--paper-scale" {
            paper_scale = true;
        } else if arg == "--shard" {
            shard = parse_shard(args.next());
        } else if let Some(value) = arg.strip_prefix("--shard=") {
            shard = parse_shard(Some(value.to_string()));
        } else if arg == "--journal" {
            match args.next() {
                Some(path) => journal = Some(PathBuf::from(path)),
                None => usage_error("--journal requires a path"),
            }
        } else if let Some(value) = arg.strip_prefix("--journal=") {
            journal = Some(PathBuf::from(value));
        } else if arg == "--resume" {
            resume = true;
        } else if arg == "--store" {
            match args.next() {
                Some(path) => store = Some(path),
                None => usage_error("--store requires a path"),
            }
        } else if let Some(value) = arg.strip_prefix("--store=") {
            store = Some(value.to_string());
        } else if arg == "--no-store" {
            no_store = true;
        } else if arg == "--workers" {
            fleet.workers = parse_num("--workers", args.next());
        } else if let Some(value) = arg.strip_prefix("--workers=") {
            fleet.workers = parse_num("--workers", Some(value.to_string()));
        } else if arg == "--lease-jobs" {
            fleet.lease_jobs = parse_num("--lease-jobs", args.next());
        } else if let Some(value) = arg.strip_prefix("--lease-jobs=") {
            fleet.lease_jobs = parse_num("--lease-jobs", Some(value.to_string()));
        } else if arg == "--lease-timeout-ms" {
            fleet.lease_timeout_ms = parse_num("--lease-timeout-ms", args.next());
        } else if let Some(value) = arg.strip_prefix("--lease-timeout-ms=") {
            fleet.lease_timeout_ms = parse_num("--lease-timeout-ms", Some(value.to_string()));
        } else if arg == "--max-retries" {
            fleet.max_retries = parse_num("--max-retries", args.next());
        } else if let Some(value) = arg.strip_prefix("--max-retries=") {
            fleet.max_retries = parse_num("--max-retries", Some(value.to_string()));
        } else if arg == "--checkpoint-every" {
            fleet.checkpoint_every = parse_num("--checkpoint-every", args.next());
        } else if let Some(value) = arg.strip_prefix("--checkpoint-every=") {
            fleet.checkpoint_every = parse_num("--checkpoint-every", Some(value.to_string()));
        } else if arg == "--fleet-dir" {
            match args.next() {
                Some(path) => fleet.fleet_dir = Some(PathBuf::from(path)),
                None => usage_error("--fleet-dir requires a path"),
            }
        } else if let Some(value) = arg.strip_prefix("--fleet-dir=") {
            fleet.fleet_dir = Some(PathBuf::from(value));
        } else if arg == "--faults" {
            match args.next() {
                Some(spec) => fleet.faults = Some(spec),
                None => usage_error("--faults requires a spec (e.g. kill@3,torn@5)"),
            }
        } else if let Some(value) = arg.strip_prefix("--faults=") {
            fleet.faults = Some(value.to_string());
        } else if arg == "--follow" {
            fleet.follow = true;
        } else {
            positional.push(arg);
        }
    }
    if fleet.workers == 0 {
        usage_error("--workers must be at least 1");
    }
    if fleet.lease_jobs == 0 {
        usage_error("--lease-jobs must be at least 1");
    }
    if fleet.checkpoint_every == 0 {
        usage_error("--checkpoint-every must be at least 1");
    }
    let store = resolve_store(store.as_deref(), no_store).unwrap_or_else(|e| usage_error(e));
    let merge = if positional.first().map(String::as_str) == Some("merge") {
        let paths: Vec<PathBuf> = positional[1..].iter().map(PathBuf::from).collect();
        if paths.is_empty() {
            usage_error("merge requires at least one journal path");
        }
        Some(paths)
    } else {
        None
    };
    if resume && journal.is_none() {
        usage_error("--resume requires --journal PATH");
    }
    if merge.is_some() && (journal.is_some() || resume || shard.count > 1) {
        usage_error("merge takes only journal paths (no --shard/--journal/--resume)");
    }
    // `--threads N` pins the worker count but still honours `FUZZ_PIPELINE`;
    // `--pipeline` then forces the pipelined mode either way.
    let mut scheduler = threads
        .map(|n| Scheduler::new(n).with_mode(SchedulerMode::from_env()))
        .unwrap_or_else(Scheduler::from_env);
    if pipeline {
        scheduler = scheduler.with_mode(SchedulerMode::Pipelined);
    }
    Cli {
        positional: if merge.is_some() {
            Vec::new()
        } else {
            positional
        },
        scheduler,
        paper_scale,
        shard,
        journal,
        resume,
        merge,
        store,
        no_store,
        fleet,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_argument_rejects_zero_and_garbage() {
        assert_eq!(parse_threads(Some("1")), Ok(1));
        assert_eq!(parse_threads(Some("16")), Ok(16));
        assert!(parse_threads(Some("0")).unwrap_err().contains("at least 1"));
        assert!(parse_threads(Some("-3")).is_err());
        assert!(parse_threads(Some("two")).is_err());
        assert!(parse_threads(None).is_err());
    }

    #[test]
    fn store_flags_reject_conflicts_and_empty_paths() {
        assert_eq!(resolve_store(None, false), Ok(None));
        assert_eq!(resolve_store(None, true), Ok(None));
        assert_eq!(
            resolve_store(Some("/tmp/store"), false),
            Ok(Some(PathBuf::from("/tmp/store")))
        );
        let conflict = resolve_store(Some("/tmp/store"), true).unwrap_err();
        assert!(conflict.contains("--no-store"), "got: {conflict}");
        assert!(resolve_store(Some(""), false)
            .unwrap_err()
            .contains("non-empty"));
    }
}
