//! # bench — reproduction binaries and performance benchmarks
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation (see DESIGN.md for the per-experiment index); the
//! Criterion benchmarks in `benches/` measure the throughput of the
//! generator, the emulator and the simulated compiler pipeline.
