//! # bench — reproduction binaries and performance benchmarks
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation (see DESIGN.md for the per-experiment index); the
//! benchmark in `benches/throughput.rs` measures generator/emulator/campaign
//! throughput, including how campaign wall-clock scales with the worker
//! count of the `fuzz_harness::exec` scheduler.
//!
//! Every table binary accepts `--threads N` to pin the scheduler's worker
//! count (default: `FUZZ_THREADS` or the machine's available parallelism).
//! Thread count never changes the produced tables — only how fast they
//! appear.

use clsmith::{GenMode, GeneratorOptions};
use fuzz_harness::Scheduler;

/// Command-line options shared by the table binaries.
pub struct Cli {
    /// Positional arguments (after flags are extracted).
    pub positional: Vec<String>,
    /// The scheduler campaigns run on (`--threads N`, `FUZZ_THREADS`, or
    /// the machine's available parallelism).
    pub scheduler: Scheduler,
    /// Whether `--paper-scale` was given: generate kernels at the paper's
    /// scale (100–10 000 work-items, full permutation tables) instead of
    /// the fast emulation-friendly default.
    pub paper_scale: bool,
}

impl Cli {
    /// The base generator options selected by the flags: the paper's
    /// generation scale under `--paper-scale`, otherwise the given fast
    /// default.  Mode and seed are overridden per kernel by the campaign
    /// drivers either way.
    pub fn generator_or(&self, fast_default: GeneratorOptions) -> GeneratorOptions {
        if self.paper_scale {
            GeneratorOptions::paper_scale(GenMode::All, 0)
        } else {
            fast_default
        }
    }
}

/// Parses the command-line arguments shared by the table binaries:
/// extracts `--threads N` (or `--threads=N`) and `--paper-scale`, and
/// returns them with the remaining positional arguments.
pub fn cli() -> Cli {
    let mut positional = Vec::new();
    let mut threads: Option<usize> = None;
    let mut paper_scale = false;
    let parse = |value: Option<String>| -> usize {
        match value.as_deref().map(str::parse::<usize>) {
            Some(Ok(n)) => n,
            _ => {
                eprintln!(
                    "error: --threads requires a non-negative integer, got {:?}",
                    value.as_deref().unwrap_or("nothing")
                );
                std::process::exit(2);
            }
        }
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            threads = Some(parse(args.next()));
        } else if let Some(value) = arg.strip_prefix("--threads=") {
            threads = Some(parse(Some(value.to_string())));
        } else if arg == "--paper-scale" {
            paper_scale = true;
        } else {
            positional.push(arg);
        }
    }
    let scheduler = threads
        .map(Scheduler::new)
        .unwrap_or_else(Scheduler::from_env);
    Cli {
        positional,
        scheduler,
        paper_scale,
    }
}
