//! Reproduces Table 5: CLsmith+EMI testing — base programs, their pruning
//! variants, and per-target base-level outcomes.
//!
//! Usage: `cargo run --release -p bench --bin table5 -- [bases] [variants]`
//! (the paper uses 180 bases and 40 variants; defaults here are 4 and 10).

use clsmith::GeneratorOptions;
use fuzz_harness::{render_table, run_emi_campaign, CampaignOptions, EmiCampaignOptions};

fn main() {
    let bases: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let variants: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(10);
    let configs = opencl_sim::above_threshold_configurations();
    let options = EmiCampaignOptions {
        bases,
        variants_per_base: variants,
        campaign: CampaignOptions {
            generator: GeneratorOptions { min_threads: 16, max_threads: 64, ..GeneratorOptions::default() },
            ..CampaignOptions::default()
        },
    };
    let result = run_emi_campaign(&configs, &options);
    println!("Table 5 — CLsmith+EMI results over the above-threshold configurations");
    println!("({} live base programs, {} pruning variants each)\n", result.bases, result.variants_per_base);
    let headers: Vec<String> = std::iter::once("".to_string()).chain(result.labels.iter().cloned()).collect();
    let mut rows = Vec::new();
    for (name, pick) in [
        ("base fails", 0usize),
        ("w", 1),
        ("bf", 2),
        ("c", 3),
        ("to", 4),
        ("stable", 5),
    ] {
        let mut row = vec![name.to_string()];
        for stat in &result.stats {
            let value = match pick {
                0 => stat.base_fails,
                1 => stat.wrong,
                2 => stat.build_failures,
                3 => stat.crashes,
                4 => stat.timeouts,
                _ => stat.stable,
            };
            row.push(value.to_string());
        }
        rows.push(row);
    }
    print!("{}", render_table(&headers, &rows));
}
