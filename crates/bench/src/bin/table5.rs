//! Reproduces Table 5: CLsmith+EMI testing — base programs, their pruning
//! variants, and per-target base-level outcomes.
//!
//! Usage: `cargo run --release -p bench --bin table5 -- [bases] [variants]
//! [--threads N] [--pipeline] [--paper-scale] [--shard I/N]
//! [--journal PATH] [--resume]`
//! (the paper uses 180 bases and 40 variants; defaults here are 4 and 10,
//! and `--paper-scale` generates base kernels at the paper's 100–10 000
//! work-item scale).
//!
//! The job space is the live-base index space (every shard regenerates the
//! cheap base list deterministically, then judges only its slice).
//! `table5 merge J1 [J2 ...]` refolds shard journals into the table
//! without re-judging anything.

use clsmith::GeneratorOptions;
use fuzz_harness::{
    merge_emi_campaign_journals, render_emi_table, run_emi_campaign_sharded, CampaignOptions,
    EmiCampaignOptions,
};

fn main() {
    let cli = bench::cli();
    let configs = opencl_sim::above_threshold_configurations();

    if let Some(paths) = &cli.merge {
        let (result, summary) =
            merge_emi_campaign_journals(paths, &configs).unwrap_or_else(|e| bench::fail(e));
        bench::report_refold_summary(&summary);
        println!("Table 5 — CLsmith+EMI results over the above-threshold configurations");
        println!(
            "({} live base programs, {} pruning variants each, merged from journals)\n",
            result.bases, result.variants_per_base
        );
        print!("{}", render_emi_table(&result));
        return;
    }

    let scheduler = &cli.scheduler;
    let bases: usize = cli
        .positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let variants: usize = cli
        .positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let options = EmiCampaignOptions {
        bases,
        variants_per_base: variants,
        campaign: CampaignOptions {
            generator: cli.generator_or(GeneratorOptions {
                min_threads: 16,
                max_threads: 64,
                ..GeneratorOptions::default()
            }),
            exec: cli.exec_options(),
            ..CampaignOptions::default()
        },
    };
    let sharded = run_emi_campaign_sharded(
        scheduler,
        &configs,
        &options,
        cli.shard,
        cli.journal_options().as_ref(),
    )
    .unwrap_or_else(|e| bench::fail(e));
    bench::report_shard_metrics(&cli, &sharded.metrics);
    bench::report_store_stats(&options.campaign.exec);
    println!("Table 5 — CLsmith+EMI results over the above-threshold configurations");
    if cli.is_sharded() {
        println!(
            "(shard {} — PARTIAL table over {} of {} live bases, {} variants each, {} worker(s))\n",
            cli.shard,
            sharded.result.bases,
            sharded.total_bases,
            sharded.result.variants_per_base,
            scheduler.threads()
        );
    } else {
        println!(
            "({} live base programs, {} pruning variants each, {} worker(s))\n",
            sharded.result.bases,
            sharded.result.variants_per_base,
            scheduler.threads()
        );
    }
    print!("{}", render_emi_table(&sharded.result));
}
