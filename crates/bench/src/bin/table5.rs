//! Reproduces Table 5: CLsmith+EMI testing — base programs, their pruning
//! variants, and per-target base-level outcomes.
//!
//! Usage: `cargo run --release -p bench --bin table5 -- [bases] [variants]
//! [--threads N] [--paper-scale]` (the paper uses 180 bases and 40
//! variants; defaults here are 4 and 10, and `--paper-scale` generates base
//! kernels at the paper's 100–10 000 work-item scale).

use clsmith::GeneratorOptions;
use fuzz_harness::{render_emi_table, run_emi_campaign_with, CampaignOptions, EmiCampaignOptions};

fn main() {
    let cli = bench::cli();
    let scheduler = &cli.scheduler;
    let bases: usize = cli
        .positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let variants: usize = cli
        .positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let configs = opencl_sim::above_threshold_configurations();
    let options = EmiCampaignOptions {
        bases,
        variants_per_base: variants,
        campaign: CampaignOptions {
            generator: cli.generator_or(GeneratorOptions {
                min_threads: 16,
                max_threads: 64,
                ..GeneratorOptions::default()
            }),
            ..CampaignOptions::default()
        },
    };
    let result = run_emi_campaign_with(scheduler, &configs, &options);
    println!("Table 5 — CLsmith+EMI results over the above-threshold configurations");
    println!(
        "({} live base programs, {} pruning variants each, {} worker(s))\n",
        result.bases,
        result.variants_per_base,
        scheduler.threads()
    );
    print!("{}", render_emi_table(&result));
}
