//! Reproduces Table 3: EMI testing of the Parboil/Rodinia miniatures across
//! the configurations (spmv and myocyte excluded because of their races).
//!
//! Usage: `cargo run --release -p bench --bin table3 -- [emi-bodies]
//! [--threads N] [--paper-scale]` (number of EMI block bodies per
//! benchmark; the paper uses 125.  `--paper-scale` draws the donor kernels
//! the bodies are taken from at the paper's generation scale).

use clsmith::{generate, GenMode, GeneratorOptions};
use fuzz_harness::{evaluate_benchmark_with, render_table, EmiBenchmark};
use opencl_sim::ExecOptions;
use parboil_rodinia::table3_benchmarks;

fn main() {
    let cli = bench::cli();
    let scheduler = &cli.scheduler;
    let bodies_per_benchmark: usize = cli
        .positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let configs = opencl_sim::all_configurations();
    let exec = ExecOptions::default();
    let headers: Vec<String> = std::iter::once("Benchmark".to_string())
        .chain(configs.iter().map(|c| c.id.to_string()))
        .collect();
    let mut rows = Vec::new();
    for bench in table3_benchmarks() {
        // EMI block bodies are taken from CLsmith-generated kernels (§7.2).
        let bodies: Vec<clc::Block> = (0..bodies_per_benchmark)
            .map(|i| {
                let donor = generate(
                    &GeneratorOptions {
                        mode: GenMode::Basic,
                        seed: 900 + i as u64,
                        ..cli.generator_or(GeneratorOptions {
                            min_threads: 16,
                            max_threads: 32,
                            ..GeneratorOptions::default()
                        })
                    }
                    .with_emi(),
                );
                donor
                    .emi_blocks()
                    .first()
                    .map(|b| b.body.clone())
                    .unwrap_or_default()
            })
            .collect();
        let emi_bench = EmiBenchmark {
            name: bench.name.to_string(),
            program: bench.program.clone(),
            bodies,
            injection_points: 1,
        };
        let mut row = vec![bench.name.to_string()];
        for config in &configs {
            let cell = evaluate_benchmark_with(scheduler, &emi_bench, config, &exec);
            row.push(cell.render());
        }
        rows.push(row);
    }
    println!("Table 3 — EMI testing over the Parboil/Rodinia miniatures");
    println!("(letters: w = wrong code, c = crash/build failure, to = timeout, ng = cannot run benchmark, ok = no mismatch;");
    println!(
        " superscripts: e = needs substitutions, d = needs substitutions disabled, ? = either)\n"
    );
    print!("{}", render_table(&headers, &rows));
}
