//! Reproduces Table 3: EMI testing of the Parboil/Rodinia miniatures across
//! the configurations (spmv and myocyte excluded because of their races).
//!
//! Usage: `cargo run --release -p bench --bin table3 -- [emi-bodies]
//! [--threads N] [--pipeline] [--paper-scale] [--shard I/N]
//! [--journal PATH] [--resume]`
//! (number of EMI block bodies per benchmark; the paper uses 125.
//! `--paper-scale` draws the donor kernels the bodies are taken from at the
//! paper's generation scale).
//!
//! The job space is the benchmark × configuration cell grid
//! (benchmark-major), so shards and resumed runs journal one
//! [`BenchmarkCell`] per record; `table3 merge J1 [J2 ...]` stitches any
//! subset of cell journals back into the table, rendering unreached cells
//! as `–`.

use std::sync::Arc;

use clsmith::{generate, GenMode, GeneratorOptions};
use fuzz_harness::shard::{refold_journal_records, run_sharded, ShardSpec};
use fuzz_harness::{
    checksum, evaluate_benchmark_with, render_table, BenchmarkCell, EmiBenchmark, Scheduler,
    StagedJob, EMPTY_CELL,
};
use opencl_sim::{Configuration, ExecOptions};
use parboil_rodinia::table3_benchmarks;

/// One Table 3 cell: a benchmark evaluated on one configuration.  The
/// inner body fan-out runs sequentially — the cell grid itself is the
/// parallel (and shardable) job space.  A cell's input is prebuilt and its
/// verdict is folded inside the evaluation, so the whole cell is one
/// execute stage (generate and judge pass through); `--pipeline` still
/// overlaps cells freely because execute tasks queue independently.
struct CellJob {
    benchmark: Arc<EmiBenchmark>,
    config: Configuration,
    exec: ExecOptions,
}

impl StagedJob for CellJob {
    type Generated = CellJob;
    type Executed = BenchmarkCell;
    type Output = BenchmarkCell;

    fn generate(self) -> CellJob {
        self
    }

    fn execute(cell: CellJob) -> BenchmarkCell {
        evaluate_benchmark_with(
            &Scheduler::sequential(),
            &cell.benchmark,
            &cell.config,
            &cell.exec,
        )
    }

    fn judge(cell: BenchmarkCell) -> BenchmarkCell {
        cell
    }
}

/// Fingerprint token of the benchmark × configuration grid, embedded in
/// the campaign descriptor and re-validated on merge so journals recorded
/// over a different grid (reordered configurations, changed benchmark
/// list) cannot silently land under the wrong rows/columns.
fn grid_token(names: &[String], configs: &[Configuration]) -> String {
    let config_ids: Vec<String> = configs.iter().map(|c| c.id.to_string()).collect();
    let grid = format!("{}\n---\n{}", names.join("\n"), config_ids.join("\n"));
    format!("grid{:016x}", checksum(grid.as_bytes()))
}

/// The campaign descriptor of a Table 3 journal: bodies per benchmark plus
/// fingerprints of the generator options and the cell grid.
fn descriptor(
    bodies: usize,
    names: &[String],
    configs: &[Configuration],
    generator: &GeneratorOptions,
) -> String {
    format!(
        "table3:bodies{bodies}:gen{:016x}:{}",
        checksum(format!("{generator:?}").as_bytes()),
        grid_token(names, configs)
    )
}

/// Renders the (possibly partial) cell grid; unreached cells read `–`.
fn print_grid(names: &[String], configs: &[Configuration], cells: &[Option<BenchmarkCell>]) {
    let headers: Vec<String> = std::iter::once("Benchmark".to_string())
        .chain(configs.iter().map(|c| c.id.to_string()))
        .collect();
    let mut rows = Vec::new();
    for (b, name) in names.iter().enumerate() {
        let mut row = vec![name.clone()];
        for c in 0..configs.len() {
            row.push(match &cells[b * configs.len() + c] {
                Some(cell) => cell.render(),
                None => EMPTY_CELL.to_string(),
            });
        }
        rows.push(row);
    }
    println!("Table 3 — EMI testing over the Parboil/Rodinia miniatures");
    println!("(letters: w = wrong code, c = crash/build failure, to = timeout, ng = cannot run benchmark, ok = no mismatch;");
    println!(
        " superscripts: e = needs substitutions, d = needs substitutions disabled, ? = either)\n"
    );
    print!("{}", render_table(&headers, &rows));
}

fn main() {
    let cli = bench::cli();
    let configs = opencl_sim::all_configurations();
    let names: Vec<String> = table3_benchmarks()
        .iter()
        .map(|b| b.name.to_string())
        .collect();

    if let Some(paths) = &cli.merge {
        let cols = configs.len();
        let expected_grid = grid_token(&names, &configs);
        let (cells, summary) = refold_journal_records::<BenchmarkCell, Vec<Option<BenchmarkCell>>>(
            paths,
            |campaign| {
                campaign.starts_with("table3:") && campaign.ends_with(expected_grid.as_str())
            },
            |header| Ok(vec![None; header.total_jobs as usize]),
            |cells, index, cell| cells[index as usize] = Some(cell),
        )
        .unwrap_or_else(|e| bench::fail(e));
        if cells.len() != names.len() * cols {
            bench::fail(format!(
                "journals describe a {}-cell grid; this build has {} benchmarks × {} configurations",
                cells.len(),
                names.len(),
                cols
            ));
        }
        bench::report_refold_summary(&summary);
        print_grid(&names, &configs, &cells);
        return;
    }

    let scheduler = &cli.scheduler;
    let bodies_per_benchmark: usize = cli
        .positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let exec = cli.exec_options();
    let generator = cli.generator_or(GeneratorOptions {
        min_threads: 16,
        max_threads: 32,
        ..GeneratorOptions::default()
    });

    // EMI block bodies are taken from CLsmith-generated kernels (§7.2); the
    // donor seeds are fixed, so every shard derives identical bodies.
    let benchmarks: Vec<Arc<EmiBenchmark>> = table3_benchmarks()
        .iter()
        .map(|bench| {
            let bodies: Vec<clc::Block> = (0..bodies_per_benchmark)
                .map(|i| {
                    let donor = generate(
                        &GeneratorOptions {
                            mode: GenMode::Basic,
                            seed: 900 + i as u64,
                            ..generator.clone()
                        }
                        .with_emi(),
                    );
                    donor
                        .emi_blocks()
                        .first()
                        .map(|b| b.body.clone())
                        .unwrap_or_default()
                })
                .collect();
            Arc::new(EmiBenchmark {
                name: bench.name.to_string(),
                program: bench.program.clone(),
                bodies,
                injection_points: 1,
            })
        })
        .collect();

    let total_cells = (benchmarks.len() * configs.len()) as u64;
    let spec = ShardSpec::select(0, total_cells, cli.shard);
    let campaign = descriptor(bodies_per_benchmark, &names, &configs, &generator);
    let run = run_sharded::<CellJob, _>(
        scheduler,
        &spec,
        &campaign,
        cli.journal_options().as_ref(),
        |g| {
            let (b, c) = (
                (g / configs.len() as u64) as usize,
                (g % configs.len() as u64) as usize,
            );
            (
                g, // cells have no RNG seed of their own; record the index
                CellJob {
                    benchmark: Arc::clone(&benchmarks[b]),
                    config: configs[c].clone(),
                    exec: exec.clone(),
                },
            )
        },
    )
    .unwrap_or_else(|e| bench::fail(e));
    bench::report_shard_metrics(&cli, &run.metrics);
    bench::report_store_stats(&exec);
    let mut cells: Vec<Option<BenchmarkCell>> = vec![None; total_cells as usize];
    for (g, cell) in run.outputs {
        cells[g as usize] = Some(cell);
    }
    print_grid(&names, &configs, &cells);
}
