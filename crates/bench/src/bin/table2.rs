//! Reproduces Table 2: the Parboil/Rodinia benchmarks studied with EMI
//! testing, including the kernel statistics of our miniatures.

use fuzz_harness::render_table;
use parboil_rodinia::all_benchmarks;

fn main() {
    let headers: Vec<String> = [
        "Suite",
        "Benchmark",
        "Description",
        "Kernels (orig.)",
        "LoC (orig.)",
        "Uses FP (orig.)",
        "Miniature stmts",
        "Known race",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for b in all_benchmarks() {
        rows.push(vec![
            b.suite.name().to_string(),
            b.name.to_string(),
            b.description.to_string(),
            b.original_kernels.to_string(),
            b.original_loc.to_string(),
            if b.original_uses_fp { "yes" } else { "no" }.to_string(),
            b.program.statement_count().to_string(),
            if b.has_known_race { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("Table 2 — OpenCL benchmarks studied using EMI testing\n");
    print!("{}", render_table(&headers, &rows));
}
