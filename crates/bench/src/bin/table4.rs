//! Reproduces Table 4: per-mode CLsmith campaigns over the above-threshold
//! configurations, with w / bf / c / to / ok counts and the wrong-code
//! percentage per (configuration, optimisation level).
//!
//! Usage: `cargo run --release -p bench --bin table4 -- [kernels-per-mode]
//! [--threads N] [--pipeline] [--paper-scale] [--shard I/N]
//! [--journal PATH] [--resume]`
//! (the paper uses 10 000 per mode; default here is 20, and `--paper-scale`
//! generates kernels at the paper's 100–10 000 work-item scale).
//!
//! All six modes form one mode-major job space, so a `--shard I/N` split
//! carves the whole table, not a single mode.  `table4 merge J1 [J2 ...]`
//! refolds shard journals into the per-mode blocks without re-running
//! anything.

use clsmith::{GenMode, GeneratorOptions};
use fuzz_harness::{
    merge_mode_campaign_journals, render_campaign_table, run_modes_campaign_sharded,
    CampaignOptions, CampaignResult,
};

fn print_blocks(results: &[CampaignResult]) {
    for result in results {
        println!("{} ({} kernels)", result.mode.name(), result.kernels);
        print!("{}", render_campaign_table(result));
        println!();
    }
}

fn main() {
    let cli = bench::cli();
    let configs = opencl_sim::above_threshold_configurations();

    if let Some(paths) = &cli.merge {
        let (results, summary) =
            merge_mode_campaign_journals(paths, &configs).unwrap_or_else(|e| bench::fail(e));
        bench::report_refold_summary(&summary);
        println!("Table 4 — CLsmith campaigns over the above-threshold configurations");
        println!("(merged from journals)\n");
        print_blocks(&results);
        return;
    }

    let scheduler = &cli.scheduler;
    let kernels: usize = cli
        .positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let options = CampaignOptions {
        kernels,
        generator: cli.generator_or(GeneratorOptions {
            min_threads: 16,
            max_threads: 64,
            ..GeneratorOptions::default()
        }),
        exec: cli.exec_options(),
        ..CampaignOptions::default()
    };
    let sharded = run_modes_campaign_sharded(
        scheduler,
        &GenMode::ALL,
        &configs,
        &options,
        cli.shard,
        cli.journal_options().as_ref(),
    )
    .unwrap_or_else(|e| bench::fail(e));
    bench::report_shard_metrics(&cli, &sharded.metrics);
    bench::report_store_stats(&options.exec);
    println!("Table 4 — CLsmith campaigns over the above-threshold configurations");
    if cli.is_sharded() {
        println!(
            "(shard {} — PARTIAL tables over {} of {} jobs, {} worker(s))\n",
            cli.shard,
            sharded.metrics.jobs_resumed + sharded.metrics.jobs_replayed,
            kernels * GenMode::ALL.len(),
            scheduler.threads()
        );
    } else {
        println!(
            "({} kernels per mode over {} worker(s); the paper uses 10 000)\n",
            kernels,
            scheduler.threads()
        );
    }
    print_blocks(&sharded.results);
}
