//! Reproduces Table 4: per-mode CLsmith campaigns over the above-threshold
//! configurations, with w / bf / c / to / ok counts and the wrong-code
//! percentage per (configuration, optimisation level).
//!
//! Usage: `cargo run --release -p bench --bin table4 -- [kernels-per-mode]
//! [--threads N] [--paper-scale]` (the paper uses 10 000 per mode; default
//! here is 20, and `--paper-scale` generates kernels at the paper's
//! 100–10 000 work-item scale).

use clsmith::{GenMode, GeneratorOptions};
use fuzz_harness::{render_campaign_table, run_mode_campaign_with, CampaignOptions};

fn main() {
    let cli = bench::cli();
    let scheduler = &cli.scheduler;
    let kernels: usize = cli
        .positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let configs = opencl_sim::above_threshold_configurations();
    let options = CampaignOptions {
        kernels,
        generator: cli.generator_or(GeneratorOptions {
            min_threads: 16,
            max_threads: 64,
            ..GeneratorOptions::default()
        }),
        ..CampaignOptions::default()
    };
    println!("Table 4 — CLsmith campaigns over the above-threshold configurations");
    println!(
        "({} kernels per mode over {} worker(s); the paper uses 10 000)\n",
        kernels,
        scheduler.threads()
    );
    for mode in GenMode::ALL {
        let result = run_mode_campaign_with(scheduler, mode, &configs, &options);
        println!("{} ({} kernels)", mode.name(), result.kernels);
        print!("{}", render_campaign_table(&result));
        println!();
    }
}
