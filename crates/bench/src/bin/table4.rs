//! Reproduces Table 4: per-mode CLsmith campaigns over the above-threshold
//! configurations, with w / bf / c / to / ok counts and the wrong-code
//! percentage per (configuration, optimisation level).
//!
//! Usage: `cargo run --release -p bench --bin table4 -- [kernels-per-mode]
//! [--threads N] [--pipeline] [--paper-scale] [--shard I/N]
//! [--journal PATH] [--resume]`
//! (the paper uses 10 000 per mode; default here is 20, and `--paper-scale`
//! generates kernels at the paper's 100–10 000 work-item scale).
//!
//! All six modes form one mode-major job space, so a `--shard I/N` split
//! carves the whole table, not a single mode.  `table4 merge J1 [J2 ...]`
//! refolds shard journals into the per-mode blocks without re-running
//! anything.

//! `table4 coordinate [kernels-per-mode] --fleet-dir DIR [--workers N]
//! [--faults SPEC] [--follow]` runs the same campaign as a crash-tolerant
//! worker fleet (spawning `table4 worker` children) and prints the merged
//! table — byte-identical to `table4 merge` over a fault-free batch
//! journal, even under injected worker faults.

use clsmith::{GenMode, GeneratorOptions};
use fuzz_harness::shard::{CheckpointPolicy, JournalOptions};
use fuzz_harness::{
    merge_mode_campaign_journals, render_campaign_table, run_modes_campaign_range,
    run_modes_campaign_sharded, CampaignOptions, CampaignResult,
};
use opencl_sim::Configuration;

fn print_blocks(results: &[CampaignResult]) {
    for result in results {
        println!("{} ({} kernels)", result.mode.name(), result.kernels);
        print!("{}", render_campaign_table(result));
        println!();
    }
}

/// The options and job-space geometry shared by every table4 entry point,
/// derived from one `kernels-per-mode` argument.
fn campaign_setup(cli: &bench::Cli, kernels: usize) -> (CampaignOptions, u64) {
    let options = CampaignOptions {
        kernels,
        generator: cli.generator_or(GeneratorOptions {
            min_threads: 16,
            max_threads: 64,
            ..GeneratorOptions::default()
        }),
        exec: cli.exec_options(),
        ..CampaignOptions::default()
    };
    let total_jobs = (GenMode::ALL.len() * kernels) as u64;
    (options, total_jobs)
}

fn fleet_main(cli: &bench::Cli, configs: &[Configuration]) -> ! {
    let role = cli.positional[0].clone();
    let kernels: usize = cli
        .positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let (options, total_jobs) = campaign_setup(cli, kernels);
    if role == "worker" {
        bench::fleet::worker_loop(
            cli,
            options.seed_offset,
            total_jobs,
            |lease, stop_before| {
                run_modes_campaign_range(
                    &cli.scheduler,
                    &GenMode::ALL,
                    configs,
                    &options,
                    lease.id,
                    lease.start..lease.end,
                    Some(&JournalOptions {
                        path: lease.journal.clone(),
                        resume: true,
                    }),
                    Some(CheckpointPolicy {
                        every: cli.fleet.checkpoint_every,
                    }),
                    stop_before,
                )
                .map(|run| run.metrics.jobs_replayed)
                .map_err(|e| e.to_string())
            },
        );
    }
    let mut worker_args = vec!["worker".to_string(), kernels.to_string()];
    worker_args.extend(bench::fleet::forwarded_worker_flags(cli));
    // Under --follow, completed lease journals refold into live partial
    // mode blocks after every DONE event.
    let live_table = |journals: &[std::path::PathBuf]| {
        merge_mode_campaign_journals(journals, configs)
            .map(|(results, _)| {
                results
                    .iter()
                    .map(|r| format!("{}\n{}", r.mode.name(), render_campaign_table(r)))
                    .collect::<Vec<_>>()
                    .join("\n")
            })
            .map_err(|e| e.to_string())
    };
    let outcome = bench::fleet::run_coordinator(
        cli,
        options.seed_offset,
        total_jobs,
        worker_args,
        Some(&live_table),
    );
    let status = bench::fleet::report_fleet_outcome(&outcome);
    if outcome.journals.is_empty() {
        eprintln!("fleet: no lease completed; nothing to merge");
        std::process::exit(status.max(1));
    }
    let (results, summary) =
        merge_mode_campaign_journals(&outcome.journals, configs).unwrap_or_else(|e| bench::fail(e));
    bench::report_refold_summary(&summary);
    println!("Table 4 — CLsmith campaigns over the above-threshold configurations");
    println!("(merged from journals)\n");
    print_blocks(&results);
    std::process::exit(status);
}

fn main() {
    let cli = bench::cli();
    let configs = opencl_sim::above_threshold_configurations();

    match cli.positional.first().map(String::as_str) {
        Some("coordinate") | Some("worker") => fleet_main(&cli, &configs),
        _ => {}
    }

    if let Some(paths) = &cli.merge {
        let (results, summary) =
            merge_mode_campaign_journals(paths, &configs).unwrap_or_else(|e| bench::fail(e));
        bench::report_refold_summary(&summary);
        println!("Table 4 — CLsmith campaigns over the above-threshold configurations");
        println!("(merged from journals)\n");
        print_blocks(&results);
        return;
    }

    let scheduler = &cli.scheduler;
    let kernels: usize = cli
        .positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let (options, _total_jobs) = campaign_setup(&cli, kernels);
    let sharded = run_modes_campaign_sharded(
        scheduler,
        &GenMode::ALL,
        &configs,
        &options,
        cli.shard,
        cli.journal_options().as_ref(),
    )
    .unwrap_or_else(|e| bench::fail(e));
    bench::report_shard_metrics(&cli, &sharded.metrics);
    bench::report_store_stats(&options.exec);
    println!("Table 4 — CLsmith campaigns over the above-threshold configurations");
    if cli.is_sharded() {
        println!(
            "(shard {} — PARTIAL tables over {} of {} jobs, {} worker(s))\n",
            cli.shard,
            sharded.metrics.jobs_resumed + sharded.metrics.jobs_replayed,
            kernels * GenMode::ALL.len(),
            scheduler.threads()
        );
    } else {
        println!(
            "({} kernels per mode over {} worker(s); the paper uses 10 000)\n",
            kernels,
            scheduler.threads()
        );
    }
    print_blocks(&sharded.results);
}
