//! Reproduces Table 4: per-mode CLsmith campaigns over the above-threshold
//! configurations, with w / bf / c / to / ok counts and the wrong-code
//! percentage per (configuration, optimisation level).
//!
//! Usage: `cargo run --release -p bench --bin table4 -- [kernels-per-mode]`
//! (the paper uses 10 000 per mode; default here is 20).

use clsmith::{GenMode, GeneratorOptions};
use fuzz_harness::{percent, render_table, run_mode_campaign, CampaignOptions};

fn main() {
    let kernels: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    let configs = opencl_sim::above_threshold_configurations();
    let options = CampaignOptions {
        kernels,
        generator: GeneratorOptions { min_threads: 16, max_threads: 64, ..GeneratorOptions::default() },
        ..CampaignOptions::default()
    };
    println!("Table 4 — CLsmith campaigns over the above-threshold configurations");
    println!("({kernels} kernels per mode; the paper uses 10 000)\n");
    for mode in GenMode::ALL {
        let result = run_mode_campaign(mode, &configs, &options);
        let headers: Vec<String> = std::iter::once("".to_string())
            .chain(result.targets.iter().map(|t| t.label()))
            .chain(std::iter::once("Total".to_string()))
            .collect();
        let mut rows = Vec::new();
        for (key, pick) in [
            ("w", 0usize),
            ("bf", 1),
            ("c", 2),
            ("to", 3),
            ("ok", 4),
        ] {
            let mut row = vec![key.to_string()];
            let mut total = 0usize;
            for stat in &result.stats {
                let value = match pick {
                    0 => stat.wrong,
                    1 => stat.build_failures,
                    2 => stat.crashes,
                    3 => stat.timeouts,
                    _ => stat.ok,
                };
                total += value;
                row.push(value.to_string());
            }
            row.push(total.to_string());
            rows.push(row);
        }
        let mut wpct = vec!["w%".to_string()];
        for stat in &result.stats {
            wpct.push(percent(stat.wrong_code_percentage()));
        }
        wpct.push(percent(result.total_wrong_code_percentage()));
        rows.push(wpct);
        println!("{} ({} kernels)", mode.name(), result.kernels);
        print!("{}", render_table(&headers, &rows));
        println!();
    }
}
