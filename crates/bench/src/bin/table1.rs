//! Reproduces Table 1: the 21 configurations and their classification
//! against the §7.1 reliability threshold (25 % failures over the initial
//! kernel set).
//!
//! Usage: `cargo run --release -p bench --bin table1 -- [kernels-per-mode]
//! [--threads N] [--pipeline] [--paper-scale] [--shard I/N]
//! [--journal PATH] [--resume]`
//! (the paper uses 100 per mode; the default here is 8 so the emulated run
//! finishes quickly, and `--paper-scale` generates kernels at the paper's
//! 100–10 000 work-item scale).
//!
//! `table1 merge J1 [J2 ...]` refolds shard journals into the table
//! without re-running any job.

use clsmith::GeneratorOptions;
use fuzz_harness::{
    classify_configurations_sharded, merge_classification_journals, render_reliability_table,
    CampaignOptions, ReliabilityRow,
};

fn print_table(rows: &[ReliabilityRow]) {
    print!("{}", render_reliability_table(rows));
    let judged: Vec<&ReliabilityRow> = rows.iter().filter(|r| r.kernels > 0).collect();
    let agreements = judged
        .iter()
        .filter(|r| r.above_threshold == r.config.expected_above_threshold)
        .count();
    println!(
        "\nClassification agrees with the paper for {agreements}/{} configurations.",
        judged.len()
    );
}

fn main() {
    let cli = bench::cli();
    let configs = opencl_sim::all_configurations();

    if let Some(paths) = &cli.merge {
        let (rows, summary) =
            merge_classification_journals(paths, &configs).unwrap_or_else(|e| bench::fail(e));
        bench::report_refold_summary(&summary);
        println!(
            "Table 1 — configurations and reliability classification (merged from journals)\n"
        );
        print_table(&rows);
        return;
    }

    let scheduler = &cli.scheduler;
    let kernels_per_mode: usize = cli
        .positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let options = CampaignOptions {
        generator: cli.generator_or(GeneratorOptions {
            min_threads: 16,
            max_threads: 64,
            ..GeneratorOptions::default()
        }),
        exec: cli.exec_options(),
        ..CampaignOptions::default()
    };
    let sharded = classify_configurations_sharded(
        scheduler,
        &configs,
        kernels_per_mode,
        &options,
        cli.shard,
        cli.journal_options().as_ref(),
    )
    .unwrap_or_else(|e| bench::fail(e));
    bench::report_shard_metrics(&cli, &sharded.metrics);
    bench::report_store_stats(&options.exec);
    println!("Table 1 — configurations and reliability classification");
    println!("({} scheduler worker(s))", scheduler.threads());
    if cli.is_sharded() {
        println!(
            "(shard {} — PARTIAL table over {} of {} jobs)\n",
            cli.shard,
            sharded.metrics.jobs_resumed + sharded.metrics.jobs_replayed,
            kernels_per_mode * 6
        );
    } else {
        println!(
            "({kernels_per_mode} kernels per mode, {} total per configuration)\n",
            kernels_per_mode * 6
        );
    }
    print_table(&sharded.rows);
}
