//! Reproduces Table 1: the 21 configurations and their classification
//! against the §7.1 reliability threshold (25 % failures over the initial
//! kernel set).
//!
//! Usage: `cargo run --release -p bench --bin table1 -- [kernels-per-mode]
//! [--threads N] [--paper-scale]` (the paper uses 100 per mode; the default
//! here is 8 so the emulated run finishes quickly, and `--paper-scale`
//! generates kernels at the paper's 100–10 000 work-item scale).

use clsmith::GeneratorOptions;
use fuzz_harness::{classify_configurations_with, render_table, CampaignOptions};

fn main() {
    let cli = bench::cli();
    let scheduler = &cli.scheduler;
    let kernels_per_mode: usize = cli
        .positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let configs = opencl_sim::all_configurations();
    let options = CampaignOptions {
        generator: cli.generator_or(GeneratorOptions {
            min_threads: 16,
            max_threads: 64,
            ..GeneratorOptions::default()
        }),
        ..CampaignOptions::default()
    };
    let rows = classify_configurations_with(scheduler, &configs, kernels_per_mode, &options);
    let headers: Vec<String> = [
        "Conf.",
        "SDK",
        "Device",
        "Driver/compiler",
        "OpenCL",
        "Device type",
        "Failure %",
        "Above threshold?",
        "Paper",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut table = Vec::new();
    let mut agreements = 0usize;
    for row in &rows {
        let agree = row.above_threshold == row.config.expected_above_threshold;
        if agree {
            agreements += 1;
        }
        table.push(vec![
            row.config.id.to_string(),
            row.config.sdk.to_string(),
            row.config.device.to_string(),
            row.config.driver.to_string(),
            row.config.opencl.to_string(),
            row.config.device_type.name().to_string(),
            format!("{:.1}", row.failure_fraction * 100.0),
            if row.above_threshold { "yes" } else { "no" }.to_string(),
            if row.config.expected_above_threshold {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    println!("Table 1 — configurations and reliability classification");
    println!("({} scheduler worker(s))", scheduler.threads());
    println!(
        "({kernels_per_mode} kernels per mode, {} total per configuration)\n",
        kernels_per_mode * 6
    );
    print!("{}", render_table(&headers, &table));
    println!(
        "\nClassification agrees with the paper for {agreements}/{} configurations.",
        rows.len()
    );
}
