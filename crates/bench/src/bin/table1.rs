//! Reproduces Table 1: the 21 configurations and their classification
//! against the §7.1 reliability threshold (25 % failures over the initial
//! kernel set).
//!
//! Usage: `cargo run --release -p bench --bin table1 -- [kernels-per-mode]
//! [--threads N] [--pipeline] [--paper-scale] [--shard I/N]
//! [--journal PATH] [--resume]`
//! (the paper uses 100 per mode; the default here is 8 so the emulated run
//! finishes quickly, and `--paper-scale` generates kernels at the paper's
//! 100–10 000 work-item scale).
//!
//! `table1 merge J1 [J2 ...]` refolds shard journals into the table
//! without re-running any job.
//!
//! `table1 coordinate [kernels-per-mode] --fleet-dir DIR [--workers N]
//! [--lease-jobs N] [--faults SPEC] [--follow]` runs the same campaign as a
//! crash-tolerant worker fleet (spawning `table1 worker` children) and
//! prints the merged table — byte-identical to `table1 merge` over a
//! fault-free batch journal, even under injected worker faults.

use clsmith::{GenMode, GeneratorOptions};
use fuzz_harness::shard::{CheckpointPolicy, JournalOptions};
use fuzz_harness::{
    classify_configurations_range, classify_configurations_sharded, merge_classification_journals,
    render_reliability_table, CampaignOptions, ReliabilityRow,
};
use opencl_sim::Configuration;

fn print_table(rows: &[ReliabilityRow]) {
    print!("{}", render_reliability_table(rows));
    let judged: Vec<&ReliabilityRow> = rows.iter().filter(|r| r.kernels > 0).collect();
    let agreements = judged
        .iter()
        .filter(|r| r.above_threshold == r.config.expected_above_threshold)
        .count();
    println!(
        "\nClassification agrees with the paper for {agreements}/{} configurations.",
        judged.len()
    );
}

/// The options and job-space geometry shared by every table1 entry point,
/// derived from one `kernels-per-mode` argument.
fn campaign_setup(cli: &bench::Cli, kernels_per_mode: usize) -> (CampaignOptions, u64) {
    let options = CampaignOptions {
        generator: cli.generator_or(GeneratorOptions {
            min_threads: 16,
            max_threads: 64,
            ..GeneratorOptions::default()
        }),
        exec: cli.exec_options(),
        ..CampaignOptions::default()
    };
    let total_jobs = (GenMode::ALL.len() * kernels_per_mode) as u64;
    (options, total_jobs)
}

fn fleet_main(cli: &bench::Cli, configs: &[Configuration]) -> ! {
    let role = cli.positional[0].clone();
    let kernels_per_mode: usize = cli
        .positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let (options, total_jobs) = campaign_setup(cli, kernels_per_mode);
    if role == "worker" {
        bench::fleet::worker_loop(
            cli,
            options.seed_offset,
            total_jobs,
            |lease, stop_before| {
                classify_configurations_range(
                    &cli.scheduler,
                    configs,
                    kernels_per_mode,
                    &options,
                    lease.id,
                    lease.start..lease.end,
                    Some(&JournalOptions {
                        path: lease.journal.clone(),
                        resume: true,
                    }),
                    Some(CheckpointPolicy {
                        every: cli.fleet.checkpoint_every,
                    }),
                    stop_before,
                )
                .map(|run| run.metrics.jobs_replayed)
                .map_err(|e| e.to_string())
            },
        );
    }
    let mut worker_args = vec!["worker".to_string(), kernels_per_mode.to_string()];
    worker_args.extend(bench::fleet::forwarded_worker_flags(cli));
    // Under --follow, completed lease journals refold into a live partial
    // table after every DONE event.
    let live_table = |journals: &[std::path::PathBuf]| {
        merge_classification_journals(journals, configs)
            .map(|(rows, _)| render_reliability_table(&rows))
            .map_err(|e| e.to_string())
    };
    let outcome = bench::fleet::run_coordinator(
        cli,
        options.seed_offset,
        total_jobs,
        worker_args,
        Some(&live_table),
    );
    let status = bench::fleet::report_fleet_outcome(&outcome);
    if outcome.journals.is_empty() {
        eprintln!("fleet: no lease completed; nothing to merge");
        std::process::exit(status.max(1));
    }
    let (rows, summary) = merge_classification_journals(&outcome.journals, configs)
        .unwrap_or_else(|e| bench::fail(e));
    bench::report_refold_summary(&summary);
    println!("Table 1 — configurations and reliability classification (merged from journals)\n");
    print_table(&rows);
    std::process::exit(status);
}

fn main() {
    let cli = bench::cli();
    let configs = opencl_sim::all_configurations();

    match cli.positional.first().map(String::as_str) {
        Some("coordinate") | Some("worker") => fleet_main(&cli, &configs),
        _ => {}
    }

    if let Some(paths) = &cli.merge {
        let (rows, summary) =
            merge_classification_journals(paths, &configs).unwrap_or_else(|e| bench::fail(e));
        bench::report_refold_summary(&summary);
        println!(
            "Table 1 — configurations and reliability classification (merged from journals)\n"
        );
        print_table(&rows);
        return;
    }

    let scheduler = &cli.scheduler;
    let kernels_per_mode: usize = cli
        .positional
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let (options, _total_jobs) = campaign_setup(&cli, kernels_per_mode);
    let sharded = classify_configurations_sharded(
        scheduler,
        &configs,
        kernels_per_mode,
        &options,
        cli.shard,
        cli.journal_options().as_ref(),
    )
    .unwrap_or_else(|e| bench::fail(e));
    bench::report_shard_metrics(&cli, &sharded.metrics);
    bench::report_store_stats(&options.exec);
    println!("Table 1 — configurations and reliability classification");
    println!("({} scheduler worker(s))", scheduler.threads());
    if cli.is_sharded() {
        println!(
            "(shard {} — PARTIAL table over {} of {} jobs)\n",
            cli.shard,
            sharded.metrics.jobs_resumed + sharded.metrics.jobs_replayed,
            kernels_per_mode * 6
        );
    } else {
        println!(
            "({kernels_per_mode} kernels per mode, {} total per configuration)\n",
            kernels_per_mode * 6
        );
    }
    print_table(&sharded.rows);
}
