//! Reproduces the §2.4 finding: the Parboil spmv and Rodinia myocyte
//! miniatures contain data races, exposed by the race detector and by
//! schedule variation.  Also reports the shadow-memory detector's per-kernel
//! counters (accesses recorded, shadow arrays allocated, epoch bumps) so the
//! cost of always-on race instrumentation stays observable.

use clc_interp::{launch, LaunchOptions, Schedule};
use fuzz_harness::render_table;
use parboil_rodinia::all_benchmarks;

fn main() {
    let headers: Vec<String> = [
        "Benchmark",
        "Race detected",
        "Schedule-dependent result",
        "Accesses",
        "Shadow arrays",
        "Epoch bumps",
        "Paper",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for b in all_benchmarks() {
        let raced = launch(
            &b.program,
            &LaunchOptions {
                detect_races: true,
                ..LaunchOptions::default()
            },
        )
        .unwrap();
        let forward = launch(&b.program, &LaunchOptions::default()).unwrap();
        let reverse = launch(
            &b.program,
            &LaunchOptions {
                schedule: Schedule::Reverse,
                ..LaunchOptions::default()
            },
        )
        .unwrap();
        let stats = raced.race_stats.unwrap_or_default();
        rows.push(vec![
            b.name.to_string(),
            if raced.race.is_some() { "yes" } else { "no" }.to_string(),
            if forward.result_string != reverse.result_string {
                "yes"
            } else {
                "no"
            }
            .to_string(),
            stats.accesses.to_string(),
            stats.shadow_arrays.to_string(),
            stats.epoch_bumps.to_string(),
            if b.has_known_race {
                "race reported by the paper"
            } else {
                "-"
            }
            .to_string(),
        ]);
    }
    println!("Data races in the benchmark miniatures (§2.4)\n");
    print!("{}", render_table(&headers, &rows));
}
