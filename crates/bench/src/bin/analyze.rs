//! Static analysis front end: lints a seed range of generated kernels and
//! prints diagnostics with printer-derived source excerpts.
//!
//! ```text
//! analyze [SEED_LO [SEED_HI]] [--mode NAME] [--verbose] [--summary]
//! ```
//!
//! Default: seeds `0..16` across all six generation modes.  `--mode`
//! restricts to one mode (`basic`, `vector`, `barrier`, `atomic-section`,
//! `atomic-reduction`, `all`).  `--verbose` prints every diagnostic for
//! every kernel; the default prints one line per kernel plus diagnostics of
//! non-clean kernels.  `--summary` prints only the final per-verdict tally
//! (the format CI diffs against a golden file).

use clsmith::{validate, GenMode, GeneratorOptions};
use std::collections::BTreeMap;

struct Args {
    lo: u64,
    hi: u64,
    mode: Option<GenMode>,
    verbose: bool,
    summary: bool,
}

fn parse_mode(s: &str) -> Option<GenMode> {
    match s.to_ascii_lowercase().replace('_', "-").as_str() {
        "basic" => Some(GenMode::Basic),
        "vector" => Some(GenMode::Vector),
        "barrier" => Some(GenMode::Barrier),
        "atomic-section" => Some(GenMode::AtomicSection),
        "atomic-reduction" => Some(GenMode::AtomicReduction),
        "all" => Some(GenMode::All),
        _ => None,
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        lo: 0,
        hi: 16,
        mode: None,
        verbose: false,
        summary: false,
    };
    let mut positional = Vec::new();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--verbose" | "-v" => args.verbose = true,
            "--summary" => args.summary = true,
            "--mode" => {
                let value = iter
                    .next()
                    .unwrap_or_else(|| bench::fail("--mode needs a value"));
                args.mode = Some(
                    parse_mode(&value)
                        .unwrap_or_else(|| bench::fail(format!("unknown mode `{value}`"))),
                );
            }
            other if other.starts_with('-') => {
                bench::fail(format!("unknown flag `{other}`"));
            }
            other => positional.push(other.to_string()),
        }
    }
    if let Some(first) = positional.first() {
        let v: u64 = first
            .parse()
            .unwrap_or_else(|_| bench::fail(format!("bad seed `{first}`")));
        if let Some(second) = positional.get(1) {
            args.lo = v;
            args.hi = second
                .parse()
                .unwrap_or_else(|_| bench::fail(format!("bad seed `{second}`")));
        } else {
            args.hi = v;
        }
    }
    if args.hi <= args.lo {
        bench::fail("empty seed range");
    }
    args
}

fn main() {
    let args = parse_args();
    let modes: Vec<GenMode> = match args.mode {
        Some(m) => vec![m],
        None => GenMode::ALL.to_vec(),
    };
    let mut tally: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut total = 0usize;
    for &mode in &modes {
        for seed in args.lo..args.hi {
            let options = GeneratorOptions::new(mode, seed);
            let program = clsmith::generate(&options);
            let report = validate(&program);
            total += 1;
            *tally.entry(report.verdict()).or_insert(0) += 1;
            if args.summary {
                continue;
            }
            println!(
                "{:>16} seed {:>4}: {} ({} pairs checked)",
                mode.name(),
                seed,
                report.summary(),
                report.checked_pairs
            );
            if args.verbose || !report.is_clean() {
                for d in &report.diagnostics {
                    println!("    {d}");
                }
            }
        }
    }
    if !args.summary {
        println!();
    }
    println!("verdicts over {total} kernels:");
    for (verdict, count) in &tally {
        println!("  {verdict:>12}  {count}");
    }
}
