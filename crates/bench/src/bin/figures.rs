//! Reproduces Figures 1 and 2: the bug-exhibiting kernels, their expected
//! outputs, and what each affected simulated configuration actually does.

use fuzz_harness::render_table;
use opencl_sim::{
    all_figures, configuration, execute, reference_execute, ExecOptions, TestOutcome,
};

fn describe(outcome: &TestOutcome) -> String {
    match outcome {
        TestOutcome::Result { output, .. } => {
            let mut s = output.clone();
            if s.len() > 24 {
                s.truncate(24);
                s.push('…');
            }
            s
        }
        TestOutcome::BuildFailure(_) => "build failure".to_string(),
        TestOutcome::Crash(_) => "crash".to_string(),
        TestOutcome::Timeout => "timeout".to_string(),
    }
}

fn main() {
    let exec = ExecOptions::default();
    let headers: Vec<String> = [
        "Figure",
        "Kernel",
        "Expected",
        "Configuration",
        "Observed",
        "Paper's observation",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for fig in all_figures() {
        let reference = reference_execute(&fig.program, &exec);
        if fig.demonstrates.is_empty() {
            rows.push(vec![
                fig.id.to_string(),
                fig.caption.to_string(),
                fig.expected_output.clone(),
                "(statistical model)".to_string(),
                describe(&reference),
                "-".to_string(),
            ]);
        }
        for (config_id, opt, note) in &fig.demonstrates {
            let config = configuration(*config_id);
            let observed = execute(&fig.program, &config, *opt, &exec);
            rows.push(vec![
                fig.id.to_string(),
                fig.caption.chars().take(44).collect(),
                fig.expected_output.clone(),
                config.label(*opt),
                describe(&observed),
                note.to_string(),
            ]);
        }
    }
    println!("Figures 1 and 2 — bug-exhibiting kernels on the simulated configurations\n");
    print!("{}", render_table(&headers, &rows));
}
