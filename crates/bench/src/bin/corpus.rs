//! Feedback-guided corpus campaign: evolves lineages of mutated kernels
//! under coverage-map acceptance and compares the guided strategy against a
//! blind ablation at the same kernel budget (same base seeds, same chain
//! length — the paired experiment the paper's blind sampling lacks).
//!
//! Usage: `cargo run --release -p bench --bin corpus -- [lineages] [chain]
//! [--threads N] [--pipeline] [--paper-scale] [--shard I/N]
//! [--journal PATH] [--resume]`
//! (defaults: 12 lineages per strategy, 5 mutations per lineage).
//!
//! The job space is strategy-major (guided lineages first, then blind), so
//! a `--shard I/N` split carves both strategies.  `corpus merge J1 [J2 ...]`
//! refolds shard journals into the comparison table without re-running
//! anything.
//!
//! `corpus coordinate [lineages] [chain] --fleet-dir DIR [--workers N]
//! [--faults SPEC] [--follow]` runs the same campaign as a crash-tolerant
//! worker fleet (spawning `corpus worker` children) and prints the merged
//! table — byte-identical to `corpus merge` over a fault-free batch
//! journal, even under injected worker faults.

use fuzz_harness::shard::{CheckpointPolicy, JournalOptions};
use fuzz_harness::{
    merge_corpus_campaign_journals, render_corpus_table, run_corpus_campaign_range,
    run_corpus_campaign_sharded, CorpusCampaignResult, CorpusOptions, CorpusStrategy,
};
use opencl_sim::Configuration;

fn print_result(result: &CorpusCampaignResult) {
    print!("{}", render_corpus_table(result));
    let (guided, blind) = (result.guided(), result.blind());
    if guided.kernels() > 0 && blind.kernels() > 0 {
        println!(
            "\nGuided vs blind at {} kernels each: {:.3} vs {:.3} bugs/kernel, \
             {:.1}% vs {:.1}% coverage saturation.",
            guided.kernels(),
            guided.bugs_per_kernel(),
            blind.bugs_per_kernel(),
            guided.saturation() * 100.0,
            blind.saturation() * 100.0,
        );
    }
}

/// The options and job-space geometry shared by every corpus entry point,
/// derived from the `lineages` and `chain` arguments.
fn campaign_setup(cli: &bench::Cli, lineages: usize, chain: usize) -> (CorpusOptions, u64) {
    let options = CorpusOptions {
        lineages,
        chain,
        generator: cli.generator_or(clsmith::GeneratorOptions {
            min_threads: 16,
            max_threads: 64,
            ..clsmith::GeneratorOptions::default()
        }),
        exec: cli.exec_options(),
        ..CorpusOptions::default()
    };
    let total_jobs = (CorpusStrategy::ALL.len() * lineages) as u64;
    (options, total_jobs)
}

fn scale_args(cli: &bench::Cli, skip: usize) -> (usize, usize) {
    let arg = |i: usize| cli.positional.get(skip + i).and_then(|s| s.parse().ok());
    (arg(0).unwrap_or(12), arg(1).unwrap_or(5))
}

fn fleet_main(cli: &bench::Cli, configs: &[Configuration]) -> ! {
    let role = cli.positional[0].clone();
    let (lineages, chain) = scale_args(cli, 1);
    let (options, total_jobs) = campaign_setup(cli, lineages, chain);
    if role == "worker" {
        bench::fleet::worker_loop(
            cli,
            options.seed_offset,
            total_jobs,
            |lease, stop_before| {
                run_corpus_campaign_range(
                    &cli.scheduler,
                    configs,
                    &options,
                    lease.id,
                    lease.start..lease.end,
                    Some(&JournalOptions {
                        path: lease.journal.clone(),
                        resume: true,
                    }),
                    Some(CheckpointPolicy {
                        every: cli.fleet.checkpoint_every,
                    }),
                    stop_before,
                )
                .map(|run| run.metrics.jobs_replayed)
                .map_err(|e| e.to_string())
            },
        );
    }
    let mut worker_args = vec![
        "worker".to_string(),
        lineages.to_string(),
        chain.to_string(),
    ];
    worker_args.extend(bench::fleet::forwarded_worker_flags(cli));
    // Under --follow, completed lease journals refold into a live partial
    // guided-vs-blind table after every DONE event.
    let live_table = |journals: &[std::path::PathBuf]| {
        merge_corpus_campaign_journals(journals, configs)
            .map(|(result, _)| render_corpus_table(&result))
            .map_err(|e| e.to_string())
    };
    let outcome = bench::fleet::run_coordinator(
        cli,
        options.seed_offset,
        total_jobs,
        worker_args,
        Some(&live_table),
    );
    let status = bench::fleet::report_fleet_outcome(&outcome);
    if outcome.journals.is_empty() {
        eprintln!("fleet: no lease completed; nothing to merge");
        std::process::exit(status.max(1));
    }
    let (result, summary) = merge_corpus_campaign_journals(&outcome.journals, configs)
        .unwrap_or_else(|e| bench::fail(e));
    bench::report_refold_summary(&summary);
    println!("Corpus campaign — coverage-guided vs blind mutation chains");
    println!("(merged from journals)\n");
    print_result(&result);
    std::process::exit(status);
}

fn main() {
    let cli = bench::cli();
    let configs = opencl_sim::above_threshold_configurations();

    match cli.positional.first().map(String::as_str) {
        Some("coordinate") | Some("worker") => fleet_main(&cli, &configs),
        _ => {}
    }

    if let Some(paths) = &cli.merge {
        let (result, summary) =
            merge_corpus_campaign_journals(paths, &configs).unwrap_or_else(|e| bench::fail(e));
        bench::report_refold_summary(&summary);
        println!("Corpus campaign — coverage-guided vs blind mutation chains");
        println!("(merged from journals)\n");
        print_result(&result);
        return;
    }

    let scheduler = &cli.scheduler;
    let (lineages, chain) = scale_args(&cli, 0);
    let (options, total_jobs) = campaign_setup(&cli, lineages, chain);
    let sharded = run_corpus_campaign_sharded(
        scheduler,
        &configs,
        &options,
        cli.shard,
        cli.journal_options().as_ref(),
    )
    .unwrap_or_else(|e| bench::fail(e));
    bench::report_shard_metrics(&cli, &sharded.metrics);
    bench::report_store_stats(&options.exec);
    println!("Corpus campaign — coverage-guided vs blind mutation chains");
    if cli.is_sharded() {
        println!(
            "(shard {} — PARTIAL table over {} of {} lineage jobs, {} worker(s))\n",
            cli.shard,
            sharded.metrics.jobs_resumed + sharded.metrics.jobs_replayed,
            total_jobs,
            scheduler.threads()
        );
    } else {
        println!(
            "({} lineages per strategy, {} mutations per lineage, {} worker(s))\n",
            lineages,
            chain,
            scheduler.threads()
        );
    }
    print_result(&sharded.result);
}
