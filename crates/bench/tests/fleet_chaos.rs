//! End-to-end chaos test for the fleet coordinator: a `table1 coordinate`
//! run with worker kills, torn journal tails and hung lease renewals must
//! produce a merged table byte-identical to `table1 merge` over a fault-free
//! batch journal of the same campaign — the PR's core crash-tolerance
//! invariant — and exhausted retries must quarantine the poisoned range
//! instead of wedging the fleet.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Kernels per mode: 12 jobs total (6 modes x 2), four 3-job leases.
const KERNELS: &str = "2";
/// One fault in lease 1 attempt 1 (kill@3), one in lease 1 attempt 2
/// (hang@5), one in lease 2 attempt 1 (torn@7); every lease still has a
/// fault-free attempt within the default retry budget.
const FAULTS: &str = "kill@3,hang@5,torn@7";

fn table1() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_table1"));
    // The ambient environment must not redirect the store or inject extra
    // faults into either side of the differential.
    for var in [
        "CLFUZZ_FAULTS",
        "CLFUZZ_STORE",
        "CLFUZZ_STORE_CAP",
        "FUZZ_THREADS",
        "FUZZ_PIPELINE",
    ] {
        cmd.env_remove(var);
    }
    cmd
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clfuzz-fleet-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn assert_success(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed (status {:?})\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The canonical merged table: a fault-free single-process batch run
/// journalled to disk, refolded by the `merge` subcommand.
fn batch_baseline(dir: &Path) -> Vec<u8> {
    let journal = dir.join("batch.journal");
    let batch = table1()
        .arg(KERNELS)
        .arg("--no-store")
        .arg("--journal")
        .arg(&journal)
        .output()
        .expect("spawn batch table1");
    assert_success(&batch, "batch run");
    let merged = table1()
        .arg("merge")
        .arg(&journal)
        .output()
        .expect("spawn table1 merge");
    assert_success(&merged, "batch merge");
    assert!(!merged.stdout.is_empty(), "baseline table is empty");
    merged.stdout
}

fn coordinate(fleet_dir: &Path, workers: &str, faults: &str, extra: &[&str]) -> Output {
    table1()
        .args(["coordinate", KERNELS, "--no-store"])
        .args(["--workers", workers])
        .args(["--lease-jobs", "3"])
        .args(["--lease-timeout-ms", "2000"])
        .args(["--faults", faults])
        .args(extra)
        .arg("--fleet-dir")
        .arg(fleet_dir)
        .output()
        .expect("spawn table1 coordinate")
}

#[test]
fn fleet_under_faults_matches_batch_at_two_worker_counts() {
    let dir = scratch_dir("diff");
    let baseline = batch_baseline(&dir);
    for workers in ["2", "3"] {
        let fleet_dir = dir.join(format!("fleet-w{workers}"));
        let out = coordinate(&fleet_dir, workers, FAULTS, &[]);
        assert_success(&out, &format!("fleet coordinate ({workers} workers)"));
        assert_eq!(
            out.stdout,
            baseline,
            "fleet table ({workers} workers, faults {FAULTS}) is not \
             byte-identical to the batch merge\nfleet stderr:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        // The schedule must actually have fired — a silently inert fault
        // plan would make this differential vacuous.
        let worker_log =
            fs::read_to_string(fleet_dir.join("workers.log")).expect("read workers.log");
        for kind in ["kill", "hang", "torn"] {
            assert!(
                worker_log.contains(&format!("FAULT {kind}")),
                "{kind} fault never fired ({workers} workers); workers.log:\n{worker_log}"
            );
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_retries_quarantine_the_range_and_exit_nonzero() {
    let dir = scratch_dir("quarantine");
    let fleet_dir = dir.join("fleet");
    // Every attempt on lease 0 is killed; with a single retry the range is
    // poisoned, the rest of the fleet completes, and the coordinator exits
    // with the quarantine code instead of hanging.
    let out = coordinate(&fleet_dir, "2", "kill@0x99", &["--max-retries", "1"]);
    assert_eq!(
        out.status.code(),
        Some(bench::fleet::FLEET_EXIT_QUARANTINE),
        "expected quarantine exit\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let dead = fs::read_to_string(fleet_dir.join("dead-letters.log")).expect("dead-letters.log");
    assert!(
        dead.contains("DEAD 0-3"),
        "poisoned range missing from dead letters:\n{dead}"
    );
    // The surviving leases still merge into a (partial) table on stdout.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("merged from journals"),
        "partial table missing from stdout:\n{stdout}"
    );
    let _ = fs::remove_dir_all(&dir);
}
