//! Quickstart: generate a random deterministic OpenCL kernel, print its
//! source, run it on the reference emulator, and differential-test it across
//! the simulated configurations.
//!
//! Run with: `cargo run --example quickstart`

use clsmith::{generate, GenMode, GeneratorOptions};
use fuzz_harness::quick_differential;

fn main() {
    // 1. Generate a kernel in ALL mode (vectors + barriers + atomics).
    let options = GeneratorOptions {
        min_threads: 16,
        max_threads: 64,
        ..GeneratorOptions::new(GenMode::All, 2026)
    };
    let program = generate(&options);
    println!(
        "=== Generated OpenCL C ===\n{}",
        clc::print_program(&program)
    );

    // 2. Run it on the reference emulator (the repository's Oclgrind stand-in).
    let reference = clc_interp::run(&program).expect("generated kernels are UB-free");
    println!("reference result hash: {:#018x}", reference.result_hash);
    println!(
        "first outputs: {}",
        &reference.result_string[..reference.result_string.len().min(60)]
    );

    // 3. Differential-test it across the above-threshold configurations.
    let (targets, _outcomes, verdicts) = quick_differential(&program);
    for (target, verdict) in targets.iter().zip(&verdicts) {
        println!("  config {:>4}: {:?}", target.label(), verdict);
    }
    let wrong = verdicts
        .iter()
        .filter(|v| matches!(v, fuzz_harness::Verdict::WrongCode))
        .count();
    println!("{wrong} configuration(s) miscompiled this kernel.");
}
