//! Test-case reduction: find a kernel that a simulated configuration
//! miscompiles, then shrink it while the miscompilation persists (§8).
//!
//! Run with: `cargo run --release --example reduce_bug`

use clreduce::{reduce, ReduceOptions};
use opencl_sim::{configuration, execute, reference_execute, ExecOptions, OptLevel, TestOutcome};

fn main() {
    // The Figure 1(a) kernel is miscompiled by the AMD configuration; use a
    // CLsmith kernel that triggers the same struct bug and reduce it.
    let config = configuration(5);
    let exec = ExecOptions::default();
    let mut found = None;
    for seed in 0..200u64 {
        let program = clsmith::generate(&clsmith::GeneratorOptions {
            min_threads: 16,
            max_threads: 48,
            ..clsmith::GeneratorOptions::new(clsmith::GenMode::Basic, seed)
        });
        let reference = reference_execute(&program, &exec);
        let observed = execute(&program, &config, OptLevel::Enabled, &exec);
        if let (TestOutcome::Result { hash: a, .. }, TestOutcome::Result { hash: b, .. }) =
            (&reference, &observed)
        {
            if a != b {
                found = Some(program);
                break;
            }
        }
    }
    let Some(program) = found else {
        println!("no miscompiled kernel found in 200 seeds — try more seeds");
        return;
    };
    println!(
        "found a miscompiled kernel with {} statements",
        program.statement_count()
    );
    let mut interesting = |candidate: &clc::Program| {
        let reference = reference_execute(candidate, &exec);
        let observed = execute(candidate, &config, OptLevel::Enabled, &exec);
        matches!(
            (reference, observed),
            (TestOutcome::Result { hash: a, .. }, TestOutcome::Result { hash: b, .. }) if a != b
        )
    };
    let (reduced, stats) = reduce(&program, &mut interesting, &ReduceOptions::default());
    println!(
        "reduced from {} to {} statements ({} candidates tried, {} accepted)",
        stats.initial_statements,
        stats.final_statements,
        stats.candidates_tried,
        stats.candidates_accepted
    );
    println!("=== reduced kernel ===\n{}", clc::print_program(&reduced));
}
