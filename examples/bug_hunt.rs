//! Bug hunt: run a small differential campaign per CLsmith mode and report
//! which simulated configurations miscompile which kinds of kernels —
//! a miniature of the paper's §7.3 study.
//!
//! Run with: `cargo run --release --example bug_hunt -- [kernels-per-mode]`

use clsmith::{GenMode, GeneratorOptions};
use fuzz_harness::{run_mode_campaign, CampaignOptions};

fn main() {
    let kernels: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let configs = opencl_sim::above_threshold_configurations();
    let options = CampaignOptions {
        kernels,
        generator: GeneratorOptions {
            min_threads: 16,
            max_threads: 48,
            ..GeneratorOptions::default()
        },
        ..CampaignOptions::default()
    };
    for mode in GenMode::ALL {
        let result = run_mode_campaign(mode, &configs, &options);
        println!(
            "mode {:<16} total w% = {:.2}",
            mode.name(),
            result.total_wrong_code_percentage()
        );
        for (target, stats) in result.targets.iter().zip(&result.stats) {
            if stats.wrong > 0 {
                println!(
                    "    {:>4}: {} wrong-code kernels out of {} ({:.1}%)",
                    target.label(),
                    stats.wrong,
                    stats.total(),
                    stats.wrong_code_percentage(),
                );
            }
        }
    }
}
