//! EMI testing end to end: build base kernels with dead-by-construction EMI
//! blocks, derive pruning variants, and look for variant disagreement on a
//! single configuration — no cross-compiler comparison needed (§5, §7.4).
//!
//! Run with: `cargo run --release --example emi_campaign`

use clsmith::prune_variant;
use clsmith::GeneratorOptions;
use fuzz_harness::{
    generate_live_bases, judge_base, pruning_grid, CampaignOptions, EmiCampaignOptions,
};
use opencl_sim::{configuration, ExecOptions, OptLevel};

fn main() {
    let options = EmiCampaignOptions {
        bases: 3,
        variants_per_base: 8,
        campaign: CampaignOptions {
            generator: GeneratorOptions {
                min_threads: 16,
                max_threads: 48,
                ..GeneratorOptions::default()
            },
            ..CampaignOptions::default()
        },
    };
    let bases = generate_live_bases(&options);
    println!("accepted {} live base programs", bases.len());
    let grid = pruning_grid(options.variants_per_base);
    for (i, base) in bases.iter().enumerate() {
        let variants: Vec<clc::Program> = grid
            .iter()
            .enumerate()
            .map(|(j, p)| prune_variant(base, p, (i * 100 + j) as u64))
            .collect();
        for id in [1usize, 12, 19] {
            let config = configuration(id);
            for opt in OptLevel::BOTH {
                let judgement = judge_base(&variants, &config, opt, &ExecOptions::default());
                println!(
                    "base {i} on {:>4}: wrong={} bf={} crash={} timeout={} stable={}",
                    config.label(opt),
                    judgement.wrong,
                    judgement.build_failure,
                    judgement.crash,
                    judgement.timeout,
                    judgement.stable
                );
            }
        }
    }
}
