//! EMI testing of the Parboil/Rodinia miniatures (the §7.2 experiment),
//! including the data-race discovery that excluded spmv and myocyte.
//!
//! Run with: `cargo run --release --example benchmark_fuzzing`

use clc_interp::{launch, LaunchOptions};
use clsmith::{generate, GenMode, GeneratorOptions};
use fuzz_harness::{evaluate_benchmark, EmiBenchmark};
use opencl_sim::ExecOptions;
use parboil_rodinia::all_benchmarks;

fn main() {
    for bench in all_benchmarks() {
        let raced = launch(
            &bench.program,
            &LaunchOptions {
                detect_races: true,
                ..LaunchOptions::default()
            },
        )
        .unwrap();
        if let Some(race) = raced.race {
            println!("{:<11} excluded: {}", bench.name, race);
            continue;
        }
        let donor = generate(
            &GeneratorOptions {
                min_threads: 16,
                max_threads: 32,
                ..GeneratorOptions::new(GenMode::Basic, 77)
            }
            .with_emi(),
        );
        let bodies: Vec<clc::Block> = donor
            .emi_blocks()
            .iter()
            .map(|b| b.body.clone())
            .take(2)
            .collect();
        let emi = EmiBenchmark {
            name: bench.name.to_string(),
            program: bench.program.clone(),
            bodies,
            injection_points: 1,
        };
        let cell = evaluate_benchmark(
            &emi,
            &opencl_sim::configuration(12),
            &ExecOptions::default(),
        );
        println!("{:<11} on config 12: {}", bench.name, cell.render());
    }
}
